//! The **linear superposition** baseline (refs. [3, 11] of the paper).
//!
//! The classic fast estimate of TSV-array thermal stress: run one
//! high-fidelity FEM simulation of a *single* TSV, extract its mid-plane
//! stress-perturbation kernel, then superpose a copy of the kernel at every
//! TSV site on top of the background stress. This ignores the elastic
//! coupling between adjacent TSVs and the local variation of the background
//! field — which is exactly why its error grows for small pitches and sharp
//! background gradients (Tables 1 and 2 of the paper), while MORE-Stress
//! stays below 1 %.
//!
//! * [`SuperpositionSolver::build`] is the one-shot stage (one single-TSV
//!   FEM solve + one pure-Si solve on the same domain, so the kernel is the
//!   *perturbation* with domain-edge effects cancelled).
//! * [`SuperpositionSolver::evaluate_array`] superposes the kernel over an
//!   array layout with the uniform clamped-slab background (scenario 1).
//! * [`SuperpositionSolver::evaluate_array_with_background`] takes an
//!   arbitrary background-stress field, e.g. sampled from a coarse chiplet
//!   model (scenario 2).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

use std::time::{Duration, Instant};

use morestress_fem::{
    sample_von_mises, solve_thermal_stress, stress_at, DirichletBcs, FemError, LinearSolver,
    MaterialSet, PlaneGrid, ScalarField2d, StressSample,
};
use morestress_linalg::MemoryFootprint;
use morestress_mesh::{array_mesh, BlockKind, BlockLayout, BlockResolution, TsvGeometry};

/// Cost accounting of the one-shot kernel build and per-array evaluations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuperpositionStats {
    /// Wall-clock time of the one-shot kernel build (two FEM solves).
    pub build_time: Duration,
    /// Analytic heap estimate of the stored kernel (bytes).
    pub kernel_bytes: usize,
}

/// The mid-plane stress-perturbation kernel of an isolated TSV, evaluated
/// directly from the stored single-TSV FEM solution (and the matching
/// pure-Si solution, which cancels domain-edge effects). Direct evaluation
/// avoids resampling error near the liner, where the stress gradient is far
/// steeper than any practical kernel grid.
#[derive(Debug, Clone)]
struct StressKernel {
    /// Half-extent of the kernel support (µm); the kernel covers
    /// `[-extent, extent]²` around the TSV center.
    extent: f64,
    /// Mid-plane height.
    z_mid: f64,
    /// Center of the single-TSV domain.
    center: f64,
    mesh_tsv: morestress_mesh::HexMesh,
    u_tsv: Vec<f64>,
    mesh_si: morestress_mesh::HexMesh,
    u_si: Vec<f64>,
    materials: MaterialSet,
}

impl StressKernel {
    /// Kernel value at offset `(dx, dy)` from a TSV center for ΔT = 1; zero
    /// outside the support.
    fn eval(&self, dx: f64, dy: f64) -> [f64; 6] {
        if dx.abs() >= self.extent || dy.abs() >= self.extent {
            return [0.0; 6];
        }
        let q = [self.center + dx, self.center + dy, self.z_mid];
        let st = stress_at(&self.mesh_tsv, &self.materials, &self.u_tsv, 1.0, q)
            .expect("materials registered")
            .expect("array meshes have no voids");
        let ss = stress_at(&self.mesh_si, &self.materials, &self.u_si, 1.0, q)
            .expect("materials registered")
            .expect("array meshes have no voids");
        let mut out = [0.0; 6];
        for c in 0..6 {
            out[c] = st.tensor[c] - ss.tensor[c];
        }
        out
    }
}

/// The linear superposition baseline solver.
///
/// # Example
///
/// ```no_run
/// use morestress_fem::MaterialSet;
/// use morestress_mesh::{BlockKind, BlockLayout, BlockResolution, TsvGeometry};
/// use morestress_superpos::SuperpositionSolver;
///
/// # fn main() -> Result<(), morestress_fem::FemError> {
/// let geom = TsvGeometry::paper_defaults(15.0);
/// let solver = SuperpositionSolver::build(
///     &geom,
///     &BlockResolution::coarse(),
///     &MaterialSet::tsv_defaults(),
/// )?;
/// let layout = BlockLayout::uniform(10, 10, BlockKind::Tsv);
/// let field = solver.evaluate_array(&layout, -250.0, 20);
/// assert!(field.max() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SuperpositionSolver {
    geom: TsvGeometry,
    kernel: StressKernel,
    /// Uniform background stress (ΔT = 1) of the clamped pure-Si slab,
    /// sampled at the domain center.
    background: [f64; 6],
    /// Cost accounting.
    pub stats: SuperpositionStats,
}

impl SuperpositionSolver {
    /// One-shot kernel construction: a high-fidelity FEM solve of one TSV in
    /// a 3×3-block silicon domain (clamped top/bottom), minus the pure-Si
    /// solution of the same domain. Both solves use ΔT = 1; evaluation
    /// scales linearly with the actual thermal load.
    ///
    /// # Errors
    ///
    /// Propagates FEM failures.
    pub fn build(
        geom: &TsvGeometry,
        res: &BlockResolution,
        materials: &MaterialSet,
    ) -> Result<Self, FemError> {
        let start = Instant::now();
        let layout = BlockLayout::uniform(1, 1, BlockKind::Tsv).padded(1);
        let pure = BlockLayout::uniform(3, 3, BlockKind::Dummy);
        let p = geom.pitch;
        let z_mid = 0.5 * geom.height;

        let solve =
            |layout: &BlockLayout| -> Result<(morestress_mesh::HexMesh, Vec<f64>), FemError> {
                let mesh = array_mesh(geom, res, layout);
                let (_, _, npz) = mesh.lattice_dims();
                let mut bcs = DirichletBcs::new();
                bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
                bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
                let sol = solve_thermal_stress(&mesh, materials, 1.0, &bcs, LinearSolver::Auto)?;
                Ok((mesh, sol.displacement))
            };
        let (mesh_tsv, u_tsv) = solve(&layout)?;
        let (mesh_si, u_si) = solve(&pure)?;

        let background = stress_at(&mesh_si, materials, &u_si, 1.0, [1.5 * p, 1.5 * p, z_mid])?
            .expect("center of the pure-Si domain")
            .tensor;

        let kernel_bytes = u_tsv.heap_bytes() + u_si.heap_bytes();
        let kernel = StressKernel {
            extent: 1.5 * p,
            z_mid,
            center: 1.5 * p,
            mesh_tsv,
            u_tsv,
            mesh_si,
            u_si,
            materials: materials.clone(),
        };
        Ok(Self {
            geom: *geom,
            kernel,
            background,
            stats: SuperpositionStats {
                build_time: start.elapsed(),
                kernel_bytes,
            },
        })
    }

    /// The TSV geometry the kernel was built for.
    pub fn geometry(&self) -> &TsvGeometry {
        &self.geom
    }

    /// Superposed stress tensor at mid-plane point `(x, y)` of an array,
    /// given a background tensor for that point (both at thermal load
    /// `delta_t`; the kernel is scaled internally).
    fn tensor_at(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        background: [f64; 6],
        x: f64,
        y: f64,
    ) -> [f64; 6] {
        let p = self.geom.pitch;
        let mut sigma = background;
        // Only TSVs whose kernel support covers (x, y) can contribute.
        let reach = (self.kernel.extent / p).ceil() as isize;
        let bi0 = (x / p).floor() as isize;
        let bj0 = (y / p).floor() as isize;
        for bj in (bj0 - reach)..=(bj0 + reach) {
            for bi in (bi0 - reach)..=(bi0 + reach) {
                if bi < 0 || bj < 0 || bi as usize >= layout.nx() || bj as usize >= layout.ny() {
                    continue;
                }
                if layout.kind(bi as usize, bj as usize) != BlockKind::Tsv {
                    continue;
                }
                let cx = (bi as f64 + 0.5) * p;
                let cy = (bj as f64 + 0.5) * p;
                let k = self.kernel.eval(x - cx, y - cy);
                for c in 0..6 {
                    sigma[c] += delta_t * k[c];
                }
            }
        }
        sigma
    }

    /// Evaluates the superposed mid-plane von Mises field of an array with
    /// the uniform clamped-slab background (scenario 1 of the paper).
    pub fn evaluate_array(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        samples_per_block: usize,
    ) -> ScalarField2d {
        let bg = self.background;
        self.evaluate_array_with_background(layout, delta_t, samples_per_block, |_| {
            let mut t = [0.0; 6];
            for c in 0..6 {
                t[c] = delta_t * bg[c];
            }
            t
        })
    }

    /// Evaluates the superposed field with a caller-supplied background
    /// stress (already scaled to the actual thermal load), e.g. interpolated
    /// from a coarse chiplet solution (scenario 2).
    pub fn evaluate_array_with_background<F>(
        &self,
        layout: &BlockLayout,
        delta_t: f64,
        samples_per_block: usize,
        background: F,
    ) -> ScalarField2d
    where
        F: Fn([f64; 3]) -> [f64; 6],
    {
        let p = self.geom.pitch;
        let z_mid = 0.5 * self.geom.height;
        let grid = PlaneGrid::new(
            [0.0, 0.0],
            [p * layout.nx() as f64, p * layout.ny() as f64],
            z_mid,
            samples_per_block * layout.nx(),
            samples_per_block * layout.ny(),
        );
        let [nx, ny] = grid.samples;
        let mut values = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                let pt = grid.point(i, j);
                let bg = background(pt);
                let sigma = self.tensor_at(layout, delta_t, bg, pt[0], pt[1]);
                values.push(StressSample::from_tensor(sigma).von_mises);
            }
        }
        ScalarField2d { grid, values }
    }
}

/// Convenience: the full-FEM reference field for an array under scenario-1
/// boundary conditions, used by tests and the benchmark harness to score
/// both the baseline and the ROM.
///
/// # Errors
///
/// Propagates FEM failures.
pub fn reference_midplane_field(
    geom: &TsvGeometry,
    res: &BlockResolution,
    materials: &MaterialSet,
    layout: &BlockLayout,
    delta_t: f64,
    samples_per_block: usize,
    solver: LinearSolver,
) -> Result<(ScalarField2d, morestress_fem::SolveStats), FemError> {
    let mesh = array_mesh(geom, res, layout);
    let (_, _, npz) = mesh.lattice_dims();
    let mut bcs = DirichletBcs::new();
    bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
    bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
    let sol = solve_thermal_stress(&mesh, materials, delta_t, &bcs, solver)?;
    let p = geom.pitch;
    let grid = PlaneGrid::new(
        [0.0, 0.0],
        [p * layout.nx() as f64, p * layout.ny() as f64],
        0.5 * geom.height,
        samples_per_block * layout.nx(),
        samples_per_block * layout.ny(),
    );
    let field = sample_von_mises(&mesh, materials, &sol.displacement, delta_t, &grid)?;
    Ok((field, sol.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use morestress_fem::normalized_mae;

    fn build_coarse(pitch: f64) -> SuperpositionSolver {
        SuperpositionSolver::build(
            &TsvGeometry::paper_defaults(pitch),
            &BlockResolution::coarse(),
            &MaterialSet::tsv_defaults(),
        )
        .expect("kernel build")
    }

    #[test]
    fn kernel_decays_away_from_the_via() {
        let s = build_coarse(15.0);
        let near = s.kernel.eval(3.5, 0.0);
        let far = s.kernel.eval(14.0, 14.0);
        let mag = |t: &[f64; 6]| t.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(
            mag(&near) > 5.0 * mag(&far),
            "kernel should decay: near {} far {}",
            mag(&near),
            mag(&far)
        );
    }

    #[test]
    fn kernel_is_zero_outside_support() {
        let s = build_coarse(15.0);
        assert_eq!(s.kernel.eval(23.0, 0.0), [0.0; 6]);
        assert_eq!(s.kernel.eval(0.0, -30.0), [0.0; 6]);
    }

    #[test]
    fn single_tsv_array_reproduces_reference_well() {
        // For a 3×3 array with ONE central TSV, superposition is nearly
        // exact by construction (it is the very problem the kernel was
        // extracted from).
        let geom = TsvGeometry::paper_defaults(15.0);
        let res = BlockResolution::coarse();
        let mats = MaterialSet::tsv_defaults();
        let s = SuperpositionSolver::build(&geom, &res, &mats).unwrap();
        let layout = BlockLayout::uniform(1, 1, BlockKind::Tsv).padded(1);
        let field = s.evaluate_array(&layout, -250.0, 10);
        let (reference, _) = reference_midplane_field(
            &geom,
            &res,
            &mats,
            &layout,
            -250.0,
            10,
            LinearSolver::DirectCholesky,
        )
        .unwrap();
        let err = normalized_mae(&field, &reference);
        assert!(err < 0.05, "single-TSV superposition error {err}");
    }

    #[test]
    fn dense_array_error_grows_when_pitch_shrinks() {
        // The paper's headline failure mode of the baseline: tighter pitch →
        // stronger neglected coupling → larger error. On a small 3×3 test
        // array the free lateral edges dominate the whole-field MAE, so the
        // comparison is restricted to the central block, where coupling is
        // the only error source.
        let res = BlockResolution::coarse();
        let mats = MaterialSet::tsv_defaults();
        let g = 8;
        let mut errs = Vec::new();
        for pitch in [15.0, 10.0] {
            let geom = TsvGeometry::paper_defaults(pitch);
            let s = SuperpositionSolver::build(&geom, &res, &mats).unwrap();
            let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv);
            let field = s.evaluate_array(&layout, -250.0, g).subregion(g, g, g, g);
            let (reference, _) = reference_midplane_field(
                &geom,
                &res,
                &mats,
                &layout,
                -250.0,
                g,
                LinearSolver::DirectCholesky,
            )
            .unwrap();
            errs.push(normalized_mae(&field, &reference.subregion(g, g, g, g)));
        }
        assert!(
            errs[1] > errs[0],
            "p=10 interior error {} should exceed p=15 interior error {}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn evaluation_is_linear_in_thermal_load() {
        let s = build_coarse(15.0);
        let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
        let f1 = s.evaluate_array(&layout, -125.0, 6);
        let f2 = s.evaluate_array(&layout, -250.0, 6);
        for (a, b) in f1.values.iter().zip(&f2.values) {
            assert!((2.0 * a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
    }
}
