//! CI gate for the machine-readable benchmark artifacts.
//!
//! Parses every `BENCH_*.json` at the workspace root (or the files named
//! on the command line) with the same reader the emitters use and
//! validates the artifact schema: parseable two-level `{section: {key:
//! number}}` shape, at least one non-empty section per file, every value
//! finite, and the uniform `record_bench_entries` stamps
//! (`hardware_threads`, `git_commit`) present in every section. Exits
//! non-zero — failing the CI job — on any violation.
//!
//! The no-args scan validates the committed full-run artifacts only —
//! `*.quick.json` redirects (written under `MORESTRESS_BENCH_QUICK=1`) are
//! excluded, because a stale quick file from an older sweep would fail the
//! scan for reasons unrelated to the change under test. To validate a
//! quick sweep's output, name the files it just produced:
//!
//! ```text
//! cargo run -p morestress-bench --bin check_bench_json            # committed artifacts
//! cargo run -p morestress-bench --bin check_bench_json BENCH_PR7.quick.json
//! ```

use morestress_bench::{bench_json_path_for, check_bench_sections, parse_bench_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<std::path::PathBuf> = if args.is_empty() {
        let root = bench_json_path_for("");
        let mut found: Vec<_> = std::fs::read_dir(&root)
            .unwrap_or_else(|e| panic!("cannot list workspace root {}: {e}", root.display()))
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    // Skip `.quick.json` redirects: quick-mode runs only
                    // re-emit the sections they exercised, so a stale
                    // leftover from an older sweep would fail the scan for
                    // reasons unrelated to the current change. CI names
                    // the quick files it just produced explicitly.
                    .is_some_and(|n| {
                        n.starts_with("BENCH_")
                            && n.ends_with(".json")
                            && !n.ends_with(".quick.json")
                    })
            })
            .collect();
        found.sort();
        found
    } else {
        args.iter().map(std::path::PathBuf::from).collect()
    };
    if files.is_empty() {
        eprintln!("check_bench_json: no BENCH_*.json artifacts found");
        std::process::exit(1);
    }

    let mut failed = false;
    for path in &files {
        let name = path.display();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL {name}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let Some(sections) = parse_bench_json(&text) else {
            eprintln!("FAIL {name}: not in the {{section: {{key: number}}}} format");
            failed = true;
            continue;
        };
        let problems = check_bench_sections(&sections);
        if problems.is_empty() {
            let keys: usize = sections.iter().map(|(_, kv)| kv.len()).sum();
            println!("ok   {name}: {} sections, {keys} keys", sections.len());
        } else {
            for problem in &problems {
                eprintln!("FAIL {name}: {problem}");
            }
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
