//! Regenerates the MORE-Stress paper's tables and figures.
//!
//! ```sh
//! cargo run -p morestress-bench --bin repro --release -- all --scale small
//! cargo run -p morestress-bench --bin repro --release -- table1 --scale paper
//! ```
//!
//! Subcommands: `table1`, `table2`, `table3`, `fig6`, `all`.
//! Scales: `small` (default, laptop minutes) or `paper` (closer to the
//! paper's sizes; the full-FEM reference stays capped — see EXPERIMENTS.md).

use morestress_bench::{
    fmt_bytes, fmt_err, one_shot, peak_rss_bytes, table1_row, table2_row, table2_setup,
    table3_series, Row, Scale,
};
use morestress_mesh::TsvGeometry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::small();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "table1" | "table2" | "table3" | "fig6" | "all" => which = a.clone(),
            "--scale" => {
                let name = it.next().map(String::as_str).unwrap_or("small");
                scale = Scale::from_name(name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}' (use small|paper)");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: repro [table1|table2|table3|fig6|all] [--scale small|paper]");
                std::process::exit(2);
            }
        }
    }

    println!("MORE-Stress reproduction harness — scale '{}'", scale.name);
    println!("(absolute numbers are laptop-scale; compare *shapes* to the paper)\n");
    let run_all = which == "all";
    if run_all || which == "table1" {
        table1(&scale);
    }
    if run_all || which == "table2" {
        table2(&scale);
    }
    if run_all || which == "table3" {
        table3(&scale, false);
    }
    if run_all || which == "fig6" {
        table3(&scale, true);
    }
    if let Some(rss) = peak_rss_bytes() {
        println!("\n[process peak RSS: {}]", fmt_bytes(rss));
    }
}

fn print_rows(rows: &[Row]) {
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    let header = labels
        .iter()
        .map(|l| format!("{l:>12}"))
        .collect::<Vec<_>>()
        .join("");
    println!("{:31}{header}", "");
    let fem_time: Vec<String> = rows
        .iter()
        .map(|r| r.fem.map_or("-".into(), |m| format!("{:.2?}", m.time)))
        .collect();
    let fem_mem: Vec<String> = rows
        .iter()
        .map(|r| r.fem.map_or("-".into(), |m| fmt_bytes(m.bytes)))
        .collect();
    print_line("FEM (ours)", "time", &fem_time);
    print_line("", "memory", &fem_mem);
    print_line(
        "Linear superposition",
        "time",
        &rows
            .iter()
            .map(|r| format!("{:.2?}", r.superposition.time))
            .collect::<Vec<_>>(),
    );
    print_line(
        "",
        "memory",
        &rows
            .iter()
            .map(|r| fmt_bytes(r.superposition.bytes))
            .collect::<Vec<_>>(),
    );
    print_line(
        "",
        "error",
        &rows
            .iter()
            .map(|r| fmt_err(r.superposition.error))
            .collect::<Vec<_>>(),
    );
    print_line(
        "Ours (MORE-Stress)",
        "time",
        &rows
            .iter()
            .map(|r| format!("{:.2?}", r.rom.time))
            .collect::<Vec<_>>(),
    );
    print_line(
        "",
        "memory",
        &rows
            .iter()
            .map(|r| fmt_bytes(r.rom.bytes))
            .collect::<Vec<_>>(),
    );
    print_line(
        "",
        "error",
        &rows
            .iter()
            .map(|r| fmt_err(r.rom.error))
            .collect::<Vec<_>>(),
    );
    // Improvement rows, as in the paper.
    let speedup: Vec<String> = rows
        .iter()
        .map(|r| {
            r.fem.map_or("-".into(), |m| {
                format!(
                    "{:.0}x",
                    m.time.as_secs_f64() / r.rom.time.as_secs_f64().max(1e-9)
                )
            })
        })
        .collect();
    let memred: Vec<String> = rows
        .iter()
        .map(|r| {
            r.fem.map_or("-".into(), |m| {
                format!("{:.0}x", m.bytes as f64 / r.rom.bytes.max(1) as f64)
            })
        })
        .collect();
    let acc: Vec<String> = rows
        .iter()
        .map(|r| match (r.superposition.error, r.rom.error) {
            (Some(ls), Some(rom)) if rom > 0.0 => format!("{:.1}x", ls / rom),
            _ => "-".into(),
        })
        .collect();
    print_line("Improve. over FEM", "time", &speedup);
    print_line("", "memory", &memred);
    print_line("Improve. over LS", "accuracy", &acc);
}

fn print_line(group: &str, what: &str, cells: &[String]) {
    let row = cells
        .iter()
        .map(|c| format!("{c:>12}"))
        .collect::<Vec<_>>()
        .join("");
    println!("{group:<22}{what:>9}{row}");
}

fn table1(scale: &Scale) {
    println!("== Table 1: standalone TSV arrays (scenario 1) ==");
    for pitch in [15.0, 10.0] {
        let geom = TsvGeometry::paper_defaults(pitch);
        println!("\n-- p = {pitch} µm --");
        let shot = one_shot(&geom, scale, false).expect("one-shot stage");
        println!(
            "one-shot local stage: {:.2?} (superposition kernel: {:.2?})",
            shot.local_stage_time, shot.kernel_time
        );
        let rows: Vec<Row> = scale
            .sizes
            .iter()
            .map(|&s| table1_row(&geom, scale, &shot, s).expect("table1 row"))
            .collect();
        print_rows(&rows);
    }
}

fn table2(scale: &Scale) {
    println!("\n== Table 2: sub-modeled array in a chiplet (scenario 2) ==");
    for pitch in [15.0, 10.0] {
        let geom = TsvGeometry::paper_defaults(pitch);
        println!("\n-- p = {pitch} µm --");
        let shot = one_shot(&geom, scale, true).expect("one-shot stage");
        let setup = table2_setup(&geom, scale).expect("chiplet setup");
        println!(
            "coarse chiplet solve: {:.2?}, warpage {:.2} µm; array {}x{} (+{} dummy rings)",
            setup.chiplet.solve_time,
            setup.chiplet.warpage(),
            scale.table2_core,
            scale.table2_core,
            scale.table2_rings,
        );
        let rows: Vec<Row> = (0..5)
            .map(|loc| table2_row(&geom, scale, &shot, &setup, loc).expect("table2 row"))
            .collect();
        print_rows(&rows);
    }
}

fn table3(scale: &Scale, as_figure: bool) {
    let geom = TsvGeometry::paper_defaults(15.0);
    let series = table3_series(&geom, scale).expect("table3 series");
    if as_figure {
        println!("\n== Fig. 6: error & runtime vs element DoFs n (log-scale error) ==");
        println!(
            "{:>6} {:>8} {:>12} {:>14}",
            "n", "error%", "global", "(nx,ny,nz)"
        );
        for p in &series {
            println!(
                "{:>6} {:>8.3} {:>12.2?}   ({m},{m},{m})",
                p.n,
                p.error * 100.0,
                p.global_time,
                m = p.order
            );
        }
        return;
    }
    println!(
        "\n== Table 3: convergence on a {}x{} array, p = 15 µm ==",
        scale.table3_size, scale.table3_size
    );
    println!(
        "{:>10} {:>6} {:>14} {:>14} {:>9}",
        "(nx,ny,nz)", "n", "local stage", "global stage", "error"
    );
    for p in &series {
        println!(
            "({m},{m},{m})    {:>6} {:>14.2?} {:>14.2?} {:>8.3}%",
            p.n,
            p.local_time,
            p.global_time,
            p.error * 100.0,
            m = p.order
        );
    }
}
