//! Shared harness for regenerating the MORE-Stress paper's experiments.
//!
//! The `repro` binary and the Criterion benches both drive the scenario
//! runners in this crate. Every experiment (Table 1, Table 2, Table 3 /
//! Fig. 6) has a runner that produces the same rows/series the paper
//! reports: wall time, peak memory and normalized MAE for the full-FEM
//! reference ("ANSYS substitute"), the linear-superposition baseline and
//! MORE-Stress.
//!
//! Absolute numbers differ from the paper (our substrate is a from-scratch
//! Rust FEM on laptop-scale meshes, not ANSYS on a 330 GB server), but the
//! *shape* — who wins, by what rough factor, how errors trend with array
//! size, pitch and interpolation order — is the reproduction target; see
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use morestress_chiplet::{
    standard_locations, ChipletGeometry, ChipletModel, ChipletResolution, Submodel,
};
use morestress_core::{GlobalBc, MoreStressSimulator, RomError};
use morestress_fem::{
    normalized_mae, sample_von_mises, solve_thermal_stress, DirichletBcs, LinearSolver,
    MaterialSet, PlaneGrid, ScalarField2d,
};
use morestress_mesh::{array_mesh, BlockKind, BlockLayout, BlockResolution, TsvGeometry};
use morestress_superpos::SuperpositionSolver;

/// The thermal load used by all paper experiments (anneal 275 °C → 25 °C).
pub const DELTA_T: f64 = -250.0;

/// Experiment scale: how closely to approach the paper's problem sizes.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable name ("small", "paper").
    pub name: &'static str,
    /// Unit-block mesh resolution.
    pub res: BlockResolution,
    /// Interpolation nodes per axis for Tables 1 and 2.
    pub interp: [usize; 3],
    /// Array sizes of Table 1.
    pub sizes: Vec<usize>,
    /// Largest array for which the full-FEM reference is computed (beyond
    /// this, error columns are reported as `-`).
    pub fem_limit: usize,
    /// Von Mises samples per block edge (paper: 100).
    pub samples: usize,
    /// Core array size of Table 2 (paper: 15).
    pub table2_core: usize,
    /// Dummy rings around the Table 2 array (paper: 2).
    pub table2_rings: usize,
    /// Array size of the Table 3 convergence study (paper: 20).
    pub table3_size: usize,
    /// Interpolation counts swept by Table 3.
    pub table3_orders: Vec<usize>,
}

impl Scale {
    /// Laptop scale: runs all experiments in a few minutes.
    pub fn small() -> Self {
        Self {
            name: "small",
            res: BlockResolution::coarse(),
            // The paper uses (4,4,4) on large arrays; on this scale's tiny
            // arrays the boundary dominates, so one more node per axis is
            // needed for the paper's error ordering to emerge.
            interp: [5, 5, 5],
            sizes: vec![2, 4, 6, 8, 10],
            fem_limit: 6,
            samples: 10,
            table2_core: 3,
            table2_rings: 1,
            table3_size: 4,
            table3_orders: vec![2, 3, 4, 5, 6],
        }
    }

    /// Closer to the paper's setup (minutes to hours; the reference FEM is
    /// still capped well below 50×50 — a 50×50 paper-resolution reference
    /// needs hundreds of GB, which is the very cost the paper measures).
    pub fn paper() -> Self {
        Self {
            name: "paper",
            res: BlockResolution::medium(),
            interp: [4, 4, 4],
            sizes: vec![10, 20, 30, 40, 50],
            fem_limit: 10,
            samples: 25,
            table2_core: 15,
            table2_rings: 2,
            table3_size: 20,
            table3_orders: vec![2, 3, 4, 5, 6],
        }
    }

    /// Parses a `--scale` argument.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

/// Cost/accuracy triple of one method on one case.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall time.
    pub time: Duration,
    /// Analytic peak heap estimate (bytes).
    pub bytes: usize,
    /// Normalized MAE vs the full-FEM reference (`None` when the reference
    /// was skipped, or for the reference itself).
    pub error: Option<f64>,
}

/// One row of Table 1 / Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label ("10x10", "loc3", …).
    pub label: String,
    /// Full-FEM reference cost (skipped above [`Scale::fem_limit`]).
    pub fem: Option<Measurement>,
    /// Linear superposition cost + error.
    pub superposition: Measurement,
    /// MORE-Stress cost + error.
    pub rom: Measurement,
}

/// The one-shot artifacts shared by the rows of one pitch.
pub struct OneShot {
    /// The ROM simulator (TSV + dummy models).
    pub sim: MoreStressSimulator,
    /// The superposition kernel.
    pub superpos: SuperpositionSolver,
    /// Wall time of the ROM local stage(s).
    pub local_stage_time: Duration,
    /// Wall time of the superposition kernel build.
    pub kernel_time: Duration,
}

/// Runs the one-shot stages for a pitch (local stage + kernel build).
///
/// # Errors
///
/// Propagates build failures from either method.
pub fn one_shot(geom: &TsvGeometry, scale: &Scale, build_dummy: bool) -> Result<OneShot, RomError> {
    let mats = MaterialSet::tsv_defaults();
    let t0 = Instant::now();
    let sim = MoreStressSimulator::builder(geom)
        .resolution(scale.res)
        .interpolation(scale.interp)
        .materials(mats.clone())
        .build_dummy(build_dummy)
        .build()?;
    let local_stage_time = t0.elapsed();
    let t0 = Instant::now();
    let superpos = SuperpositionSolver::build(geom, &scale.res, &mats).map_err(RomError::Fem)?;
    let kernel_time = t0.elapsed();
    Ok(OneShot {
        sim,
        superpos,
        local_stage_time,
        kernel_time,
    })
}

/// The scenario-1 reference field (clamped array, full FEM).
///
/// # Errors
///
/// Propagates FEM failures.
pub fn scenario1_reference(
    geom: &TsvGeometry,
    scale: &Scale,
    layout: &BlockLayout,
) -> Result<(ScalarField2d, Measurement), RomError> {
    let mats = MaterialSet::tsv_defaults();
    let t0 = Instant::now();
    let (field, stats) = morestress_superpos::reference_midplane_field(
        geom,
        &scale.res,
        &mats,
        layout,
        DELTA_T,
        scale.samples,
        LinearSolver::Auto,
    )?;
    Ok((
        field,
        Measurement {
            time: t0.elapsed(),
            bytes: stats.peak_bytes,
            error: None,
        },
    ))
}

/// Runs one Table 1 row: an `size × size` clamped array at the given pitch.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table1_row(
    geom: &TsvGeometry,
    scale: &Scale,
    shot: &OneShot,
    size: usize,
) -> Result<Row, RomError> {
    let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
    let reference = if size <= scale.fem_limit {
        Some(scenario1_reference(geom, scale, &layout)?)
    } else {
        None
    };

    let t0 = Instant::now();
    let ls_field = shot
        .superpos
        .evaluate_array(&layout, DELTA_T, scale.samples);
    let ls_time = t0.elapsed();
    let ls = Measurement {
        time: ls_time,
        bytes: shot.superpos.stats.kernel_bytes + ls_field.values.len() * 8,
        error: reference
            .as_ref()
            .map(|(f, _)| normalized_mae(&ls_field, f)),
    };

    let t0 = Instant::now();
    let solution = shot
        .sim
        .solve_array(&layout, DELTA_T, &GlobalBc::ClampedTopBottom)?;
    let rom_field = shot
        .sim
        .sample_midplane(&layout, &solution, DELTA_T, scale.samples)?;
    let rom_time = t0.elapsed();
    let rom = Measurement {
        time: rom_time,
        bytes: solution.stats.peak_bytes + rom_field.values.len() * 8,
        error: reference
            .as_ref()
            .map(|(f, _)| normalized_mae(&rom_field, f)),
    };

    Ok(Row {
        label: format!("{size}x{size}"),
        fem: reference.map(|(_, m)| m),
        superposition: ls,
        rom,
    })
}

/// Scenario-2 context: the coarse chiplet and the padded array layout.
pub struct Table2Setup {
    /// The solved coarse package model.
    pub chiplet: Arc<ChipletModel>,
    /// The padded array layout (core + dummy rings).
    pub layout: BlockLayout,
    /// Lateral size of the array box (µm).
    pub array_size: f64,
    /// The five array origins (loc1–loc5).
    pub locations: [[f64; 2]; 5],
}

/// Solves the coarse chiplet and places the Table 2 array.
///
/// # Errors
///
/// Propagates FEM failures from the coarse solve.
pub fn table2_setup(geom: &TsvGeometry, scale: &Scale) -> Result<Table2Setup, RomError> {
    let mats = MaterialSet::tsv_defaults();
    let chiplet_geom = ChipletGeometry::bench_defaults();
    let chiplet = Arc::new(
        ChipletModel::solve(&chiplet_geom, &ChipletResolution::coarse(), &mats, DELTA_T)
            .map_err(RomError::Fem)?,
    );
    let layout = BlockLayout::uniform(scale.table2_core, scale.table2_core, BlockKind::Tsv)
        .padded(scale.table2_rings);
    let array_size = geom.pitch * layout.nx() as f64;
    let locations = standard_locations(&chiplet_geom, array_size);
    Ok(Table2Setup {
        chiplet,
        layout,
        array_size,
        locations,
    })
}

/// Runs one Table 2 row: the array at location `loc_index` (0-based).
///
/// # Errors
///
/// Propagates solver failures.
pub fn table2_row(
    geom: &TsvGeometry,
    scale: &Scale,
    shot: &OneShot,
    setup: &Table2Setup,
    loc_index: usize,
) -> Result<Row, RomError> {
    let mats = MaterialSet::tsv_defaults();
    let sub = Submodel::new(&setup.chiplet, setup.locations[loc_index], setup.array_size);
    let layout = &setup.layout;

    // Reference: full FEM of the sub-model with coarse boundary data.
    let t0 = Instant::now();
    let mesh = array_mesh(geom, &scale.res, layout);
    let mut bcs = DirichletBcs::new();
    let bc_fn = sub.boundary_displacement(&setup.chiplet);
    for &n in &mesh.boundary_box_nodes() {
        bcs.set_node(n, bc_fn(mesh.nodes()[n]));
    }
    let fem = solve_thermal_stress(&mesh, &mats, DELTA_T, &bcs, LinearSolver::Auto)?;
    let grid = PlaneGrid::new(
        [0.0, 0.0],
        [setup.array_size, setup.array_size],
        0.5 * geom.height,
        scale.samples * layout.nx(),
        scale.samples * layout.ny(),
    );
    let reference = sample_von_mises(&mesh, &mats, &fem.displacement, DELTA_T, &grid)?;
    let fem_meas = Measurement {
        time: t0.elapsed(),
        bytes: fem.stats.peak_bytes,
        error: None,
    };

    // Linear superposition with the coarse background stress.
    let t0 = Instant::now();
    let bg = sub.background_stress(&setup.chiplet);
    let ls_field =
        shot.superpos
            .evaluate_array_with_background(layout, DELTA_T, scale.samples, |p| bg(p));
    let ls = Measurement {
        time: t0.elapsed(),
        bytes: shot.superpos.stats.kernel_bytes + ls_field.values.len() * 8,
        error: Some(normalized_mae(&ls_field, &reference)),
    };

    // MORE-Stress through sub-modeling.
    let t0 = Instant::now();
    let bc = GlobalBc::SubmodelBoundary(sub.boundary_displacement(&setup.chiplet));
    let solution = shot.sim.solve_array(layout, DELTA_T, &bc)?;
    let rom_field = shot
        .sim
        .sample_midplane(layout, &solution, DELTA_T, scale.samples)?;
    let rom = Measurement {
        time: t0.elapsed(),
        bytes: solution.stats.peak_bytes + rom_field.values.len() * 8,
        error: Some(normalized_mae(&rom_field, &reference)),
    };

    Ok(Row {
        label: format!("loc{}", loc_index + 1),
        fem: Some(fem_meas),
        superposition: ls,
        rom,
    })
}

/// One point of the Table 3 / Fig. 6 convergence series.
#[derive(Debug, Clone, Copy)]
pub struct ConvergencePoint {
    /// Interpolation nodes per axis.
    pub order: usize,
    /// Element DoFs `n` (Eq. 16).
    pub n: usize,
    /// One-shot local stage runtime.
    pub local_time: Duration,
    /// Global stage runtime (solve + sampling).
    pub global_time: Duration,
    /// Normalized MAE vs the full-FEM reference.
    pub error: f64,
}

/// Runs the Table 3 / Fig. 6 convergence sweep.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table3_series(geom: &TsvGeometry, scale: &Scale) -> Result<Vec<ConvergencePoint>, RomError> {
    let mats = MaterialSet::tsv_defaults();
    let layout = BlockLayout::uniform(scale.table3_size, scale.table3_size, BlockKind::Tsv);
    let (reference, _) = scenario1_reference(geom, scale, &layout)?;
    let mut out = Vec::new();
    for &m in &scale.table3_orders {
        let t0 = Instant::now();
        let sim = MoreStressSimulator::builder(geom)
            .resolution(scale.res)
            .interpolation([m, m, m])
            .materials(mats.clone())
            .build()?;
        let local_time = t0.elapsed();
        let t0 = Instant::now();
        let solution = sim.solve_array(&layout, DELTA_T, &GlobalBc::ClampedTopBottom)?;
        let field = sim.sample_midplane(&layout, &solution, DELTA_T, scale.samples)?;
        let global_time = t0.elapsed();
        out.push(ConvergencePoint {
            order: m,
            n: sim.tsv_model().num_dofs(),
            local_time,
            global_time,
            error: normalized_mae(&field, &reference),
        });
    }
    Ok(out)
}

/// Formats a byte count like the paper's memory columns.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{:.2} G", bytes as f64 / (1u64 << 30) as f64)
    } else {
        format!("{:.1} M", bytes as f64 / (1u64 << 20) as f64)
    }
}

/// A 2-D 5-point lattice with mildly jittered diagonal (`nx · ny` DoFs) —
/// the shared ≥50k-DoF test operator of the solver ablation benches
/// (`ablation_supernodal`, `ablation_parallel_factor`).
pub fn jittered_lattice(nx: usize, ny: usize) -> morestress_linalg::CsrMatrix {
    let n = nx * ny;
    let id = |i: usize, j: usize| j * nx + i;
    let mut coo = morestress_linalg::CooMatrix::new(n, n);
    for j in 0..ny {
        for i in 0..nx {
            let me = id(i, j);
            coo.push(me, me, 4.0 + 0.1 + 0.05 * ((me * 7) % 5) as f64);
            let mut link = |other: usize| coo.push(me, other, -1.0);
            if i > 0 {
                link(id(i - 1, j));
            }
            if i + 1 < nx {
                link(id(i + 1, j));
            }
            if j > 0 {
                link(id(i, j - 1));
            }
            if j + 1 < ny {
                link(id(i, j + 1));
            }
        }
    }
    coo.to_csr()
}

/// Median of a set of timing samples, in milliseconds (sorts in place).
pub fn median_ms(samples: &mut [Duration]) -> f64 {
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

/// Times `f` three times and returns the median in milliseconds together
/// with the last result — the quick measured-comparison harness the
/// solver ablation benches share.
pub fn time3<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = None;
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let t0 = Instant::now();
        out = Some(f());
        samples.push(t0.elapsed());
    }
    (median_ms(&mut samples), out.expect("ran at least once"))
}

/// Formats an optional error as a percentage.
pub fn fmt_err(e: Option<f64>) -> String {
    e.map_or_else(|| "-".to_string(), |v| format!("{:.2}%", v * 100.0))
}

/// Linux peak-RSS readout (`VmHWM`), for a sanity cross-check of the
/// analytic memory estimates. Returns `None` off Linux.
pub fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: usize = rest.trim().trim_end_matches(" kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// True when `MORESTRESS_BENCH_QUICK` is set (non-empty and not `"0"`):
/// the ablation benches shrink to tiny problem sizes so CI's `bench-smoke`
/// job can *run* every emitter end to end — exercising the measurement and
/// JSON-recording logic, not just compiling it — in seconds.
pub fn quick_mode() -> bool {
    std::env::var("MORESTRESS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Picks `full` for a real benchmark run, `quick` under
/// [`quick_mode`] — the one-liner the ablation benches size their
/// problems with.
pub fn quick_or<T>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Path of a machine-readable benchmark record at the workspace root
/// (`BENCH_PR3.json`, `BENCH_PR4.json`, …).
pub fn bench_json_path_for(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file)
}

/// Path of the machine-readable benchmark record the PR-3 acceptance
/// criteria read (`BENCH_PR3.json` at the workspace root).
pub fn bench_json_path() -> std::path::PathBuf {
    bench_json_path_for("BENCH_PR3.json")
}

/// One bench-record section: a name plus its key → number entries.
pub type BenchSection = (String, Vec<(String, f64)>);

/// Merges one section of benchmark numbers into `BENCH_PR3.json` — see
/// [`record_bench_json_in`].
pub fn record_bench_json(section: &str, entries: &[(&str, f64)]) {
    record_bench_json_in("BENCH_PR3.json", section, entries);
}

/// Merges one section of benchmark numbers into the named record file at
/// the workspace root. Borrowed-key convenience over
/// [`record_bench_entries`].
pub fn record_bench_json_in(file: &str, section: &str, entries: &[(&str, f64)]) {
    record_bench_entries(
        file,
        section,
        entries
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
    );
}

/// `hardware_threads` of this machine, as recorded in every bench section.
pub fn hardware_threads() -> f64 {
    std::thread::available_parallelism().map_or(1, |p| p.get()) as f64
}

/// The current git commit as a number (the first 12 hex digits of `HEAD`,
/// parsed base-16 — 48 bits, exact in an `f64`), or 0 when git is
/// unavailable. The bench records are numbers-only JSON, so the hash is
/// stored numerically; `format!("{:012x}", v as u64)` recovers the short
/// hash.
pub fn git_commit_number() -> f64 {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| u64::from_str_radix(String::from_utf8_lossy(&out.stdout).trim(), 16).ok())
        .map_or(0.0, |v| v as f64)
}

/// Merges one section of benchmark numbers into the named record file at
/// the workspace root — the single output path every bench emitter routes
/// through (the per-bench borrow/format dance used to be duplicated across
/// `ablation_global_solver` and `ablation_parallel_factor`).
///
/// The file is a flat two-level JSON object `{section: {key: number}}`;
/// each bench overwrites its own section and leaves the others in place,
/// so `ablation_parallel_factor` and `ablation_global_solver` can both
/// contribute to one record. Every written section is uniformly stamped
/// with [`hardware_threads`] and [`git_commit_number`] (caller-provided
/// values for those keys are replaced), which is what the
/// `check_bench_json` CI gate verifies. The stored format is exactly what
/// [`parse_bench_json`] reads back — no external JSON dependency.
///
/// Under [`quick_mode`] the record is redirected to `<stem>.quick.json`
/// (git-ignored): quick runs exist to prove the emitters work, and their
/// tiny-workload numbers must never clobber the committed measurements.
/// The `check_bench_json` no-args scan skips quick files (a stale
/// leftover must not fail an unrelated run); CI validates the quick files
/// its sweep just produced by naming them explicitly.
pub fn record_bench_entries(file: &str, section: &str, entries: Vec<(String, f64)>) {
    let file = if quick_mode() {
        file.replace(".json", ".quick.json")
    } else {
        file.to_string()
    };
    let path = bench_json_path_for(&file);
    let mut sections: Vec<BenchSection> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| parse_bench_json(&text))
        .unwrap_or_default();
    sections.retain(|(name, _)| name != section);
    let mut entries = entries;
    entries.retain(|(k, _)| k != "hardware_threads" && k != "git_commit");
    entries.push(("hardware_threads".to_string(), hardware_threads()));
    entries.push(("git_commit".to_string(), git_commit_number()));
    sections.push((section.to_string(), entries));
    sections.sort_by(|a, b| a.0.cmp(&b.0));
    if let Err(e) = std::fs::write(&path, format_bench_sections(&sections)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Serializes sections into the two-level `{section: {key: number}}` text
/// that [`parse_bench_json`] reads back — shared by
/// [`record_bench_entries`] and the campaign results writer. Section
/// order is preserved as given.
pub fn format_bench_sections(sections: &[BenchSection]) -> String {
    let mut out = String::from("{\n");
    for (si, (name, kvs)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{name}\": {{\n"));
        for (ki, (k, v)) in kvs.iter().enumerate() {
            let comma = if ki + 1 < kvs.len() { "," } else { "" };
            out.push_str(&format!("    \"{k}\": {v}{comma}\n"));
        }
        let comma = if si + 1 < sections.len() { "," } else { "" };
        out.push_str(&format!("  }}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parses the two-level `{section: {key: number}}` format written by
/// [`record_bench_json`]. Returns `None` on any shape surprise (the writer
/// then starts a fresh file).
pub fn parse_bench_json(text: &str) -> Option<Vec<BenchSection>> {
    let mut sections = Vec::new();
    let mut current: Option<BenchSection> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if line == "{" || line.is_empty() {
            continue;
        }
        if line == "}" {
            // Closes the current section, or (with none open) the file.
            if let Some(done) = current.take() {
                sections.push(done);
            }
        } else if let Some(name) = line.strip_suffix(": {") {
            if current.is_some() {
                return None; // nested deeper than sections — not our format
            }
            current = Some((name.trim().trim_matches('"').to_string(), Vec::new()));
        } else if let Some((k, v)) = line.split_once(':') {
            let key = k.trim().trim_matches('"').to_string();
            let value: f64 = v.trim().parse().ok()?;
            current.as_mut()?.1.push((key, value));
        } else {
            return None;
        }
    }
    Some(sections)
}

/// Validates one parsed bench record against the artifact schema the
/// `check_bench_json` CI gate enforces: at least one section, every
/// section non-empty, every value finite, and the uniform
/// [`record_bench_entries`] stamps present (`hardware_threads >= 1` and
/// `git_commit`). Returns the violations found (empty means valid).
pub fn check_bench_sections(sections: &[BenchSection]) -> Vec<String> {
    let mut problems = Vec::new();
    if sections.is_empty() {
        problems.push("record has no sections".to_string());
    }
    for (name, entries) in sections {
        if entries.is_empty() {
            problems.push(format!("section {name:?} is empty"));
        }
        for (key, value) in entries {
            if !value.is_finite() {
                problems.push(format!("section {name:?}: {key} = {value} is not finite"));
            }
        }
        let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        match get("hardware_threads") {
            None => problems.push(format!("section {name:?} is missing hardware_threads")),
            Some(v) if v < 1.0 => {
                problems.push(format!("section {name:?}: hardware_threads = {v} < 1"));
            }
            Some(_) => {}
        }
        if get("git_commit").is_none() {
            problems.push(format!("section {name:?} is missing git_commit"));
        }
    }
    problems
}
