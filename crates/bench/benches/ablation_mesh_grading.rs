//! Ablation: graded vs uniform unit-block meshes. The graded grid
//! concentrates cells in the via/liner band; a uniform grid needs far more
//! cells for the same liner resolution. This bench compares assembly+factor
//! cost at comparable liner resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_fem::{assemble_system, MaterialSet};
use morestress_linalg::SparseCholesky;
use morestress_mesh::{
    unit_block_mesh, BlockResolution, Grid1d, HexMesh, TsvGeometry, MAT_CU, MAT_LINER, MAT_SI,
};

/// A uniform-lateral-grid unit block with roughly the graded mesh's band
/// cell size everywhere.
fn uniform_block(geom: &TsvGeometry, cells: usize, z_cells: usize) -> HexMesh {
    let lateral = Grid1d::uniform(0.0, geom.pitch, cells);
    let zg = Grid1d::uniform(0.0, geom.height, z_cells);
    let c = 0.5 * geom.pitch;
    let r_cu = 0.5 * geom.diameter;
    let r_liner = geom.liner_outer_radius();
    HexMesh::from_grids(lateral.clone(), lateral, zg, move |p| {
        let r = ((p[0] - c).powi(2) + (p[1] - c).powi(2)).sqrt();
        Some(if r < r_cu {
            MAT_CU
        } else if r < r_liner {
            MAT_LINER
        } else {
            MAT_SI
        })
    })
}

fn bench_grading(c: &mut Criterion) {
    // No extra MORESTRESS_BENCH_QUICK shrink: the graded-vs-uniform
    // comparison only means something at matched liner resolution, and
    // `coarse()` is already the smallest preset — the CI smoke run only
    // drops to single-iteration timing.
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let mats = MaterialSet::tsv_defaults();

    let graded = unit_block_mesh(&geom, &res, true);
    // Graded band cell ≈ 7/6 ≈ 1.17 µm; a uniform grid at that pitch needs
    // ceil(15 / 1.17) ≈ 13 cells.
    let uniform = uniform_block(&geom, 13, res.z_cells);
    println!(
        "graded: {} elems / {} nodes; uniform at matched band resolution: {} elems / {} nodes",
        graded.num_elems(),
        graded.num_nodes(),
        uniform.num_elems(),
        uniform.num_nodes()
    );

    let mut group = c.benchmark_group("ablation_mesh_grading");
    group.sample_size(10);
    for (name, mesh) in [("graded", &graded), ("uniform", &uniform)] {
        group.bench_function(format!("assemble_factor_{name}"), |b| {
            b.iter(|| {
                let sys = assemble_system(mesh, &mats).expect("assembly");
                SparseCholesky::factor(&sys.stiffness).ok(); // singular w/o BCs is fine to skip
                sys.stiffness.nnz()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grading);
criterion_main!(benches);
