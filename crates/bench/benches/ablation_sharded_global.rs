//! Ablation: the sharded (Schur-complement) global stage vs the monolithic
//! direct solve on the batched multi-load array workload — cold solve
//! (assembly + shard factorization + sweep), warm solve (assembly + panel
//! sweeps over cached factors), the factor share of the cold path, and the
//! peak *per-shard* factor bytes, across shard counts {1, 2, 4}. The
//! per-shard byte column is the point of sharding: it is what stops
//! growing with the array once the plan splits.
//!
//! Records its medians into `BENCH_PR5.json` (section
//! `ablation_sharded_global`), uniformly stamped like every record, so the
//! `check_bench_json` CI gate can validate it. Under
//! `MORESTRESS_BENCH_QUICK=1` the array, load count and interpolation
//! order shrink so CI can run the emitter end to end.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{one_shot, quick_or, record_bench_entries, Scale};
use morestress_core::{GlobalBc, GlobalStage, RomSolver};
use morestress_linalg::FactorCache;
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_sharded_global(c: &mut Criterion) {
    let mut scale = Scale::small();
    if morestress_bench::quick_mode() {
        scale.interp = [3, 3, 3];
    }
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");
    let array = quick_or(6usize, 3);
    let layout = BlockLayout::uniform(array, array, BlockKind::Tsv);
    let bc = GlobalBc::ClampedTopBottom;
    let loads: Vec<f64> = (0..quick_or(8, 3))
        .map(|k| -250.0 + 40.0 * k as f64)
        .collect();
    let warm_reps = quick_or(5usize, 2);

    let mut entries: Vec<(String, f64)> = vec![
        ("loads".into(), loads.len() as f64),
        ("array".into(), array as f64),
    ];
    for shards in SHARD_COUNTS {
        let cache = FactorCache::new();
        let stage = || {
            GlobalStage::new(shot.sim.tsv_model())
                .with_solver(RomSolver::Sharded { shards })
                .with_cache(&cache)
        };
        let t0 = Instant::now();
        let batch = stage()
            .solve_many(&layout, &loads, &bc)
            .expect("cold sharded solve");
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = batch[0].stats;
        let mut warm: Vec<f64> = (0..warm_reps)
            .map(|_| {
                let t0 = Instant::now();
                stage()
                    .solve_many(&layout, &loads, &bc)
                    .expect("warm sharded solve");
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        warm.sort_by(f64::total_cmp);
        let warm_ms = warm[warm.len() / 2];
        println!(
            "sharded global ({array}×{array}, {} loads, request {shards} shards → \
             {} shards / {} interface DoFs): cold {cold_ms:.1} ms, warm {warm_ms:.1} ms \
             (factor share ≈ {:.1} ms), peak shard factor {} bytes",
            loads.len(),
            stats.shards,
            stats.interface_dofs,
            (cold_ms - warm_ms).max(0.0),
            stats.shard_factor_bytes,
        );
        entries.extend([
            (format!("cold_solve_many_ms_{shards}s"), cold_ms),
            (format!("warm_solve_many_ms_{shards}s"), warm_ms),
            (format!("factor_ms_{shards}s"), (cold_ms - warm_ms).max(0.0)),
            (format!("shards_{shards}s"), stats.shards as f64),
            (
                format!("interface_dofs_{shards}s"),
                stats.interface_dofs as f64,
            ),
            (
                format!("peak_shard_factor_bytes_{shards}s"),
                stats.shard_factor_bytes as f64,
            ),
            (format!("free_dofs_{shards}s"), stats.free_dofs as f64),
        ]);
    }
    record_bench_entries("BENCH_PR5.json", "ablation_sharded_global", entries);

    // Criterion points: warm batched sweeps, monolithic route vs sharded.
    let mut group = c.benchmark_group("ablation_sharded_global");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let cache = FactorCache::new();
        GlobalStage::new(shot.sim.tsv_model())
            .with_solver(RomSolver::Sharded { shards })
            .with_cache(&cache)
            .solve_many(&layout, &loads, &bc)
            .expect("warm-up solve");
        group.bench_with_input(
            BenchmarkId::new("warm_solve_many", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    GlobalStage::new(shot.sim.tsv_model())
                        .with_solver(RomSolver::Sharded { shards })
                        .with_cache(&cache)
                        .solve_many(&layout, &loads, &bc)
                        .expect("warm sharded solve")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_global);
criterion_main!(benches);
