//! Criterion bench for Table 3 / Fig. 6: how local- and global-stage cost
//! grows with the number of interpolation nodes (the accuracy knob). The
//! paper's Table 3 shows both runtimes rising with n while the error falls;
//! this bench reproduces the runtime halves of those columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{Scale, DELTA_T};
use morestress_core::{
    GlobalBc, InterpolationGrid, LocalStage, LocalStageOptions, MoreStressSimulator,
};
use morestress_fem::MaterialSet;
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

fn bench_table3(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let mats = MaterialSet::tsv_defaults();
    let layout = BlockLayout::uniform(scale.table3_size, scale.table3_size, BlockKind::Tsv);

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for m in [2usize, 3, 4] {
        let interp = InterpolationGrid::new([m, m, m]);
        group.bench_with_input(BenchmarkId::new("local_stage", m), &interp, |b, interp| {
            b.iter(|| {
                LocalStage::new(&geom, &scale.res, *interp, &mats, BlockKind::Tsv)
                    .build(&LocalStageOptions::default())
                    .expect("local stage")
            })
        });
        let sim = MoreStressSimulator::builder(&geom)
            .resolution(scale.res)
            .interpolation_grid(interp)
            .materials(mats.clone())
            .build()
            .expect("simulator");
        group.bench_with_input(BenchmarkId::new("global_stage", m), &sim, |b, sim| {
            b.iter(|| {
                sim.solve_array(&layout, DELTA_T, &GlobalBc::ClampedTopBottom)
                    .expect("global stage")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
