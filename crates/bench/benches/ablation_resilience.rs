//! Ablation: what the resilience layer costs on the clean path. The
//! ladder's promise is "free until needed" — a healthy SPD solve through
//! the [`Resilient`] wrapping (and the `Auto` policy that routes through
//! it) must price out at the plain direct backend plus one residual
//! sweep. Measured on the jittered lattice the global stage factors:
//!
//! * `direct` — `DirectCholesky`, verification off (the pre-resilience
//!   baseline);
//! * `verify_report` / `verify_enforce` — the same backend with the
//!   residual check recording / gating, isolating the verification sweep;
//! * `resilient` — the full ladder on the clean path (direct factor + one
//!   self-verification, no escalation);
//! * `ladder_recovery` — the worst case: a broken pivot pushes one
//!   prepare down the regularized/GMRES rungs, bounding what a real fault
//!   costs end to end.
//!
//! Records its medians into `BENCH_PR8.json` (section
//! `ablation_resilience`) for the `check_bench_json` CI gate. Under
//! `MORESTRESS_BENCH_QUICK=1` the lattice and batch shrink so CI can run
//! the emitter end to end.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_bench::{jittered_lattice, quick_or, record_bench_entries, time3};
use morestress_linalg::{
    DirectCholesky, FaultPlan, Resilient, SolverBackend, VerifyPolicy, WorkPool,
};

fn bench_resilience(c: &mut Criterion) {
    let nx = quick_or(96usize, 24);
    let ny = quick_or(80usize, 20);
    let a = Arc::new(jittered_lattice(nx, ny));
    let n = a.nrows();
    let nrhs = quick_or(8usize, 3);
    let rhs: Vec<Vec<f64>> = (0..nrhs)
        .map(|k| (0..n).map(|i| ((i * (k + 3)) % 11) as f64 - 5.0).collect())
        .collect();
    let pool = WorkPool::new(4);

    let solve_with = |backend: &dyn SolverBackend, verify: VerifyPolicy| {
        pool.install(|| {
            backend
                .prepare(Arc::clone(&a))
                .expect("clean SPD lattice")
                .with_verify(verify)
                .solve_many(&rhs, 4)
                .expect("clean solve")
        })
    };

    let direct = DirectCholesky::default();
    let (direct_ms, base) = time3(|| solve_with(&direct, VerifyPolicy::Off));
    let (report_ms, _) = time3(|| solve_with(&direct, VerifyPolicy::Report));
    let (enforce_ms, _) = time3(|| solve_with(&direct, VerifyPolicy::Enforce { tol: 1e-8 }));

    let resilient = Resilient::default();
    let (resilient_ms, wrapped) = time3(|| solve_with(&resilient, VerifyPolicy::Off));
    // The clean path's bitwise contract, asserted right in the emitter.
    for (x, y) in base.xs.iter().zip(&wrapped.xs) {
        for (p, q) in x.iter().zip(y) {
            assert_eq!(p.to_bits(), q.to_bits(), "resilient clean path diverged");
        }
    }
    assert!(wrapped.report.degradation.is_empty());

    // Worst case: a zeroed pivot sends one prepare down the ladder.
    let mut broken = (*a).clone();
    FaultPlan::new(7).break_pivot(&mut broken);
    let broken = Arc::new(broken);
    let (ladder_ms, _) = time3(|| {
        pool.install(|| {
            let prepared = resilient
                .prepare(Arc::clone(&broken))
                .expect("the ladder never fails preparation on finite input");
            assert!(!prepared.prep_degradation().is_empty());
            // The recovered solve may still refuse (typed) on a hostile
            // operator; the bench times the attempt either way.
            let _ = prepared.solve(&rhs[0]);
        })
    });

    let per_solve = |total_ms: f64| total_ms / nrhs as f64;
    println!(
        "resilience overhead ({nx}×{ny}, {nrhs} loads): direct {direct_ms:.1} ms, \
         +report {:.2} ms/solve, +enforce {:.2} ms/solve, resilient {resilient_ms:.1} ms \
         (+{:.2} ms/solve), ladder recovery {ladder_ms:.1} ms",
        per_solve(report_ms - direct_ms).max(0.0),
        per_solve(enforce_ms - direct_ms).max(0.0),
        per_solve(resilient_ms - direct_ms).max(0.0),
    );
    record_bench_entries(
        "BENCH_PR8.json",
        "ablation_resilience",
        vec![
            ("dofs".into(), n as f64),
            ("loads".into(), nrhs as f64),
            ("direct_solve_ms".into(), direct_ms),
            ("verify_report_ms".into(), report_ms),
            ("verify_enforce_ms".into(), enforce_ms),
            ("resilient_solve_ms".into(), resilient_ms),
            (
                "verify_overhead_ms_per_solve".into(),
                per_solve(report_ms - direct_ms).max(0.0),
            ),
            (
                "resilient_overhead_ms_per_solve".into(),
                per_solve(resilient_ms - direct_ms).max(0.0),
            ),
            ("ladder_recovery_ms".into(), ladder_ms),
        ],
    );

    // Criterion point: the clean resilient batched solve (prepare cached
    // outside the loop — the steady-state shape the global stage runs).
    let mut group = c.benchmark_group("ablation_resilience");
    group.sample_size(10);
    let prepared = resilient
        .prepare(Arc::clone(&a))
        .expect("clean SPD lattice");
    group.bench_function("resilient_solve_many", |b| {
        b.iter(|| pool.install(|| prepared.solve_many(&rhs, 4).expect("clean solve")))
    });
    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
