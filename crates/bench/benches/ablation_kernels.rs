//! Ablation: the swappable dense microkernels (`scalar` oracle, `blocked`
//! `mul_add` tiles, `avx2` intrinsics under `--features simd`) compared on
//! (a) the raw rank-k update that dominates the supernodal flop count and
//! (b) an end-to-end ≥50k-DoF lattice factorization per kernel.
//!
//! Besides the Criterion-style console lines, this bench records its
//! medians into `BENCH_PR6.json` (section `kernels`) so CI and the
//! ROADMAP can quote machine-readable numbers: per-kernel rank-k GFLOP/s,
//! per-kernel factor milliseconds, and the blocked-vs-scalar speedup the
//! PR-6 acceptance criterion reads.

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_bench::{jittered_lattice as lattice, quick_or, record_bench_entries, time3};
use morestress_linalg::{FillOrdering, KernelChoice, SupernodalCholesky, SupernodalOptions};

/// Times `reps` rank-k updates on a `m × wd` descendant panel restricted
/// to `wj` columns and returns the median throughput in GFLOP/s.
fn rankk_gflops(kernel: KernelChoice, m: usize, wd: usize, wj: usize, reps: usize) -> f64 {
    let kern = kernel.kernel();
    let lo = 0usize;
    let mu = m - lo;
    // Deterministic panel data in [-1, 1]; the update buffer accumulates
    // across reps (bounded: |entry| ≤ wd · reps), which keeps the hot loop
    // free of memset traffic.
    let panel: Vec<f64> = (0..wd * m).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut update = vec![0.0_f64; wj * mu];
    let (ms, _) = time3(|| {
        for _ in 0..reps {
            kern.rank_update(&mut update, &panel, m, lo, wj, wd);
        }
        std::hint::black_box(&mut update);
    });
    let flops = 2.0 * wd as f64 * wj as f64 * mu as f64 * reps as f64;
    flops / (ms * 1e6)
}

fn bench_kernels(c: &mut Criterion) {
    // 224 × 224 = 50_176 DoFs — the ≥50k-DoF lattice the acceptance
    // criterion names (tiny under MORESTRESS_BENCH_QUICK, where the CI
    // smoke job only proves the emitter runs).
    let side = quick_or(224usize, 40);
    let a = lattice(side, side);
    let n = a.nrows();
    let nd_perm = FillOrdering::NestedDissection.permutation(&a);

    // Rank-k microkernel geometry: a 512-row panel of 32 descendant
    // columns scattered into a 32-wide target — the tall-skinny shape the
    // supernodal sweep feeds the kernel on this kind of lattice.
    let (md, wd, wj) = (512usize, 32usize, 32usize);
    let reps = quick_or(256usize, 8);

    let mut entries: Vec<(String, f64)> = vec![("dofs".to_string(), n as f64)];
    let mut factor_ms = Vec::new();
    for &kernel in KernelChoice::available() {
        let name = kernel.resolved_name();
        let gflops = rankk_gflops(kernel, md, wd, wj, reps);
        let (ms, chol) = time3(|| {
            SupernodalCholesky::factor_with_permutation(
                &a,
                nd_perm.clone(),
                &SupernodalOptions {
                    kernel,
                    ..SupernodalOptions::default()
                },
            )
            .expect("SPD")
        });
        assert_eq!(chol.kernel_name(), name, "stats must record the kernel");
        println!(
            "kernel ablation ({n} DoFs): {name:>7}  rank-k {gflops:.2} GFLOP/s | \
             factor {ms:.1} ms"
        );
        entries.push((format!("rankk_gflops_{name}"), gflops));
        entries.push((format!("factor_ms_{name}"), ms));
        factor_ms.push((name, ms));
    }
    let lookup = |key: &str| factor_ms.iter().find(|(k, _)| *k == key).map(|&(_, v)| v);
    if let (Some(scalar), Some(blocked)) = (lookup("scalar"), lookup("blocked")) {
        entries.push(("speedup_blocked_vs_scalar".to_string(), scalar / blocked));
    }
    record_bench_entries("BENCH_PR6.json", "kernels", entries);

    // --- Criterion points on the bare rank-k update (kept quick) --------
    let mut group = c.benchmark_group("ablation_kernels");
    group.sample_size(10);
    for &kernel in KernelChoice::available() {
        let kern = kernel.kernel();
        let (m, lo) = (192usize, 0usize);
        let mu = m - lo;
        let panel: Vec<f64> = (0..16 * m).map(|i| (i as f64 * 0.53).cos()).collect();
        let mut update = vec![0.0_f64; 16 * mu];
        group.bench_function(format!("rank_update_{}", kernel.resolved_name()), |bch| {
            bch.iter(|| {
                kern.rank_update(&mut update, &panel, m, lo, 16, 16);
                std::hint::black_box(&mut update);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
