//! Ablation: thread count of the one-shot local stage. The paper runs its
//! local stage with 16 threads; the n+1 local solves share one Cholesky
//! factor and parallelize at task level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_core::{InterpolationGrid, LocalStage, LocalStageOptions};
use morestress_fem::MaterialSet;
use morestress_mesh::{BlockKind, BlockResolution, TsvGeometry};

fn bench_parallel_local(c: &mut Criterion) {
    let geom = TsvGeometry::paper_defaults(15.0);
    let stage = LocalStage::new(
        &geom,
        &BlockResolution::coarse(),
        InterpolationGrid::new([4, 4, 4]),
        &MaterialSet::tsv_defaults(),
        BlockKind::Tsv,
    );

    let mut group = c.benchmark_group("ablation_parallel_local");
    group.sample_size(10);
    let max = std::thread::available_parallelism().map_or(8, |p| p.get());
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("local_stage", threads),
            &threads,
            |b, &threads| b.iter(|| stage.build(&LocalStageOptions { threads }).expect("build")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_local);
criterion_main!(benches);
