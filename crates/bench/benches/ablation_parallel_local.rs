//! Ablation: thread count of the one-shot local stage. The paper runs its
//! local stage with 16 threads; the n+1 local solves share one Cholesky
//! factor and parallelize at task level on the shared [`WorkPool`].
//!
//! The `spawn_overhead` group isolates what the pool buys over the pre-pool
//! pattern (a fresh `std::thread::scope` per stage call): both dispatchers
//! run the same task-counter loop over a local-stage-shaped task set whose
//! tasks are trivially small, so the measured difference is almost pure
//! spawn/teardown cost — exactly the per-call overhead a placement loop
//! that builds thousands of small stages keeps paying without the pool.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_core::{InterpolationGrid, LocalStage, LocalStageOptions};
use morestress_fem::MaterialSet;
use morestress_linalg::WorkPool;
use morestress_mesh::{BlockKind, BlockResolution, TsvGeometry};

fn bench_parallel_local(c: &mut Criterion) {
    let geom = TsvGeometry::paper_defaults(15.0);
    // Tiny interpolation order under MORESTRESS_BENCH_QUICK: the CI smoke
    // job runs one build per thread count, so size it in seconds.
    let interp = morestress_bench::quick_or([4usize, 4, 4], [2, 2, 2]);
    let stage = LocalStage::new(
        &geom,
        &BlockResolution::coarse(),
        InterpolationGrid::new(interp),
        &MaterialSet::tsv_defaults(),
        BlockKind::Tsv,
    );

    let mut group = c.benchmark_group("ablation_parallel_local");
    group.sample_size(10);
    let max = std::thread::available_parallelism().map_or(8, |p| p.get());
    for threads in [1usize, 2, 4, 8] {
        if threads > max {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("local_stage", threads),
            &threads,
            |b, &threads| b.iter(|| stage.build(&LocalStageOptions { threads }).expect("build")),
        );
    }
    group.finish();
}

fn bench_spawn_overhead(c: &mut Criterion) {
    // The local stage's dispatch shape with [3,3,3] interpolation: a small
    // task set (n+1 = 79 tasks) of near-zero work each, fanned over 8
    // workers — small enough that per-call spawn cost dominates.
    const TASKS: usize = 79;
    const WORKERS: usize = 8;
    let tiny_task = |i: usize| {
        black_box(i.wrapping_mul(0x9E37_79B9).rotate_left(7));
    };

    let mut group = c.benchmark_group("spawn_overhead");

    // Pre-PR pattern: every stage call spawns (and joins) fresh threads.
    group.bench_function("adhoc_scope", |b| {
        b.iter(|| {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..WORKERS {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= TASKS {
                            return;
                        }
                        tiny_task(i);
                    });
                }
            });
        })
    });

    // Post-PR pattern: the same task set on the warm shared pool.
    let pool = WorkPool::new(WORKERS);
    pool.scope_chunks(WORKERS, TASKS, tiny_task); // warm the workers up
    group.bench_function("warm_pool", |b| {
        b.iter(|| {
            pool.scope_chunks(WORKERS, TASKS, tiny_task);
        })
    });

    // And the real thing at a size where the overhead is still visible: a
    // coarse [2,2,2] local-stage build (25 tasks of real but small solves).
    let small_stage = LocalStage::new(
        &TsvGeometry::paper_defaults(10.0),
        &BlockResolution::coarse(),
        InterpolationGrid::new([2, 2, 2]),
        &MaterialSet::tsv_defaults(),
        BlockKind::Tsv,
    );
    let opts = LocalStageOptions { threads: WORKERS };
    group.bench_function("small_local_stage_warm_pool", |b| {
        b.iter(|| pool.install(|| small_stage.build(&opts).expect("build")))
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_local, bench_spawn_overhead);
criterion_main!(benches);
