//! Ablation: GMRES (the paper's choice, §4.3) vs CG on the global reduced
//! system. The global operator is SPD (Galerkin projection of SPD
//! elasticity), so CG is admissible; the bench shows whether the paper's
//! GMRES pick costs anything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{one_shot, Scale, DELTA_T};
use morestress_core::{GlobalBc, GlobalStage, RomSolver};
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

fn bench_global_solver(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");

    let mut group = c.benchmark_group("ablation_global_solver");
    group.sample_size(10);
    for size in [4usize, 8] {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        for (name, solver) in [
            ("gmres", RomSolver::Gmres { tol: 1e-9 }),
            ("cg", RomSolver::Cg { tol: 1e-9 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, size),
                &(layout.clone(), solver),
                |b, (layout, solver)| {
                    b.iter(|| {
                        GlobalStage::new(shot.sim.tsv_model())
                            .with_solver(*solver)
                            .solve(layout, DELTA_T, &GlobalBc::ClampedTopBottom)
                            .expect("global solve")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_global_solver);
criterion_main!(benches);
