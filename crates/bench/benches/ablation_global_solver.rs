//! Ablation: GMRES (the paper's choice, §4.3) vs CG on the global reduced
//! system. The global operator is SPD (Galerkin projection of SPD
//! elasticity), so CG is admissible; the bench shows whether the paper's
//! GMRES pick costs anything.
//!
//! A second group measures the batched multi-load path: `solve_many` (one
//! assembly + one prepared factorization + k cheap solves, optionally with
//! a warm `FactorCache`) against a loop of independent `solve` calls — the
//! paper's Table 1/2 many-load workload.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{one_shot, quick_or, record_bench_json_in, Scale, DELTA_T};
use morestress_core::{GlobalBc, GlobalStage, RomSolver};
use morestress_linalg::FactorCache;
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

/// Benchmark scale: the standard small scale, shrunk further (lower
/// interpolation order) under `MORESTRESS_BENCH_QUICK` so the CI smoke job
/// can run the emitters end to end.
fn bench_scale() -> Scale {
    let mut scale = Scale::small();
    if morestress_bench::quick_mode() {
        scale.interp = [3, 3, 3];
    }
    scale
}

fn bench_global_solver(c: &mut Criterion) {
    let scale = bench_scale();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");

    let mut group = c.benchmark_group("ablation_global_solver");
    group.sample_size(10);
    for size in quick_or(vec![4usize, 8], vec![2]) {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        for (name, solver) in [
            ("gmres", RomSolver::Gmres { tol: 1e-9 }),
            ("cg", RomSolver::Cg { tol: 1e-9 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, size),
                &(layout.clone(), solver),
                |b, (layout, solver)| {
                    b.iter(|| {
                        GlobalStage::new(shot.sim.tsv_model())
                            .with_solver(*solver)
                            .solve(layout, DELTA_T, &GlobalBc::ClampedTopBottom)
                            .expect("global solve")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_batched_loads(c: &mut Criterion) {
    let scale = bench_scale();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");
    let array = quick_or(6usize, 3);
    let layout = BlockLayout::uniform(array, array, BlockKind::Tsv);
    let bc = GlobalBc::ClampedTopBottom;
    // A thermal sweep: 8 distinct loads on one lattice.
    let loads: Vec<f64> = (0..quick_or(8, 3))
        .map(|k| -250.0 + 40.0 * k as f64)
        .collect();

    // --- Measured medians for the BENCH_PR3.json record ------------------
    // The PR-1 baseline for this exact workload (8-load sweep, 6×6 array,
    // warm FactorCache, scalar Cholesky kernel) was 131 ms; the acceptance
    // bar is ≥2× on the warm batched path.
    {
        let cache = FactorCache::new();
        let stage = || {
            GlobalStage::new(shot.sim.tsv_model())
                .with_solver(RomSolver::DirectCholesky)
                .with_cache(&cache)
        };
        let t0 = Instant::now();
        stage()
            .solve_many(&layout, &loads, &bc)
            .expect("cold batched solve");
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut warm: Vec<f64> = (0..quick_or(7, 2))
            .map(|_| {
                let t0 = Instant::now();
                stage()
                    .solve_many(&layout, &loads, &bc)
                    .expect("warm batched solve");
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        warm.sort_by(f64::total_cmp);
        let warm_ms = warm[warm.len() / 2];
        println!(
            "batched {}-load sweep ({array}×{array}): cold {cold_ms:.1} ms, \
             warm {warm_ms:.1} ms (PR 1 baseline: warm 131 ms)",
            loads.len()
        );
        // The same workload point goes into both records: BENCH_PR3.json
        // is the original measurement of this sweep, BENCH_PR4.json tracks
        // how the elimination-tree-parallel factorization (and the
        // `FillOrdering::Auto` probe, which picks RCM on this dense-row
        // reduced operator) moved the cold point.
        let shared = [
            ("loads", loads.len() as f64),
            ("array", array as f64),
            ("cold_solve_many_ms", cold_ms),
            ("warm_solve_many_ms", warm_ms),
        ];
        let mut pr3 = shared.to_vec();
        if !morestress_bench::quick_mode() {
            // The PR-1 baseline was measured on the full 6×6/8-load
            // workload — comparing a shrunken quick run against it would
            // be meaningless.
            pr3.push(("pr1_warm_baseline_ms", 131.0));
            pr3.push(("speedup_vs_pr1_warm", 131.0 / warm_ms));
        }
        record_bench_json_in("BENCH_PR3.json", "ablation_global_solver", &pr3);
        record_bench_json_in("BENCH_PR4.json", "ablation_global_solver", &shared);
    }

    let mut group = c.benchmark_group("ablation_batched_loads");
    group.sample_size(10);
    for (name, solver) in [
        ("cholesky", RomSolver::DirectCholesky),
        ("gmres", RomSolver::Gmres { tol: 1e-9 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("solve_loop", name),
            &solver,
            |b, solver| {
                b.iter(|| {
                    loads
                        .iter()
                        .map(|&dt| {
                            GlobalStage::new(shot.sim.tsv_model())
                                .with_solver(*solver)
                                .solve(&layout, dt, &bc)
                                .expect("global solve")
                        })
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_many", name),
            &solver,
            |b, solver| {
                b.iter(|| {
                    GlobalStage::new(shot.sim.tsv_model())
                        .with_solver(*solver)
                        .solve_many(&layout, &loads, &bc)
                        .expect("batched global solve")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_many_cached", name),
            &solver,
            |b, solver| {
                let cache = FactorCache::new();
                // Warm the cache once; timed iterations then skip preparation.
                GlobalStage::new(shot.sim.tsv_model())
                    .with_solver(*solver)
                    .with_cache(&cache)
                    .solve_many(&layout, &loads, &bc)
                    .expect("warm-up solve");
                b.iter(|| {
                    GlobalStage::new(shot.sim.tsv_model())
                        .with_solver(*solver)
                        .with_cache(&cache)
                        .solve_many(&layout, &loads, &bc)
                        .expect("batched global solve")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_global_solver, bench_batched_loads);
criterion_main!(benches);
