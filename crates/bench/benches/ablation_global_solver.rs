//! Ablation: GMRES (the paper's choice, §4.3) vs CG on the global reduced
//! system. The global operator is SPD (Galerkin projection of SPD
//! elasticity), so CG is admissible; the bench shows whether the paper's
//! GMRES pick costs anything.
//!
//! A second group measures the batched multi-load path: `solve_many` (one
//! assembly + one prepared factorization + k cheap solves, optionally with
//! a warm `FactorCache`) against a loop of independent `solve` calls — the
//! paper's Table 1/2 many-load workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{one_shot, Scale, DELTA_T};
use morestress_core::{GlobalBc, GlobalStage, RomSolver};
use morestress_linalg::FactorCache;
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

fn bench_global_solver(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");

    let mut group = c.benchmark_group("ablation_global_solver");
    group.sample_size(10);
    for size in [4usize, 8] {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        for (name, solver) in [
            ("gmres", RomSolver::Gmres { tol: 1e-9 }),
            ("cg", RomSolver::Cg { tol: 1e-9 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, size),
                &(layout.clone(), solver),
                |b, (layout, solver)| {
                    b.iter(|| {
                        GlobalStage::new(shot.sim.tsv_model())
                            .with_solver(*solver)
                            .solve(layout, DELTA_T, &GlobalBc::ClampedTopBottom)
                            .expect("global solve")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_batched_loads(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");
    let layout = BlockLayout::uniform(6, 6, BlockKind::Tsv);
    let bc = GlobalBc::ClampedTopBottom;
    // A thermal sweep: 8 distinct loads on one lattice.
    let loads: Vec<f64> = (0..8).map(|k| -250.0 + 40.0 * k as f64).collect();

    let mut group = c.benchmark_group("ablation_batched_loads");
    group.sample_size(10);
    for (name, solver) in [
        ("cholesky", RomSolver::DirectCholesky),
        ("gmres", RomSolver::Gmres { tol: 1e-9 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("solve_loop", name),
            &solver,
            |b, solver| {
                b.iter(|| {
                    loads
                        .iter()
                        .map(|&dt| {
                            GlobalStage::new(shot.sim.tsv_model())
                                .with_solver(*solver)
                                .solve(&layout, dt, &bc)
                                .expect("global solve")
                        })
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_many", name),
            &solver,
            |b, solver| {
                b.iter(|| {
                    GlobalStage::new(shot.sim.tsv_model())
                        .with_solver(*solver)
                        .solve_many(&layout, &loads, &bc)
                        .expect("batched global solve")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_many_cached", name),
            &solver,
            |b, solver| {
                let cache = FactorCache::new();
                // Warm the cache once; timed iterations then skip preparation.
                GlobalStage::new(shot.sim.tsv_model())
                    .with_solver(*solver)
                    .with_cache(&cache)
                    .solve_many(&layout, &loads, &bc)
                    .expect("warm-up solve");
                b.iter(|| {
                    GlobalStage::new(shot.sim.tsv_model())
                        .with_solver(*solver)
                        .with_cache(&cache)
                        .solve_many(&layout, &loads, &bc)
                        .expect("batched global solve")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_global_solver, bench_batched_loads);
criterion_main!(benches);
