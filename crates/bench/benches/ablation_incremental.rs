//! Ablation: incremental shard-local re-factorization vs a full sharded
//! prepare on the batched multi-load array workload. A placement move
//! swaps one corner block TSV ↔ dummy — value-only (the lattice pattern
//! depends only on the array shape) — and the hoisted [`Sharded`] backend
//! re-factors just the shards the block touches, reuses every other
//! shard's factor and stored clique, and rebuilds only the small
//! interface system. Measured against: the cold full prepare, a
//! from-scratch prepare of the *same* perturbed operator (the cost the
//! incremental route avoids), and the warm cached solve (the floor — no
//! preparation at all). The acceptance shape: `incremental − warm` ≈ one
//! shard's factor + clique + the interface refactor, well under
//! `scratch − warm`.
//!
//! Records its medians into `BENCH_PR7.json` (section
//! `ablation_incremental`), uniformly stamped like every record, so the
//! `check_bench_json` CI gate can validate it. Under
//! `MORESTRESS_BENCH_QUICK=1` the array and load count shrink so CI can
//! run the emitter end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_bench::{median_ms, one_shot, quick_or, record_bench_entries, time3, Scale};
use morestress_core::{GlobalBc, GlobalStage, ReducedOrderModel};
use morestress_linalg::{FactorCache, Sharded};
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

const SHARDS: usize = 4;

/// A stage over the given hoisted backend — the caller keeps the backend
/// alive, so its shard cache and retained previous preparation persist
/// across solves (the incremental route's working state).
fn stage<'a>(
    tsv: &'a ReducedOrderModel,
    dummy: &'a ReducedOrderModel,
    backend: &'a Sharded,
) -> GlobalStage<'a> {
    GlobalStage::new(tsv)
        .with_dummy(dummy)
        .expect("compatible ROMs")
        .with_backend(backend)
}

fn bench_incremental(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, true).expect("one-shot stage");
    let tsv = shot.sim.tsv_model();
    let dummy = shot.sim.dummy_model().expect("dummy ROM built");
    let array = quick_or(6usize, 3);
    let base = BlockLayout::uniform(array, array, BlockKind::Tsv);
    let mut perturbed = base.clone();
    perturbed.set_kind(0, 0, BlockKind::Dummy);
    let bc = GlobalBc::ClampedTopBottom;
    let loads: Vec<f64> = (0..quick_or(8, 3))
        .map(|k| -250.0 + 40.0 * k as f64)
        .collect();

    // Cold: full prepare (every shard factored) + batched solve.
    let backend = Sharded::new(SHARDS);
    let t0 = std::time::Instant::now();
    let cold = stage(tsv, dummy, &backend)
        .solve_many(&base, &loads, &bc)
        .expect("cold sharded solve");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_stats = cold[0].stats;

    // Incremental: one corner block swapped. Alternate back and forth so
    // every repetition pays a real dirty-shard re-preparation (median of
    // 3, like the other measured comparisons); time only the perturbed leg.
    let mut samples = Vec::with_capacity(3);
    let mut incr_batch = None;
    for _ in 0..3 {
        stage(tsv, dummy, &backend)
            .solve_many(&base, &loads, &bc)
            .expect("base re-solve");
        let t0 = std::time::Instant::now();
        let batch = stage(tsv, dummy, &backend)
            .solve_many(&perturbed, &loads, &bc)
            .expect("incremental re-solve");
        samples.push(t0.elapsed());
        incr_batch = Some(batch);
    }
    let incr_ms = median_ms(&mut samples);
    let incr_batch = incr_batch.expect("three repetitions ran");
    let incr_stats = incr_batch[0].stats;

    // From-scratch reference on the same perturbed operator: a fresh
    // backend has no previous preparation to reuse.
    let (scratch_ms, scratch_batch) = time3(|| {
        let fresh = Sharded::new(SHARDS);
        stage(tsv, dummy, &fresh)
            .solve_many(&perturbed, &loads, &bc)
            .expect("from-scratch sharded solve")
    });
    // Bitwise identity of the routes, asserted right in the emitter.
    for (a, b) in incr_batch.iter().zip(&scratch_batch) {
        assert_eq!(
            a.nodal_displacement(),
            b.nodal_displacement(),
            "incremental bits must match from-scratch bits"
        );
    }

    // Warm floor: the same prepared solver served from a FactorCache —
    // assembly + panel sweeps, no preparation at all.
    let cache = FactorCache::new();
    let warm_backend = Sharded::new(SHARDS);
    stage(tsv, dummy, &warm_backend)
        .with_cache(&cache)
        .solve_many(&perturbed, &loads, &bc)
        .expect("warm-up solve");
    let (warm_ms, _) = time3(|| {
        stage(tsv, dummy, &warm_backend)
            .with_cache(&cache)
            .solve_many(&perturbed, &loads, &bc)
            .expect("warm sharded solve")
    });

    println!(
        "incremental re-factorization ({array}×{array}, {} loads, {} shards / {} interface DoFs): \
         cold {cold_ms:.1} ms, incremental {incr_ms:.1} ms ({} of {} shards refactored), \
         from-scratch {scratch_ms:.1} ms, warm {warm_ms:.1} ms \
         (re-prepare {:.1} ms vs full prepare {:.1} ms)",
        loads.len(),
        cold_stats.shards,
        cold_stats.interface_dofs,
        incr_stats.shards_refactored,
        incr_stats.shards,
        (incr_ms - warm_ms).max(0.0),
        (scratch_ms - warm_ms).max(0.0),
    );
    record_bench_entries(
        "BENCH_PR7.json",
        "ablation_incremental",
        vec![
            ("array".into(), array as f64),
            ("loads".into(), loads.len() as f64),
            ("shards".into(), cold_stats.shards as f64),
            ("interface_dofs".into(), cold_stats.interface_dofs as f64),
            ("cold_solve_ms".into(), cold_ms),
            ("incr_solve_ms".into(), incr_ms),
            ("scratch_solve_ms".into(), scratch_ms),
            ("warm_solve_ms".into(), warm_ms),
            ("incr_prepare_ms".into(), (incr_ms - warm_ms).max(0.0)),
            ("full_prepare_ms".into(), (scratch_ms - warm_ms).max(0.0)),
            (
                "shards_refactored".into(),
                incr_stats.shards_refactored as f64,
            ),
            ("shards_reused".into(), incr_stats.shards_reused as f64),
        ],
    );

    // Criterion point: one placement move (incremental re-prepare +
    // batched solve), alternating layouts so every iteration re-prepares.
    let mut group = c.benchmark_group("ablation_incremental");
    group.sample_size(10);
    let backend = Sharded::new(SHARDS);
    stage(tsv, dummy, &backend)
        .solve_many(&base, &loads, &bc)
        .expect("warm-up solve");
    let mut flip = false;
    group.bench_function("placement_move_solve_many", |b| {
        b.iter(|| {
            let layout = if flip { &base } else { &perturbed };
            flip = !flip;
            stage(tsv, dummy, &backend)
                .solve_many(layout, &loads, &bc)
                .expect("incremental re-solve")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
