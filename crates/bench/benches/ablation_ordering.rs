//! Ablation: RCM vs natural ordering for the local-stage sparse Cholesky.
//! DESIGN.md calls out RCM as the fill-reducing ordering; this bench
//! quantifies what it buys on the real unit-block operator (`A_ff`).

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_fem::{assemble_system, MaterialSet};
use morestress_linalg::SparseCholesky;
use morestress_mesh::{unit_block_mesh, BlockResolution, TsvGeometry};

fn bench_ordering(c: &mut Criterion) {
    // No extra MORESTRESS_BENCH_QUICK shrink: the subject is the *real*
    // unit-block operator, and `coarse()` is already the smallest preset —
    // the CI smoke run only drops to single-iteration timing.
    let geom = TsvGeometry::paper_defaults(15.0);
    let mesh = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
    let sys = assemble_system(&mesh, &MaterialSet::tsv_defaults()).expect("assembly");
    // Interior block: drop the boundary rows/cols like the local stage does.
    let boundary = mesh.boundary_box_nodes();
    let mut fixed = vec![false; mesh.num_nodes()];
    for &b in &boundary {
        fixed[b] = true;
    }
    let free: Vec<usize> = (0..mesh.num_nodes())
        .filter(|&n| !fixed[n])
        .flat_map(|n| [3 * n, 3 * n + 1, 3 * n + 2])
        .collect();
    let mut col_map = vec![None; 3 * mesh.num_nodes()];
    for (new, &old) in free.iter().enumerate() {
        col_map[old] = Some(new);
    }
    let a_ff = sys.stiffness.extract(&free, &col_map, free.len());

    let fill_rcm = SparseCholesky::factor(&a_ff)
        .expect("rcm factor")
        .factor_nnz();
    let fill_nat = SparseCholesky::factor_natural(&a_ff)
        .expect("natural factor")
        .factor_nnz();
    println!(
        "A_ff: {} dofs, {} nnz; factor fill rcm = {fill_rcm}, natural = {fill_nat} ({:.2}x)",
        a_ff.nrows(),
        a_ff.nnz(),
        fill_nat as f64 / fill_rcm as f64
    );

    let mut group = c.benchmark_group("ablation_ordering");
    group.sample_size(10);
    group.bench_function("factor_rcm", |b| {
        b.iter(|| SparseCholesky::factor(&a_ff).expect("factor"))
    });
    group.bench_function("factor_natural", |b| {
        b.iter(|| SparseCholesky::factor_natural(&a_ff).expect("factor"))
    });
    let chol = SparseCholesky::factor(&a_ff).expect("factor");
    let rhs: Vec<f64> = (0..a_ff.nrows()).map(|i| (i % 13) as f64 - 6.0).collect();
    group.bench_function("solve_rcm", |b| b.iter(|| chol.solve(&rhs)));
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
