//! Ablation: the elimination-tree-parallel supernodal numeric
//! factorization vs the serial left-looking sweep on a ≥50k-DoF structured
//! lattice — factor wall time across worker counts {1, 2, 4, 8} × orderings
//! {RCM, nested dissection, Auto}, plus the etree shape metrics (height,
//! weighted critical path, subtree balance) that bound the achievable
//! speedup independently of the machine.
//!
//! Besides the Criterion-style console lines, this bench records its
//! medians into `BENCH_PR4.json` (section `ablation_parallel_factor`) so CI
//! and the ROADMAP can quote machine-readable numbers. The 1-worker column
//! runs the serial sweep (a cap-1 pool short-circuits to it), so every
//! speedup is against the true serial baseline; the factors are bitwise
//! identical across the whole matrix, pinned by the proptests and
//! `thread_invariance.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_bench::{jittered_lattice as lattice, quick_or, record_bench_entries, time3};
use morestress_linalg::{FillOrdering, SupernodalCholesky, SupernodalOptions, WorkPool};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_factor(c: &mut Criterion) {
    // 224 × 224 = 50_176 DoFs — the ≥50k-DoF lattice the acceptance
    // criterion names (tiny under MORESTRESS_BENCH_QUICK, where the CI
    // smoke job only proves the emitter runs).
    let side = quick_or(224usize, 40);
    let a = lattice(side, side);
    let n = a.nrows();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "parallel-factor ablation ({n} DoFs, {cores} hardware threads — \
         worker counts beyond that measure scheduling overhead, not speedup)"
    );

    // `hardware_threads` / `git_commit` are stamped by the shared recorder.
    let auto_resolved = FillOrdering::Auto.resolve(&a);
    let mut entries: Vec<(String, f64)> = vec![
        ("dofs".into(), n as f64),
        (
            "auto_resolves_to_nd".into(),
            f64::from(auto_resolved == FillOrdering::NestedDissection),
        ),
    ];

    for (tag, ordering) in [
        ("rcm", FillOrdering::Rcm),
        ("nd", FillOrdering::NestedDissection),
        ("auto", FillOrdering::Auto),
    ] {
        let (ordering_ms, perm) = time3(|| ordering.permutation(&a));
        let mut ms_at: Vec<f64> = Vec::new();
        let mut last = None;
        for &workers in &WORKER_COUNTS {
            let pool = WorkPool::new(workers);
            let (ms, chol) = time3(|| {
                pool.install(|| {
                    SupernodalCholesky::factor_with_permutation(
                        &a,
                        perm.clone(),
                        &SupernodalOptions::default(),
                    )
                    .expect("SPD")
                })
            });
            ms_at.push(ms);
            entries.push((format!("factor_ms_{tag}_{workers}w"), ms));
            last = Some(chol);
        }
        let chol = last.expect("factored at least once");
        let stats = chol.stats();
        let bound = stats.total_work as f64 / stats.critical_path.max(1) as f64;
        let speedup8 = ms_at[0] / ms_at[ms_at.len() - 1];
        println!(
            "  {tag:>4}: ordering {ordering_ms:.1} ms | factor \
             {:.1} / {:.1} / {:.1} / {:.1} ms at 1/2/4/8 workers \
             (8w speedup {speedup8:.2}×)\n\
             \x20       etree: {} supernodes, height {}, critical path \
             {:.1}% of work (schedule bound {bound:.1}×), max/mean \
             parallel subtree {:.1}% / {:.1}% of work",
            ms_at[0],
            ms_at[1],
            ms_at[2],
            ms_at[3],
            stats.supernodes,
            stats.etree_height,
            100.0 * stats.critical_path as f64 / stats.total_work.max(1) as f64,
            100.0 * stats.max_subtree_weight as f64 / stats.total_work.max(1) as f64,
            100.0 * stats.mean_subtree_weight / stats.total_work.max(1) as f64,
        );
        entries.push((format!("ordering_ms_{tag}"), ordering_ms));
        entries.push((format!("speedup_8w_{tag}"), speedup8));
        entries.push((format!("supernodes_{tag}"), stats.supernodes as f64));
        entries.push((format!("etree_height_{tag}"), stats.etree_height as f64));
        entries.push((format!("critical_path_{tag}"), stats.critical_path as f64));
        entries.push((format!("total_work_{tag}"), stats.total_work as f64));
        entries.push((
            format!("schedule_bound_{tag}"),
            stats.total_work as f64 / stats.critical_path.max(1) as f64,
        ));
        entries.push((
            format!("max_subtree_weight_{tag}"),
            stats.max_subtree_weight as f64,
        ));
        entries.push((
            format!("mean_subtree_weight_{tag}"),
            stats.mean_subtree_weight,
        ));
    }
    record_bench_entries("BENCH_PR4.json", "ablation_parallel_factor", entries);

    // --- Criterion points on a smaller lattice (kept quick) -------------
    let small_side = quick_or(96usize, 32);
    let small = lattice(small_side, small_side);
    let perm = FillOrdering::NestedDissection.permutation(&small);
    let mut group = c.benchmark_group("ablation_parallel_factor");
    group.sample_size(10);
    group.bench_function("factor_serial", |bch| {
        bch.iter(|| {
            SupernodalCholesky::factor_with_permutation(
                &small,
                perm.clone(),
                &SupernodalOptions {
                    parallel: false,
                    ..SupernodalOptions::default()
                },
            )
            .expect("SPD")
        })
    });
    let pool = WorkPool::new(4);
    group.bench_function("factor_dag_4w", |bch| {
        bch.iter(|| {
            pool.install(|| {
                SupernodalCholesky::factor_with_permutation(
                    &small,
                    perm.clone(),
                    &SupernodalOptions::default(),
                )
                .expect("SPD")
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_factor);
criterion_main!(benches);
