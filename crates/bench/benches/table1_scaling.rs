//! Criterion bench for Table 1: per-method cost on clamped standalone
//! arrays. FEM cost grows superlinearly with array size; the superposition
//! evaluation and the ROM global stage stay cheap — the factors between the
//! groups are the paper's headline speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{one_shot, Scale, DELTA_T};
use morestress_core::GlobalBc;
use morestress_fem::{solve_thermal_stress, DirichletBcs, LinearSolver, MaterialSet};
use morestress_mesh::{array_mesh, BlockKind, BlockLayout, TsvGeometry};

fn bench_table1(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, false).expect("one-shot stage");
    let mats = MaterialSet::tsv_defaults();

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    for size in [2usize, 4] {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        group.bench_with_input(
            BenchmarkId::new("fem_reference", size),
            &layout,
            |b, layout| {
                b.iter(|| {
                    let mesh = array_mesh(&geom, &scale.res, layout);
                    let (_, _, npz) = mesh.lattice_dims();
                    let mut bcs = DirichletBcs::new();
                    bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
                    bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
                    solve_thermal_stress(&mesh, &mats, DELTA_T, &bcs, LinearSolver::Auto)
                        .expect("fem solve")
                })
            },
        );
    }
    for size in [2usize, 4, 8] {
        let layout = BlockLayout::uniform(size, size, BlockKind::Tsv);
        group.bench_with_input(
            BenchmarkId::new("superposition_eval", size),
            &layout,
            |b, layout| b.iter(|| shot.superpos.evaluate_array(layout, DELTA_T, scale.samples)),
        );
        group.bench_with_input(
            BenchmarkId::new("rom_global_stage", size),
            &layout,
            |b, layout| {
                b.iter(|| {
                    shot.sim
                        .solve_array(layout, DELTA_T, &GlobalBc::ClampedTopBottom)
                        .expect("rom solve")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
