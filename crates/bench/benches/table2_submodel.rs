//! Criterion bench for Table 2: sub-modeled array cost per chiplet location.
//! The ROM time is location-independent (same reduced system, different
//! lifted boundary data), which is exactly the flat "Ours / time" row of the
//! paper's Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morestress_bench::{one_shot, table2_setup, Scale, DELTA_T};
use morestress_chiplet::Submodel;
use morestress_core::GlobalBc;
use morestress_mesh::TsvGeometry;

fn bench_table2(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, true).expect("one-shot stage");
    let setup = table2_setup(&geom, &scale).expect("chiplet setup");

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for loc in [0usize, 2, 4] {
        let sub = Submodel::new(&setup.chiplet, setup.locations[loc], setup.array_size);
        let bc = GlobalBc::SubmodelBoundary(sub.boundary_displacement(&setup.chiplet));
        group.bench_with_input(
            BenchmarkId::new("rom_submodel_solve", format!("loc{}", loc + 1)),
            &bc,
            |b, bc| {
                b.iter(|| {
                    shot.sim
                        .solve_array(&setup.layout, DELTA_T, bc)
                        .expect("rom solve")
                })
            },
        );
        let bg = sub.background_stress(&setup.chiplet);
        group.bench_with_input(
            BenchmarkId::new("superposition_submodel", format!("loc{}", loc + 1)),
            &bg,
            |b, bg| {
                b.iter(|| {
                    shot.superpos.evaluate_array_with_background(
                        &setup.layout,
                        DELTA_T,
                        scale.samples,
                        |p| bg(p),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
