//! Ablation: the supernodal blocked Cholesky vs the scalar up-looking
//! oracle on a ≥50k-DoF structured lattice — factor time, per-RHS solve
//! time, supernode shape, and fill, across orderings (RCM vs nested
//! dissection) and solve modes (looped vs panel).
//!
//! Besides the Criterion-style console lines, this bench records its
//! medians into `BENCH_PR3.json` (section `ablation_supernodal`) so CI and
//! the ROADMAP can quote machine-readable numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_bench::{jittered_lattice as lattice, quick_or, record_bench_json, time3};
use morestress_linalg::{FillOrdering, SparseCholesky, SupernodalCholesky, SupernodalOptions};

fn bench_supernodal(c: &mut Criterion) {
    // 224 × 224 = 50_176 DoFs — the ≥50k-DoF lattice the acceptance
    // criterion names (tiny under MORESTRESS_BENCH_QUICK, where the CI
    // smoke job only proves the emitter runs).
    let side = quick_or(224usize, 40);
    let a = lattice(side, side);
    let n = a.nrows();
    let nrhs = quick_or(16usize, 4);
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
    let panel: Vec<f64> = (0..nrhs).flat_map(|_| b.iter().copied()).collect();

    // --- One-off measured comparison for the JSON record ----------------
    let (scalar_factor_ms, scalar) = time3(|| SparseCholesky::factor(&a).expect("SPD"));
    let (super_rcm_factor_ms, super_rcm) = time3(|| SupernodalCholesky::factor(&a).expect("SPD"));
    let (nd_ordering_ms, nd_perm) = time3(|| FillOrdering::NestedDissection.permutation(&a));
    let (super_nd_factor_ms, super_nd) = time3(|| {
        SupernodalCholesky::factor_with_permutation(
            &a,
            nd_perm.clone(),
            &SupernodalOptions::default(),
        )
        .expect("SPD")
    });

    let (scalar_solve_ms, _) = time3(|| {
        for _ in 0..nrhs {
            std::hint::black_box(scalar.solve(&b));
        }
    });
    let (super_rcm_panel_ms, _) = time3(|| {
        let mut p = panel.clone();
        super_rcm.solve_panel(&mut p, nrhs);
        std::hint::black_box(p);
    });
    let (super_nd_panel_ms, _) = time3(|| {
        let mut p = panel.clone();
        super_nd.solve_panel(&mut p, nrhs);
        std::hint::black_box(p);
    });

    let rcm_stats = super_rcm.stats();
    let nd_stats = super_nd.stats();
    println!(
        "supernodal ablation ({n} DoFs, {nrhs} RHS):\n\
         \x20 factor  scalar+RCM {scalar_factor_ms:.1} ms | supernodal+RCM \
         {super_rcm_factor_ms:.1} ms | supernodal+ND {super_nd_factor_ms:.1} ms \
         (+{nd_ordering_ms:.1} ms ordering)\n\
         \x20 solve   scalar looped {:.3} ms/RHS | panel+RCM {:.3} ms/RHS | \
         panel+ND {:.3} ms/RHS\n\
         \x20 shape   RCM: {} supernodes, fill {} (true {}) | ND: {} supernodes, \
         fill {} (true {})",
        scalar_solve_ms / nrhs as f64,
        super_rcm_panel_ms / nrhs as f64,
        super_nd_panel_ms / nrhs as f64,
        rcm_stats.supernodes,
        rcm_stats.stored_nnz,
        rcm_stats.true_nnz,
        nd_stats.supernodes,
        nd_stats.stored_nnz,
        nd_stats.true_nnz,
    );
    record_bench_json(
        "ablation_supernodal",
        &[
            ("dofs", n as f64),
            ("rhs", nrhs as f64),
            ("factor_ms_scalar_rcm", scalar_factor_ms),
            ("factor_ms_supernodal_rcm", super_rcm_factor_ms),
            ("factor_ms_supernodal_nd", super_nd_factor_ms),
            ("ordering_ms_nd", nd_ordering_ms),
            ("solve_per_rhs_ms_scalar", scalar_solve_ms / nrhs as f64),
            (
                "solve_per_rhs_ms_panel_rcm",
                super_rcm_panel_ms / nrhs as f64,
            ),
            ("solve_per_rhs_ms_panel_nd", super_nd_panel_ms / nrhs as f64),
            ("supernodes_rcm", rcm_stats.supernodes as f64),
            ("supernodes_nd", nd_stats.supernodes as f64),
            ("fill_stored_rcm", rcm_stats.stored_nnz as f64),
            ("fill_true_rcm", rcm_stats.true_nnz as f64),
            ("fill_stored_nd", nd_stats.stored_nnz as f64),
            ("fill_true_nd", nd_stats.true_nnz as f64),
            ("fill_scalar", scalar.factor_nnz() as f64),
        ],
    );

    // --- Criterion points on a smaller lattice (kept quick) -------------
    let small_side = quick_or(96usize, 32);
    let small = lattice(small_side, small_side);
    let bs: Vec<f64> = (0..small.nrows())
        .map(|i| (i as f64 * 0.29).cos())
        .collect();
    let mut group = c.benchmark_group("ablation_supernodal");
    group.sample_size(10);
    group.bench_function("factor_scalar", |bch| {
        bch.iter(|| SparseCholesky::factor(&small).expect("SPD"))
    });
    group.bench_function("factor_supernodal", |bch| {
        bch.iter(|| SupernodalCholesky::factor(&small).expect("SPD"))
    });
    let scalar_small = SparseCholesky::factor(&small).expect("SPD");
    let super_small = SupernodalCholesky::factor(&small).expect("SPD");
    group.bench_function("solve_scalar_16rhs", |bch| {
        bch.iter(|| {
            for _ in 0..16 {
                std::hint::black_box(scalar_small.solve(&bs));
            }
        })
    });
    group.bench_function("solve_panel_16rhs", |bch| {
        let fresh: Vec<f64> = (0..16).flat_map(|_| bs.iter().copied()).collect();
        let mut p = fresh.clone();
        bch.iter(|| {
            // solve_panel works in place — restore the RHS every iteration
            // so the bench always solves the same (finite) system.
            p.copy_from_slice(&fresh);
            super_small.solve_panel(&mut p, 16);
            std::hint::black_box(&mut p);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_supernodal);
criterion_main!(benches);
