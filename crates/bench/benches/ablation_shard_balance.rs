//! Ablation: geometry-aware vs graph-searched shard planning on the
//! reduced global operator. The global stage hands the sharded backend a
//! [`PartitionHint`](morestress_linalg::PartitionHint) mapping every free
//! DoF to its block-grid footprint, so the default planner cuts the
//! operator along block boundaries (recursive weighted grid bisection)
//! instead of searching the — dense, BFS-hostile — reduced sparsity
//! graph. `Sharded::without_hint` pins the hardened graph fallback, giving
//! the A/B: plan quality (interface size, shard-rows spread, 2× work
//! balance), peak `shard_factor_bytes`, cold prepare, the incremental
//! placement-move re-prepare, and factor wall time across worker caps, on
//! the 6×6 and 12×12 arrays.
//!
//! The emitter asserts the acceptance bars inline: every sharded batch
//! agrees with the monolithic `DirectCholesky` reference to ≤ 1e-8
//! relative, and the geometric route's bits are invariant across pool
//! caps {1, 2, 8, 33}. Records into `BENCH_PR9.json` (section
//! `ablation_shard_balance`) for the `check_bench_json` CI gate; under
//! `MORESTRESS_BENCH_QUICK=1` the arrays shrink so CI can run the emitter
//! end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use morestress_bench::{fmt_bytes, median_ms, one_shot, quick_or, record_bench_entries, Scale};
use morestress_core::{GlobalBc, GlobalSolution, GlobalStage, ReducedOrderModel, RomSolver};
use morestress_linalg::{Sharded, WorkPool};
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

const SHARDS: usize = 4;
/// Worker caps for the factor-wall sweep.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
/// Pool caps for the bitwise-invariance assertion (33 > any worker count
/// the plan can use — the oversubscribed edge).
const POOL_CAPS: [usize; 4] = [1, 2, 8, 33];

fn stage<'a>(
    tsv: &'a ReducedOrderModel,
    dummy: &'a ReducedOrderModel,
    backend: &'a Sharded,
) -> GlobalStage<'a> {
    GlobalStage::new(tsv)
        .with_dummy(dummy)
        .expect("compatible ROMs")
        .with_backend(backend)
}

/// Max relative (inf-norm-scaled) difference across the batch.
fn max_rel_err(reference: &[GlobalSolution], candidate: &[GlobalSolution]) -> f64 {
    let mut worst = 0.0f64;
    for (r, c) in reference.iter().zip(candidate) {
        let scale = r
            .nodal_displacement()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-30);
        for (a, b) in r.nodal_displacement().iter().zip(c.nodal_displacement()) {
            worst = worst.max((a - b).abs() / scale);
        }
    }
    worst
}

fn assert_bitwise(label: &str, reference: &[GlobalSolution], candidate: &[GlobalSolution]) {
    for (r, c) in reference.iter().zip(candidate) {
        for (a, b) in r.nodal_displacement().iter().zip(c.nodal_displacement()) {
            assert!(
                a.to_bits() == b.to_bits(),
                "{label}: bits differ: {a:?} vs {b:?}"
            );
        }
    }
}

fn bench_shard_balance(c: &mut Criterion) {
    let scale = Scale::small();
    let geom = TsvGeometry::paper_defaults(15.0);
    let shot = one_shot(&geom, &scale, true).expect("one-shot stage");
    let tsv = shot.sim.tsv_model();
    let dummy = shot.sim.dummy_model().expect("dummy ROM built");
    let bc = GlobalBc::ClampedTopBottom;
    let loads: Vec<f64> = (0..quick_or(6, 2))
        .map(|k| -250.0 + 40.0 * k as f64)
        .collect();
    let mut entries: Vec<(String, f64)> = vec![("loads".into(), loads.len() as f64)];

    for array in [quick_or(6usize, 3), quick_or(12, 4)] {
        let base = BlockLayout::uniform(array, array, BlockKind::Tsv);
        let mut perturbed = base.clone();
        perturbed.set_kind(0, 0, BlockKind::Dummy);

        // Monolithic reference: the ≤ 1e-8 agreement bar for both routes.
        let mono = GlobalStage::new(tsv)
            .with_dummy(dummy)
            .expect("compatible ROMs")
            .with_solver(RomSolver::DirectCholesky)
            .solve_many(&base, &loads, &bc)
            .expect("monolithic solve");

        for hinted in [true, false] {
            let route = if hinted { "geo" } else { "graph" };
            let tag = format!("{route}_{array}x{array}");
            let make = || {
                if hinted {
                    Sharded::new(SHARDS)
                } else {
                    Sharded::new(SHARDS).without_hint()
                }
            };

            // Cold: full prepare + batched solve.
            let backend = make();
            let t0 = std::time::Instant::now();
            let cold = stage(tsv, dummy, &backend)
                .solve_many(&base, &loads, &bc)
                .expect("cold sharded solve");
            let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = cold[0].stats;
            let plan = stats.plan_stats.expect("sharded solves report plan stats");
            assert_eq!(
                plan.geometric, hinted,
                "{tag}: route selection must follow the hint switch"
            );
            let err = max_rel_err(&mono, &cold);
            assert!(
                err <= 1e-8,
                "{tag}: sharded-vs-monolithic {err:.2e} exceeds 1e-8"
            );

            // Incremental placement move (corner block TSV → dummy),
            // alternating so each repetition pays a real re-preparation.
            let mut samples = Vec::with_capacity(3);
            for _ in 0..3 {
                stage(tsv, dummy, &backend)
                    .solve_many(&base, &loads, &bc)
                    .expect("base re-solve");
                let t0 = std::time::Instant::now();
                stage(tsv, dummy, &backend)
                    .solve_many(&perturbed, &loads, &bc)
                    .expect("incremental re-solve");
                samples.push(t0.elapsed());
            }
            let incr_ms = median_ms(&mut samples);
            // Warm floor: repeat the unperturbed solve — the retained
            // preparation matches, so no shard re-factors.
            let mut warm = Vec::with_capacity(3);
            stage(tsv, dummy, &backend)
                .solve_many(&base, &loads, &bc)
                .expect("warm-up solve");
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                stage(tsv, dummy, &backend)
                    .solve_many(&base, &loads, &bc)
                    .expect("warm solve");
                warm.push(t0.elapsed());
            }
            let warm_ms = median_ms(&mut warm);

            // Factor wall vs worker cap, fresh backend per measurement.
            let mut factor_at = Vec::new();
            for &workers in &WORKER_COUNTS {
                let pool = WorkPool::new(workers);
                let mut reps = Vec::with_capacity(3);
                for _ in 0..3 {
                    let fresh = make();
                    let t0 = std::time::Instant::now();
                    pool.install(|| {
                        stage(tsv, dummy, &fresh)
                            .solve_many(&base, &loads, &bc)
                            .expect("capped cold solve")
                    });
                    reps.push(t0.elapsed());
                }
                let ms = median_ms(&mut reps);
                factor_at.push(ms);
                entries.push((format!("{tag}_cold_ms_{workers}w"), ms));
            }

            println!(
                "shard balance {tag}: {} shards, {} interface DoFs, rows {}..{}, \
                 balance {:.2}, factor {} | cold {cold_ms:.1} ms, incremental \
                 {incr_ms:.1} ms, warm {warm_ms:.1} ms (re-prepare {:.1} ms) | \
                 cold at 1/2/8 workers {:.1}/{:.1}/{:.1} ms | vs monolithic {err:.1e}",
                plan.shards,
                plan.interface_dofs,
                plan.min_shard_rows,
                plan.max_shard_rows,
                plan.balance_ratio,
                fmt_bytes(stats.shard_factor_bytes),
                (incr_ms - warm_ms).max(0.0),
                factor_at[0],
                factor_at[1],
                factor_at[2],
            );
            entries.extend([
                (format!("{tag}_shards"), plan.shards as f64),
                (format!("{tag}_interface_dofs"), plan.interface_dofs as f64),
                (format!("{tag}_min_shard_rows"), plan.min_shard_rows as f64),
                (format!("{tag}_max_shard_rows"), plan.max_shard_rows as f64),
                (format!("{tag}_balance_ratio"), plan.balance_ratio),
                (
                    format!("{tag}_shard_factor_bytes"),
                    stats.shard_factor_bytes as f64,
                ),
                (format!("{tag}_cold_solve_ms"), cold_ms),
                (format!("{tag}_incr_solve_ms"), incr_ms),
                (format!("{tag}_warm_solve_ms"), warm_ms),
                (
                    format!("{tag}_incr_prepare_ms"),
                    (incr_ms - warm_ms).max(0.0),
                ),
                (format!("{tag}_max_rel_err"), err),
            ]);

            // Bitwise pool-cap invariance on the smaller array: the same
            // plan, factors and solves at every cap — asserted, then
            // recorded as a pass flag.
            if array == quick_or(6, 3) {
                for &cap in &POOL_CAPS {
                    let pool = WorkPool::new(cap);
                    let fresh = make();
                    let capped = pool.install(|| {
                        stage(tsv, dummy, &fresh)
                            .solve_many(&base, &loads, &bc)
                            .expect("capped solve")
                    });
                    assert_bitwise(&format!("{tag} cap {cap}"), &cold, &capped);
                }
                entries.push((format!("{tag}_pool_cap_bitwise"), 1.0));
            }
        }
    }

    record_bench_entries("BENCH_PR9.json", "ablation_shard_balance", entries);

    // Criterion point: one placement move under the geometric planner
    // (incremental re-prepare + batched solve), alternating layouts.
    let array = quick_or(6usize, 3);
    let base = BlockLayout::uniform(array, array, BlockKind::Tsv);
    let mut perturbed = base.clone();
    perturbed.set_kind(0, 0, BlockKind::Dummy);
    let backend = Sharded::new(SHARDS);
    stage(tsv, dummy, &backend)
        .solve_many(&base, &loads, &bc)
        .expect("warm-up solve");
    let mut group = c.benchmark_group("ablation_shard_balance");
    group.sample_size(10);
    let mut flip = false;
    group.bench_function("geometric_placement_move", |b| {
        b.iter(|| {
            let layout = if flip { &base } else { &perturbed };
            flip = !flip;
            stage(tsv, dummy, &backend)
                .solve_many(layout, &loads, &bc)
                .expect("incremental re-solve")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shard_balance);
criterion_main!(benches);
