//! Deterministic fault-injection harness for the resilience layer.
//!
//! Every case injects one structural fault through a seeded [`FaultPlan`]
//! and walks the affected solve path end to end, asserting the PR-8
//! resilience contract:
//!
//! * **no panics** — every fault surfaces as a typed [`LinalgError`] or a
//!   successful solve with the recovery recorded as a degradation trail;
//! * **containment** — a broken shard degrades alone, the pool keeps
//!   scheduling after the failure, and the factor cache never retains a
//!   failed or corrupted preparation;
//! * **determinism** — the no-fault path stays bitwise identical to the
//!   plain direct backend at every pool cap (the PR-4/PR-7 contract must
//!   survive the resilience wrapping).
//!
//! The suite runs in the CI `test-sharded` matrix
//! (`MORESTRESS_THREADS ∈ {1, 8} × MORESTRESS_SHARDS ∈ {1, 4}`), so every
//! fault is replayed serial and parallel, sharded and unsharded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use morestress_linalg::{
    Auto, CooMatrix, CsrMatrix, DirectCholesky, FactorCache, FaultPlan, LinalgError, Resilient,
    Rung, ShardPlan, Sharded, SolverBackend, VerifyPolicy, WorkPool,
};

/// Shard count under test: `MORESTRESS_SHARDS` when set (the CI matrix
/// pins 1 and 4), else 4.
fn env_shards() -> usize {
    std::env::var("MORESTRESS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The 5-point lattice operator the MORE-Stress stages factor (+0.1
/// diagonal shift keeps it SPD).
fn lattice(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let id = |i: usize, j: usize| j * nx + i;
    let mut coo = CooMatrix::new(n, n);
    for j in 0..ny {
        for i in 0..nx {
            let me = id(i, j);
            coo.push(me, me, 4.1);
            if i > 0 {
                coo.push(me, id(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(me, id(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(me, id(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push(me, id(i, j + 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

fn rhs_set(n: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|k| (0..n).map(|i| ((i * (k + 3)) % 11) as f64 - 5.0).collect())
        .collect()
}

/// The pool must keep scheduling after a fault was absorbed — resilience
/// that poisons the runtime is not containment.
fn assert_pool_usable(pool: &WorkPool) {
    let ran = AtomicUsize::new(0);
    pool.scope_chunks(8, 16, |_| {
        ran.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ran.load(Ordering::Relaxed), 16, "pool unusable after fault");
}

/// NaN poisoning anywhere in the operator is rejected before any
/// factorization runs, as a typed `NonFinite` carrying the offending
/// index — on the direct backend, the resilient ladder and the sharded
/// backend alike. A failed prepare never enters the cache.
#[test]
fn poisoned_operator_is_rejected_everywhere() {
    let pool = WorkPool::new(4);
    pool.install(|| {
        let mut faulty = lattice(12, 9);
        let k = FaultPlan::new(11).poison_value(&mut faulty);
        let a = Arc::new(faulty);

        let backends: Vec<Box<dyn SolverBackend>> = vec![
            Box::new(DirectCholesky::default()),
            Box::new(Resilient::default()),
            Box::new(Auto {
                direct_limit: 20_000,
                tol: 1e-9,
            }),
            Box::new(Sharded::new(env_shards())),
        ];
        for backend in &backends {
            match backend.prepare(Arc::clone(&a)) {
                Err(LinalgError::NonFinite { context, index }) => {
                    assert_eq!(context, "operator");
                    assert_eq!(index, k, "{}: wrong poisoned index", backend.name());
                }
                other => panic!(
                    "{}: poisoned operator must fail NonFinite, got {other:?}",
                    backend.name()
                ),
            }
            // The cache refuses to memoize the failure.
            let cache = FactorCache::new();
            assert!(cache.prepare(backend.as_ref(), &a).is_err());
            assert_eq!(
                cache.len(),
                0,
                "failed prepare cached by {}",
                backend.name()
            );
        }
    });
    assert_pool_usable(&pool);
}

/// A NaN right-hand side is rejected as `NonFinite { context: "rhs" }`
/// without disturbing the prepared factor, which keeps solving clean
/// inputs afterwards.
#[test]
fn poisoned_rhs_is_rejected_and_the_factor_survives() {
    let a = Arc::new(lattice(10, 8));
    let n = a.nrows();
    let prepared = Resilient::default()
        .prepare(Arc::clone(&a))
        .expect("clean SPD lattice");
    let mut b = vec![1.0; n];
    b[n / 2] = f64::INFINITY;
    match prepared.solve(&b) {
        Err(LinalgError::NonFinite { context, index }) => {
            assert_eq!(context, "rhs");
            assert_eq!(index, n / 2);
        }
        other => panic!("poisoned rhs must fail NonFinite, got {other:?}"),
    }
    let clean = prepared.solve(&vec![1.0; n]).expect("factor must survive");
    assert!(a.residual(&clean.x, &vec![1.0; n]) < 1e-10);
}

/// A zeroed pivot defeats the direct factorization with a typed
/// `NotPositiveDefinite`; the resilient ladder absorbs the same fault —
/// either solving with the escalation recorded, or failing with a typed
/// convergence error. Never a panic.
#[test]
fn zeroed_pivot_walks_the_degradation_ladder() {
    let pool = WorkPool::new(4);
    pool.install(|| {
        let mut faulty = lattice(11, 9);
        let row = FaultPlan::new(23).break_pivot(&mut faulty);
        let a = Arc::new(faulty);

        // The plain direct backend reports the breakdown, typed.
        let err = DirectCholesky::default()
            .prepare(Arc::clone(&a))
            .expect_err("zeroed pivot must defeat Cholesky");
        assert!(
            matches!(err, LinalgError::NotPositiveDefinite { .. }),
            "row {row}: expected NotPositiveDefinite, got {err:?}"
        );

        // The ladder prepares something (regularized factor or GMRES) and
        // records how it got there.
        let prepared = Resilient::default()
            .prepare(Arc::clone(&a))
            .expect("the ladder never fails preparation on finite input");
        let trail = prepared.prep_degradation();
        assert!(!trail.is_empty(), "escalation must be recorded");
        assert_eq!(
            trail.steps().next().map(|s| s.rung),
            Some(Rung::Regularized),
            "first rung after a pivot breakdown is regularization"
        );

        let b = rhs_set(a.nrows(), 1).pop().unwrap();
        match prepared.solve(&b) {
            Ok(sol) => {
                assert!(sol.x.iter().all(|v| v.is_finite()));
                assert!(
                    !sol.report.degradation.is_empty(),
                    "a recovered solve must carry its trail"
                );
            }
            Err(e) => assert!(
                matches!(
                    e,
                    LinalgError::DidNotConverge { .. }
                        | LinalgError::NotPositiveDefinite { .. }
                        | LinalgError::Singular { .. }
                ),
                "fault must surface typed, got {e:?}"
            ),
        }
    });
    assert_pool_usable(&pool);
}

/// One corrupted interior block degrades alone: the sharded prepare
/// succeeds, `shards_degraded` counts the contained shard without
/// implicating the clean ones, and the coupled solve still runs.
#[test]
fn corrupted_shard_is_contained_per_shard() {
    let pool = WorkPool::new(4);
    pool.install(|| {
        let shards = env_shards();
        let clean = lattice(12, 10);
        let plan = ShardPlan::build(&clean, shards);
        let mut faulty = clean.clone();
        let victim = FaultPlan::new(5).corrupt_shard(&mut faulty, &plan);
        assert!(victim < plan.num_shards());
        let a = Arc::new(faulty);

        let backend = Sharded::new(shards);
        let prepared = backend
            .prepare(Arc::clone(&a))
            .expect("containment must keep the prepare alive");
        let degraded = prepared.prep_degradation();
        assert!(
            !degraded.is_empty(),
            "the contained shard's ladder trail must surface"
        );

        let rhs = rhs_set(a.nrows(), 3);
        match prepared.solve_many(&rhs, 4) {
            Ok(batch) => {
                assert!(batch.report.shards_degraded >= 1);
                assert!(
                    batch.report.shards_degraded < plan.num_shards() + 1 || plan.num_shards() == 1,
                    "clean shards must keep their direct factors"
                );
                for x in &batch.xs {
                    assert!(x.iter().all(|v| v.is_finite()));
                }
            }
            Err(e) => assert!(
                matches!(
                    e,
                    LinalgError::DidNotConverge { .. } | LinalgError::NotPositiveDefinite { .. }
                ),
                "fault must surface typed, got {e:?}"
            ),
        }

        // The same backend still prepares the clean operator with zero
        // degradation — the fault did not leak into shared state.
        let clean_prep = Sharded::new(shards)
            .prepare(Arc::new(clean))
            .expect("clean lattice");
        assert!(clean_prep.prep_degradation().is_empty());
    });
    assert_pool_usable(&pool);
}

/// A corrupted cache entry (a healthy-looking factor bound to the wrong
/// operator) is detected by the verifying healing path, invalidated,
/// rebuilt exactly once, and the rebuild is recorded as a `Rebuilt` rung.
#[test]
fn corrupted_cache_entry_self_heals() {
    let a = Arc::new(lattice(9, 8));
    let backend = Resilient::default();
    let cache = FactorCache::new();
    FaultPlan::new(17)
        .corrupt_cache(&cache, &backend, &a)
        .expect("planting the corrupted factor");
    assert_eq!(cache.len(), 1);

    let rhs = rhs_set(a.nrows(), 2);
    let (batch, healed) = cache
        .solve_many_healing(&backend, &a, &rhs, 2)
        .expect("healing solve");
    assert!(healed, "the corrupted entry must be detected and rebuilt");
    assert_eq!(
        batch.report.degradation.steps().next().map(|s| s.rung),
        Some(Rung::Rebuilt)
    );
    for (b, x) in rhs.iter().zip(&batch.xs) {
        assert!(a.residual(x, b) < 1e-8, "healed solve must be correct");
    }

    // The rebuilt entry is clean: the second call is a plain hit.
    let (batch2, healed2) = cache
        .solve_many_healing(&backend, &a, &rhs, 2)
        .expect("clean solve");
    assert!(!healed2);
    assert!(batch2.report.degradation.is_empty());
    assert_eq!(cache.len(), 1, "healing must not grow the cache");
}

/// Cache eviction mid-run is transparent: the next solve re-prepares on
/// the miss and returns the same answers bitwise.
#[test]
fn evicted_cache_entry_reprepares_transparently() {
    let a = Arc::new(lattice(9, 7));
    let backend = DirectCholesky::default();
    let cache = FactorCache::new();
    let rhs = rhs_set(a.nrows(), 2);

    let before = cache
        .solve_many_healing(&backend, &a, &rhs, 2)
        .expect("first solve")
        .0;
    let dropped = FaultPlan::new(29).evict_cache(&cache, &a);
    assert!(dropped >= 1, "the entry must have been cached");
    assert_eq!(cache.len(), 0);

    let misses_before = cache.misses();
    let after = cache
        .solve_many_healing(&backend, &a, &rhs, 2)
        .expect("post-eviction solve")
        .0;
    assert_eq!(
        cache.misses(),
        misses_before + 1,
        "eviction must re-prepare"
    );
    for (x, y) in before.xs.iter().zip(&after.xs) {
        for (p, q) in x.iter().zip(y) {
            assert_eq!(p.to_bits(), q.to_bits(), "re-prepared factor must match");
        }
    }
}

/// The no-fault path is bitwise invariant: the resilient wrapping (and
/// the `Auto` policy routing through it) returns exactly the plain direct
/// backend's bits, at every pool cap — serial, minimal, saturated,
/// oversubscribed.
#[test]
fn no_fault_path_is_bitwise_invariant_across_pool_caps() {
    let a = Arc::new(lattice(12, 9));
    let rhs = rhs_set(a.nrows(), 4);

    let reference = DirectCholesky::default()
        .prepare(Arc::clone(&a))
        .expect("clean SPD lattice")
        .solve_many(&rhs, 1)
        .expect("direct solve");

    for cap in [1usize, 2, 8, 33] {
        for (name, backend) in [
            (
                "resilient",
                Box::new(Resilient::default()) as Box<dyn SolverBackend>,
            ),
            (
                "auto",
                Box::new(Auto {
                    direct_limit: 20_000,
                    tol: 1e-9,
                }),
            ),
        ] {
            let batch = WorkPool::new(cap).install(|| {
                backend
                    .prepare(Arc::clone(&a))
                    .expect("clean SPD lattice")
                    .solve_many(&rhs, cap)
                    .expect("clean solve")
            });
            assert!(batch.report.degradation.is_empty(), "{name} cap {cap}");
            assert_eq!(batch.report.shards_degraded, 0);
            for (x, y) in reference.xs.iter().zip(&batch.xs) {
                for (p, q) in x.iter().zip(y) {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "{name} at cap {cap} diverged from the direct bits"
                    );
                }
            }
        }
    }
}

/// Verification policies on the clean path: `Report` records the residual
/// without touching the solution, `Enforce` passes a healthy solve — and
/// the resilient engine self-verifies even with the policy off.
#[test]
fn verification_reports_and_enforces_on_the_clean_path() {
    let a = Arc::new(lattice(10, 9));
    let rhs = rhs_set(a.nrows(), 2);

    let reported = DirectCholesky::default()
        .prepare(Arc::clone(&a))
        .expect("clean SPD lattice")
        .with_verify(VerifyPolicy::Report)
        .solve_many(&rhs, 2)
        .expect("verified solve");
    let rr = reported
        .report
        .verified_residual
        .expect("Report must record the residual");
    assert!(rr < 1e-10, "healthy direct solve, got {rr}");

    let enforced = DirectCholesky::default()
        .prepare(Arc::clone(&a))
        .expect("clean SPD lattice")
        .with_verify(VerifyPolicy::Enforce { tol: 1e-8 })
        .solve_many(&rhs, 2)
        .expect("a healthy solve must pass enforcement");
    assert!(enforced.report.verified_residual.unwrap() < 1e-8);

    let resilient = Resilient::default()
        .prepare(Arc::clone(&a))
        .expect("clean SPD lattice")
        .solve_many(&rhs, 2)
        .expect("resilient solve");
    let rr = resilient
        .report
        .verified_residual
        .expect("the ladder always verifies its own solves");
    assert!(rr < 1e-8);
}
