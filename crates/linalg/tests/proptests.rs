//! Property-based tests of the linear algebra kernels and the shared
//! worker-pool runtime.

#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use morestress_linalg::{
    nested_dissection, reverse_cuthill_mckee, solve_cg, solve_gmres, Auto, CgOptions,
    CholeskyKernel, CooMatrix, CsrMatrix, DenseKernel, DenseMatrix, DirectCholesky, FactorCache,
    FaultPlan, FillOrdering, GmresOptions, JacobiPreconditioner, KernelChoice, LinalgError,
    PartitionHint, Permutation, ScalarKernel, ShardPlan, Sharded, SolverBackend, SparseCholesky,
    SupernodalCholesky, SupernodalOptions, TaskDag, WorkPool,
};
use proptest::prelude::*;

/// Random sparse triplets on an n×n matrix.
fn coo_strategy(n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    prop::collection::vec((0..n, 0..n, -10.0f64..10.0), 1..max_nnz).prop_map(move |trips| {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in trips {
            coo.push(i, j, v);
        }
        coo
    })
}

/// A random SPD matrix: A = B Bᵀ + (n+1)·I with sparse-ish B, assembled
/// densely into COO (small n keeps this cheap).
fn spd_strategy(n: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |b| {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += b[i * n + k] * b[j * n + k];
                }
                if i == j {
                    v += (n + 1) as f64;
                }
                coo.push(i, j, v);
            }
        }
        coo.to_csr()
    })
}

/// A 5-point lattice of `bx × by` blocks with `m + 1` nodes per block edge
/// (shared boundary columns), plus the exact geometric [`PartitionHint`]
/// describing it — the shape the global stage hands the sharded backend.
fn hinted_lattice(bx: usize, by: usize, m: usize) -> (CsrMatrix, PartitionHint) {
    let (nx, ny) = (bx * m + 1, by * m + 1);
    let idx = |x: usize, y: usize| y * nx + x;
    let span1 = |c: usize, blocks: usize| -> [usize; 2] {
        if c.is_multiple_of(m) {
            let plane = c / m;
            [plane.saturating_sub(1), plane.min(blocks - 1)]
        } else {
            [c / m, c / m]
        }
    };
    let mut coo = CooMatrix::new(nx * ny, nx * ny);
    let mut spans = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let v = idx(x, y);
            coo.push(v, v, 4.0);
            if x + 1 < nx {
                coo.push(v, idx(x + 1, y), -1.0);
                coo.push(idx(x + 1, y), v, -1.0);
            }
            if y + 1 < ny {
                coo.push(v, idx(x, y + 1), -1.0);
                coo.push(idx(x, y + 1), v, -1.0);
            }
            let sx = span1(x, bx);
            let sy = span1(y, by);
            spans.push([sx[0], sx[1], sy[0], sy[1]]);
        }
    }
    (coo.to_csr(), PartitionHint::new([bx, by], spans))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR conversion preserves the summed value of every entry.
    #[test]
    fn coo_to_csr_preserves_entry_sums(coo in coo_strategy(8, 64)) {
        let csr = coo.to_csr();
        // Dense accumulation of the triplets.
        let mut dense = vec![0.0f64; 64];
        let rebuilt = {
            // Walk the CSR and compare against dense sums later.
            let mut m = vec![0.0f64; 64];
            for i in 0..8 {
                let (cols, vals) = csr.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    m[i * 8 + c] = v;
                }
            }
            m
        };
        // Recompute via a second conversion path: transpose twice.
        let tt = csr.transposed().transposed();
        prop_assert_eq!(&csr, &tt);
        for i in 0..8 {
            let (cols, vals) = csr.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                dense[i * 8 + c] += v; // CSR has unique entries
                let _ = v;
            }
        }
        prop_assert_eq!(dense, rebuilt);
    }

    /// SpMV distributes over vector addition: A(x+y) = Ax + Ay.
    #[test]
    fn spmv_is_linear(coo in coo_strategy(10, 80),
                      x in prop::collection::vec(-5.0f64..5.0, 10),
                      y in prop::collection::vec(-5.0f64..5.0, 10)) {
        let a = coo.to_csr();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
        let lhs = a.spmv(&xy);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..10 {
            prop_assert!((lhs[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    /// Sparse Cholesky solves random SPD systems to tight residuals.
    #[test]
    fn cholesky_solves_random_spd(a in spd_strategy(12),
                                  b in prop::collection::vec(-5.0f64..5.0, 12)) {
        let chol = SparseCholesky::factor(&a).expect("SPD by construction");
        let x = chol.solve(&b);
        prop_assert!(a.residual(&x, &b) < 1e-10);
    }

    /// RCM + natural orderings give the same answers (different paths).
    #[test]
    fn orderings_agree(a in spd_strategy(10),
                       b in prop::collection::vec(-2.0f64..2.0, 10)) {
        let x1 = SparseCholesky::factor(&a).unwrap().solve(&b);
        let x2 = SparseCholesky::factor_natural(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// CG and GMRES agree with the direct solve on SPD systems.
    #[test]
    fn iterative_solvers_match_direct(a in spd_strategy(10),
                                      b in prop::collection::vec(-2.0f64..2.0, 10)) {
        let direct = SparseCholesky::factor(&a).unwrap().solve(&b);
        let pre = JacobiPreconditioner::new(&a);
        let cg = solve_cg(&a, &b, &pre, CgOptions { tol: 1e-12, max_iter: 1000 }).unwrap();
        let gm = solve_gmres(&a, &b, &pre, GmresOptions { tol: 1e-12, ..Default::default() }).unwrap();
        let scale = direct.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for i in 0..10 {
            prop_assert!((cg.x[i] - direct[i]).abs() < 1e-6 * scale);
            prop_assert!((gm.x[i] - direct[i]).abs() < 1e-6 * scale);
        }
    }

    /// Permutations round-trip vectors.
    #[test]
    fn permutation_roundtrip(perm in Just(()).prop_flat_map(|_| {
        prop::collection::vec(0usize..1000, 1..30).prop_map(|seed| {
            let n = seed.len();
            let mut p: Vec<usize> = (0..n).collect();
            for (i, s) in seed.iter().enumerate() {
                p.swap(i, s % n);
            }
            Permutation::new(p).expect("valid by construction")
        })
    }), ) {
        let n = perm.len();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
        let y = perm.apply(&x);
        prop_assert_eq!(perm.apply_inverse(&y), x);
    }

    /// RCM never changes the spectrum's action: permuted solve equals
    /// unpermuted solve after mapping.
    #[test]
    fn rcm_permutation_is_valid(a in spd_strategy(9)) {
        let p = reverse_cuthill_mckee(&a);
        prop_assert_eq!(p.len(), 9);
        // p is a bijection: inverse of inverse is identity.
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inverse(&p.apply(&x)), x);
    }

    /// Dense LU inverts what it multiplies.
    #[test]
    fn dense_lu_roundtrip(vals in prop::collection::vec(-3.0f64..3.0, 16),
                          x in prop::collection::vec(-3.0f64..3.0, 4)) {
        let mut m = DenseMatrix::from_vec(4, 4, vals);
        for i in 0..4 {
            m[(i, i)] += 8.0; // diagonally dominant => invertible
        }
        let b = m.matvec(&x);
        let solved = m.lu().unwrap().solve(&b).unwrap();
        for i in 0..4 {
            prop_assert!((solved[i] - x[i]).abs() < 1e-8);
        }
    }

    /// The `Auto` policy always prepares a backend that converges on random
    /// SPD systems, whichever side of the direct/iterative threshold the
    /// system lands on.
    #[test]
    fn auto_policy_converges_on_random_spd(a in spd_strategy(12),
                                           b in prop::collection::vec(-3.0f64..3.0, 12),
                                           direct_limit in 0usize..24) {
        let a = Arc::new(a);
        let auto = Auto { direct_limit, tol: 1e-10 };
        let prepared = auto
            .prepare(Arc::clone(&a))
            .expect("Auto must prepare on an SPD operator");
        let sol = prepared
            .solve(&b)
            .expect("the auto-selected backend must converge");
        prop_assert!(
            a.residual(&sol.x, &b) < 1e-7,
            "auto picked {} with residual {}",
            prepared.backend(),
            a.residual(&sol.x, &b)
        );
    }

    /// The resilient `Auto` ladder never panics and always returns a typed
    /// result — on random SPD, indefinite, singular-pivot and NaN-poisoned
    /// operators alike, at serial and saturated pool caps. Successful
    /// solves are finite; failures are typed `LinalgError`s.
    #[test]
    fn resilient_auto_never_panics_on_hostile_operators(
        a in spd_strategy(10),
        b in prop::collection::vec(-3.0f64..3.0, 10),
        fault in 0usize..4,
        seed in 0u64..1_000_000) {
        let mut m = a;
        match fault {
            1 => {
                // Indefinite: drive one diagonal entry strongly negative
                // (diag of spd_strategy(10) is at most 10·1 + 11).
                let row = FaultPlan::new(seed).pick(10);
                m.add_at(row, row, -60.0);
            }
            2 => {
                let _ = FaultPlan::new(seed).break_pivot(&mut m);
            }
            3 => {
                let _ = FaultPlan::new(seed).poison_value(&mut m);
            }
            _ => {} // clean SPD
        }
        let m = Arc::new(m);
        for cap in [1usize, 8] {
            let auto = Auto { direct_limit: 20_000, tol: 1e-8 };
            let outcome = WorkPool::new(cap).install(|| {
                auto.prepare(Arc::clone(&m)).and_then(|p| p.solve(&b))
            });
            match outcome {
                Ok(sol) => {
                    prop_assert!(sol.x.iter().all(|v| v.is_finite()),
                        "fault {} cap {}: accepted solve must be finite", fault, cap);
                }
                Err(e) => {
                    // Every failure is a typed error, and NaN poisoning in
                    // particular is always rejected as NonFinite.
                    if fault == 3 {
                        prop_assert!(
                            matches!(e, LinalgError::NonFinite { context: "operator", .. }),
                            "fault 3 cap {}: got {:?}", cap, e);
                    }
                }
            }
        }
    }

    /// The batched multi-RHS path returns exactly what per-RHS solves do.
    #[test]
    fn batched_solves_match_individual(a in spd_strategy(10),
                                       bs in prop::collection::vec(
                                           prop::collection::vec(-2.0f64..2.0, 10), 1..6)) {
        let prepared = DirectCholesky::default()
            .prepare(Arc::new(a))
            .expect("SPD by construction");
        let batch = prepared.solve_many(&bs, 3).expect("direct solve");
        prop_assert_eq!(batch.xs.len(), bs.len());
        prop_assert!(batch.report.workers >= 1);
        for (b, x) in bs.iter().zip(&batch.xs) {
            prop_assert_eq!(&prepared.solve(b).expect("direct solve").x, x);
        }
    }

    /// The supernodal blocked kernel agrees with the scalar oracle to
    /// ≤1e-12 (relative) on random SPD operators, across orderings and
    /// relaxation settings.
    #[test]
    fn supernodal_matches_scalar_oracle(a in spd_strategy(12),
                                        b in prop::collection::vec(-5.0f64..5.0, 12),
                                        max_width in 1usize..6,
                                        relax in 0.0f64..0.8) {
        let reference = SparseCholesky::factor(&a).expect("SPD").solve(&b);
        let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for ordering in [FillOrdering::Rcm, FillOrdering::NestedDissection, FillOrdering::Natural] {
            let chol = SupernodalCholesky::factor_with_permutation(
                &a,
                ordering.permutation(&a),
                &SupernodalOptions { max_width, relax, small_width: 4, ..Default::default() },
            )
            .expect("SPD");
            let x = chol.solve(&b);
            for (p, q) in reference.iter().zip(&x) {
                prop_assert!(
                    (p - q).abs() <= 1e-12 * scale,
                    "{:?}: {} vs {}", ordering, p, q
                );
            }
        }
    }

    /// Same differential on structured lattice operators (the shape the
    /// MORE-Stress stages actually factor), with jittered diagonals.
    #[test]
    fn supernodal_matches_scalar_on_lattices(nx in 2usize..9,
                                             ny in 2usize..7,
                                             jitter in prop::collection::vec(0.0f64..1.0, 63)) {
        let n = nx * ny;
        let id = |i: usize, j: usize| j * nx + i;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let me = id(i, j);
                coo.push(me, me, 4.1 + jitter[me % jitter.len()]);
                if i > 0 { coo.push(me, id(i - 1, j), -1.0); }
                if i + 1 < nx { coo.push(me, id(i + 1, j), -1.0); }
                if j > 0 { coo.push(me, id(i, j - 1), -1.0); }
                if j + 1 < ny { coo.push(me, id(i, j + 1), -1.0); }
            }
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..n).map(|k| ((k * 5) % 11) as f64 - 5.0).collect();
        let x_scalar = SparseCholesky::factor(&a).expect("SPD").solve(&b);
        let x_super = SupernodalCholesky::factor(&a).expect("SPD").solve(&b);
        let scale = x_scalar.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (p, q) in x_scalar.iter().zip(&x_super) {
            prop_assert!((p - q).abs() <= 1e-12 * scale, "{} vs {}", p, q);
        }
    }

    /// Every resolved microkernel agrees with the `ScalarKernel` oracle to
    /// ≤1e-12 on random SPD panels, at the edge widths: 1, a non-multiple
    /// of the 4-wide unroll tiles, and the default supernode width cap.
    #[test]
    fn kernels_match_scalar_on_random_panels(m_extra in 0usize..9,
                                             g in prop::collection::vec(-1.0f64..1.0, 41 * 41),
                                             rhs in prop::collection::vec(-2.0f64..2.0, 41)) {
        for w in [1usize, 5, 32] {
            let m = w + m_extra;
            // SPD diagonal block via G·Gᵀ + (m+1)·I, column-major panel of
            // height m (rows w..m are the below-diagonal block).
            let mut base = vec![0.0f64; w * m];
            for j in 0..w {
                for i in 0..m {
                    let mut v = 0.0;
                    for k in 0..m {
                        v += g[k * m + i] * g[k * m + j];
                    }
                    if i == j {
                        v += (m + 1) as f64;
                    }
                    base[j * m + i] = v;
                }
            }
            let mut oracle = base.clone();
            ScalarKernel.factor_panel(&mut oracle, m, w).expect("SPD panel");
            for choice in KernelChoice::available() {
                let kern = choice.kernel();
                let mut panel = base.clone();
                kern.factor_panel(&mut panel, m, w).expect("SPD panel");
                for (a, b) in oracle.iter().zip(&panel) {
                    prop_assert!((a - b).abs() <= 1e-12 * (m as f64),
                        "factor w{} ({}): {} vs {}", w, kern.name(), a, b);
                }
                // Triangular sweeps on the shared oracle factor, so only
                // the kernel under test differs.
                let mut xo = rhs[..w].to_vec();
                let mut xk = xo.clone();
                ScalarKernel.solve_lower(&oracle, m, w, &mut xo);
                kern.solve_lower(&oracle, m, w, &mut xk);
                let mut ao = vec![0.0; m - w];
                let mut ak = vec![1.0; m - w]; // must be overwritten
                ScalarKernel.below_accumulate(&oracle, m, w, &xo, &mut ao);
                kern.below_accumulate(&oracle, m, w, &xo, &mut ak);
                let xb = &rhs[..m - w];
                let mut bo = xo.clone();
                let mut bk = xo.clone();
                ScalarKernel.solve_lower_transpose(&oracle, m, w, &mut bo, xb);
                kern.solve_lower_transpose(&oracle, m, w, &mut bk, xb);
                for (pair, label) in [(xo.iter().zip(&xk), "solve_lower"),
                                      (ao.iter().zip(&ak), "below_accumulate"),
                                      (bo.iter().zip(&bk), "solve_lower_transpose")] {
                    for (a, b) in pair {
                        prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0),
                            "{} w{} ({}): {} vs {}", label, w, kern.name(), a, b);
                    }
                }
            }
        }
    }

    /// The same ≤1e-12 kernel-vs-oracle contract end to end: a supernodal
    /// factorization + solve under each available kernel stays within
    /// tolerance of the `ScalarKernel` configuration on random SPD
    /// operators.
    #[test]
    fn supernodal_kernels_match_scalar_kernel(a in spd_strategy(13),
                                              b in prop::collection::vec(-4.0f64..4.0, 13),
                                              max_width in 1usize..6) {
        let perm = FillOrdering::Rcm.permutation(&a);
        let opts = SupernodalOptions { max_width, ..Default::default() };
        let reference = SupernodalCholesky::factor_with_permutation(
            &a,
            perm.clone(),
            &SupernodalOptions { kernel: KernelChoice::Scalar, ..opts },
        ).expect("SPD").solve(&b);
        let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for &kernel in KernelChoice::available() {
            let chol = SupernodalCholesky::factor_with_permutation(
                &a,
                perm.clone(),
                &SupernodalOptions { kernel, ..opts },
            ).expect("SPD");
            prop_assert_eq!(chol.kernel_name(), kernel.resolved_name());
            let x = chol.solve(&b);
            for (p, q) in reference.iter().zip(&x) {
                prop_assert!((p - q).abs() <= 1e-12 * scale,
                    "{}: {} vs {}", kernel.resolved_name(), p, q);
            }
        }
    }

    /// Panel sweeps are bitwise equal to looped single solves, for both
    /// kernels and any panel shape.
    #[test]
    fn panel_solves_are_bitwise_equal_to_looped(a in spd_strategy(10),
                                                bs in prop::collection::vec(
                                                    prop::collection::vec(-3.0f64..3.0, 10), 1..7)) {
        let n = 10;
        let nrhs = bs.len();
        let flat = |bs: &[Vec<f64>]| -> Vec<f64> {
            bs.iter().flat_map(|b| b.iter().copied()).collect()
        };
        let scalar = SparseCholesky::factor(&a).expect("SPD");
        let mut panel = flat(&bs);
        scalar.solve_panel(&mut panel, nrhs);
        for (r, b) in bs.iter().enumerate() {
            let single = scalar.solve(b);
            for i in 0..n {
                prop_assert_eq!(panel[r * n + i].to_bits(), single[i].to_bits());
            }
        }
        let blocked = SupernodalCholesky::factor(&a).expect("SPD");
        let mut panel = flat(&bs);
        blocked.solve_panel(&mut panel, nrhs);
        for (r, b) in bs.iter().enumerate() {
            let single = blocked.solve(b);
            for i in 0..n {
                prop_assert_eq!(panel[r * n + i].to_bits(), single[i].to_bits());
            }
        }
    }

    /// The pool-distributed panel path of `solve_many` is bitwise equal to
    /// per-RHS solves for every kernel × panel-width × thread mix.
    #[test]
    fn panel_batched_backend_matches_individual(a in spd_strategy(9),
                                                bs in prop::collection::vec(
                                                    prop::collection::vec(-2.0f64..2.0, 9), 1..9),
                                                panel_width in 1usize..5,
                                                threads in 1usize..6) {
        let a = Arc::new(a);
        for kernel in [CholeskyKernel::Supernodal, CholeskyKernel::Scalar] {
            let backend = DirectCholesky { kernel, panel_width, ..DirectCholesky::default() };
            let prepared = backend.prepare(Arc::clone(&a)).expect("SPD");
            let batch = prepared.solve_many(&bs, threads).expect("direct solve");
            prop_assert_eq!(batch.report.rhs_count, bs.len());
            for (b, x) in bs.iter().zip(&batch.xs) {
                prop_assert_eq!(&prepared.solve(b).expect("direct solve").x, x);
            }
        }
    }

    /// The elimination-tree-parallel numeric factorization is bitwise
    /// identical to the serial left-looking sweep on random SPD operators,
    /// at every pool cap (serial, minimal, saturated, oversubscribed) and
    /// across orderings — the PR-4 determinism contract.
    #[test]
    fn parallel_factor_is_bitwise_equal_to_serial(a in spd_strategy(14),
                                                  b in prop::collection::vec(-4.0f64..4.0, 14),
                                                  max_width in 1usize..6,
                                                  // Tiny budgets force update-chunk tasks even at
                                                  // this size, covering both DAG task kinds.
                                                  chunk_exp in 4usize..19) {
        let chunk_work = 1u64 << chunk_exp;
        for ordering in [FillOrdering::Rcm, FillOrdering::NestedDissection] {
            let perm = ordering.permutation(&a);
            let opts = SupernodalOptions { max_width, chunk_work, ..Default::default() };
            let serial = SupernodalCholesky::factor_with_permutation(
                &a,
                perm.clone(),
                &SupernodalOptions { parallel: false, ..opts },
            ).expect("SPD");
            prop_assert_eq!(serial.factor_workers(), 1);
            let x_serial = serial.solve(&b);
            for cap in [1usize, 2, 8, 33] {
                let parallel = WorkPool::new(cap).install(|| {
                    SupernodalCholesky::factor_with_permutation(&a, perm.clone(), &opts)
                        .expect("SPD")
                });
                prop_assert!(parallel.factor_workers() <= cap);
                prop_assert_eq!(serial.factor_values().len(), parallel.factor_values().len());
                for (i, (p, q)) in serial
                    .factor_values()
                    .iter()
                    .zip(parallel.factor_values())
                    .enumerate()
                {
                    prop_assert_eq!(p.to_bits(), q.to_bits(),
                        "{:?} panel entry {} differs at cap {}", ordering, i, cap);
                }
                let x_parallel = parallel.solve(&b);
                for (p, q) in x_serial.iter().zip(&x_parallel) {
                    prop_assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
    }

    /// Same bitwise parallel-vs-serial contract on structured lattice
    /// operators (the shape the MORE-Stress stages actually factor), where
    /// the supernodal etree has real branching.
    #[test]
    fn parallel_factor_matches_serial_on_lattices(nx in 3usize..10,
                                                  ny in 3usize..8,
                                                  jitter in prop::collection::vec(0.0f64..1.0, 16),
                                                  chunk_exp in 4usize..19) {
        let chunk_work = 1u64 << chunk_exp;
        let n = nx * ny;
        let id = |i: usize, j: usize| j * nx + i;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let me = id(i, j);
                coo.push(me, me, 4.1 + jitter[me % jitter.len()]);
                if i > 0 { coo.push(me, id(i - 1, j), -1.0); }
                if i + 1 < nx { coo.push(me, id(i + 1, j), -1.0); }
                if j > 0 { coo.push(me, id(i, j - 1), -1.0); }
                if j + 1 < ny { coo.push(me, id(i, j + 1), -1.0); }
            }
        }
        let a = coo.to_csr();
        let perm = FillOrdering::NestedDissection.permutation(&a);
        let opts = SupernodalOptions { chunk_work, ..Default::default() };
        let serial = SupernodalCholesky::factor_with_permutation(
            &a,
            perm.clone(),
            &SupernodalOptions { parallel: false, ..opts },
        ).expect("SPD");
        for cap in [1usize, 2, 8, 33] {
            let parallel = WorkPool::new(cap).install(|| {
                SupernodalCholesky::factor_with_permutation(&a, perm.clone(), &opts)
                    .expect("SPD")
            });
            for (p, q) in serial.factor_values().iter().zip(parallel.factor_values()) {
                prop_assert_eq!(p.to_bits(), q.to_bits(), "cap {}", cap);
            }
        }
    }

    /// `scope_dag` runs every node exactly once and never starts a node
    /// before its tree children completed, for random forests and caps.
    #[test]
    fn scope_dag_runs_every_node_once_in_topo_order(cap in 1usize..9,
                                                    parents in prop::collection::vec(
                                                        0usize..1000, 2..40)) {
        // Normalize to a valid heap-ordered forest: parent[i] > i or root.
        let n = parents.len();
        let parent: Vec<usize> = parents
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let p = i + 1 + p % (n - i);
                if p >= n { usize::MAX } else { p }
            })
            .collect();
        let dag = TaskDag::from_parents(&parent);
        let clock = AtomicUsize::new(0);
        let seq: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let runs: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkPool::new(cap);
        let used = pool.scope_dag(64, &dag, |i| {
            runs[i].fetch_add(1, Ordering::Relaxed);
            seq[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
        });
        prop_assert!(0 < used && used <= cap);
        for i in 0..n {
            prop_assert_eq!(runs[i].load(Ordering::Relaxed), 1, "node {} run count", i);
            if parent[i] != usize::MAX {
                prop_assert!(
                    seq[i].load(Ordering::SeqCst) < seq[parent[i]].load(Ordering::SeqCst),
                    "node {} ran after its parent {}", i, parent[i]
                );
            }
        }
    }

    /// Nested dissection always emits a valid permutation, also on
    /// disconnected and near-dense graphs.
    #[test]
    fn nested_dissection_permutation_is_valid(a in spd_strategy(14)) {
        let p = nested_dissection(&a);
        prop_assert_eq!(p.len(), 14);
        let q = Permutation::new(p.as_slice().to_vec());
        prop_assert!(q.is_some(), "perm vector must be a permutation");
    }

    /// Pool scheduling: whatever the cap / worker-request / task-count mix,
    /// `scope_chunks` runs every task exactly once and never uses more
    /// worker slots than the cap allows.
    #[test]
    fn pool_runs_every_task_exactly_once(cap in 1usize..12,
                                         workers in 1usize..40,
                                         num_tasks in 0usize..120) {
        let pool = WorkPool::new(cap);
        let counts: Vec<AtomicUsize> = (0..num_tasks).map(|_| AtomicUsize::new(0)).collect();
        let used = pool.scope_chunks(workers, num_tasks, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(used <= cap, "{used} slots exceed cap {cap}");
        prop_assert!(num_tasks == 0 || used >= 1);
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "task {} ran a wrong number of times", i);
        }
    }

    /// Nested scopes share the one pool: however deep the nesting, the set
    /// of distinct threads that ever execute work stays within the cap —
    /// the cap² oversubscription bug can't come back.
    #[test]
    fn nested_scopes_never_exceed_the_cap(cap in 1usize..6,
                                          outer in 1usize..6,
                                          inner in 1usize..6) {
        let pool = WorkPool::new(cap);
        let ids = Mutex::new(std::collections::HashSet::new());
        let total = AtomicUsize::new(0);
        pool.install(|| {
            WorkPool::current().scope_chunks(64, outer, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                WorkPool::current().scope_chunks(64, inner, |_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        prop_assert_eq!(total.load(Ordering::Relaxed), outer * inner);
        let distinct = ids.lock().unwrap().len();
        prop_assert!(distinct <= cap, "{distinct} threads exceed shared cap {cap}");
    }

    /// Incremental sharded re-preparation under random value-only
    /// perturbations: the dirty set is exactly the owning shards of the
    /// perturbed interior rows (interface-row perturbations dirty no
    /// shard), and the incremental solve is **bitwise identical** to a
    /// from-scratch preparation of the perturbed operator — the PR-7
    /// determinism contract.
    #[test]
    fn incremental_reprepare_is_bitwise_for_random_perturbations(
        nx in 9usize..13,
        ny in 8usize..11,
        shards in 2usize..5,
        picks in prop::collection::vec((0usize..1000, 0.1f64..3.0), 1..6)) {
        let n = nx * ny;
        let id = |i: usize, j: usize| j * nx + i;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let me = id(i, j);
                coo.push(me, me, 4.1);
                if i > 0 { coo.push(me, id(i - 1, j), -1.0); }
                if i + 1 < nx { coo.push(me, id(i + 1, j), -1.0); }
                if j > 0 { coo.push(me, id(i, j - 1), -1.0); }
                if j + 1 < ny { coo.push(me, id(i, j + 1), -1.0); }
            }
        }
        let a = Arc::new(coo.to_csr());
        let backend = Sharded::new(shards);
        backend.prepare(Arc::clone(&a)).expect("SPD lattice");

        // Diagonal bumps keep the operator SPD and the pattern unchanged.
        let plan = ShardPlan::build(&a, shards);
        let mut perturbed = (*a).clone();
        let mut owners = std::collections::HashSet::new();
        for &(seed, amount) in &picks {
            let row = seed % n;
            perturbed.add_at(row, row, amount);
            if let Some(k) = plan.owner(row) {
                owners.insert(k);
            }
        }
        let perturbed = Arc::new(perturbed);
        let rhs: Vec<Vec<f64>> = (0..2)
            .map(|k| (0..n).map(|i| ((i * (k + 3)) % 7) as f64 - 3.0).collect())
            .collect();

        let incremental = backend.prepare(Arc::clone(&perturbed)).expect("still SPD");
        let scratch = Sharded::new(shards).prepare(Arc::clone(&perturbed)).expect("still SPD");
        let bi = incremental.solve_many(&rhs, 4).expect("sharded solve");
        let bs = scratch.solve_many(&rhs, 4).expect("sharded solve");
        prop_assert_eq!(bi.report.shards_refactored, owners.len());
        prop_assert_eq!(bi.report.shards_reused, plan.num_shards() - owners.len());
        prop_assert_eq!(bs.report.shards_refactored, plan.num_shards());
        for (x, y) in bi.xs.iter().zip(&bs.xs) {
            for (p, q) in x.iter().zip(y) {
                prop_assert_eq!(p.to_bits(), q.to_bits(),
                    "incremental bits must match from-scratch bits");
            }
        }
    }

    /// PR-9 planner invariants on random block-grid lattices, both routes:
    /// plans are deterministic, interior shards are never coupled to each
    /// other (every off-diagonal entry stays within a shard or touches the
    /// interface), any plan that splits respects the minimum-rows floor,
    /// and the geometric route honors the 2× work-balance bound.
    #[test]
    fn shard_planner_invariants_on_hinted_lattices(
        bx in 2usize..5,
        by in 2usize..5,
        m in 2usize..4,
        shards in 2usize..6)
    {
        let (a, hint) = hinted_lattice(bx, by, m);
        let n = a.nrows();
        let geo = ShardPlan::build_hinted(&a, shards, Some(&hint));
        let graph = ShardPlan::build(&a, shards);
        // Determinism, per route.
        prop_assert!(geo == ShardPlan::build_hinted(&a, shards, Some(&hint)),
            "geometric plans must be deterministic");
        prop_assert!(graph == ShardPlan::build(&a, shards),
            "graph plans must be deterministic");
        for (route, plan) in [("geometric", &geo), ("graph", &graph)] {
            let stats = plan.stats();
            // No inter-shard edges: off-diagonal entries either stay inside
            // one shard or touch the interface.
            for row in 0..n {
                let Some(k) = plan.owner(row) else { continue };
                let (cols, _) = a.row(row);
                for &col in cols {
                    if let Some(k2) = plan.owner(col) {
                        prop_assert_eq!(k, k2,
                            "{} plan couples shard {} to shard {}", route, k, k2);
                    }
                }
            }
            // Any plan that actually splits respects the rows floor.
            if plan.num_shards() >= 2 {
                prop_assert!(stats.min_shard_rows >= ShardPlan::MIN_SHARD_ROWS,
                    "{} plan emitted a {}-row shard", route, stats.min_shard_rows);
            }
        }
        // The geometric route only accepts balanced region counts.
        if geo.stats().geometric {
            prop_assert!(geo.stats().balance_ratio <= 2.0 + 1e-12,
                "geometric balance {} exceeds the 2x bound", geo.stats().balance_ratio);
        }
    }

    /// A hint whose span table does not cover the operator (a length
    /// mismatch) is ignored gracefully: the plan falls back to the graph
    /// route and equals the unhinted plan exactly.
    #[test]
    fn mismatched_hints_are_ignored_gracefully(
        bx in 2usize..5,
        by in 2usize..5,
        m in 2usize..4,
        shards in 2usize..6,
        drop in 1usize..4)
    {
        let (a, hint) = hinted_lattice(bx, by, m);
        let truncated: Vec<[usize; 4]> = (0..hint.num_rows().saturating_sub(drop))
            .map(|_| [0, bx - 1, 0, by - 1])
            .collect();
        let bad = PartitionHint::new([bx, by], truncated);
        let hinted = ShardPlan::build_hinted(&a, shards, Some(&bad));
        let unhinted = ShardPlan::build(&a, shards);
        prop_assert!(hinted == unhinted,
            "a mismatched hint must fall back to the graph planner");
        prop_assert!(!hinted.stats().geometric);
    }

    /// A `FactorCache` is usable from many pool workers concurrently: all
    /// callers end up sharing one prepared solver for the same system, the
    /// hit/miss counters stay consistent, and concurrent duplicate
    /// preparations are deduplicated to a single cache entry.
    #[test]
    fn factor_cache_is_safe_across_pool_workers(cap in 2usize..8, n in 4usize..12) {
        let pool = WorkPool::new(cap);
        let cache = FactorCache::new();
        let backend = DirectCholesky::default();
        let a = {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 4.0);
                if i > 0 { coo.push(i, i - 1, -1.0); }
                if i + 1 < n { coo.push(i, i + 1, -1.0); }
            }
            Arc::new(coo.to_csr())
        };
        let calls = 16;
        let solvers = Mutex::new(Vec::new());
        // Bounded rendezvous so several workers usually reach the cache
        // together and the concurrent-preparation dedup path really races.
        let arrived = AtomicUsize::new(0);
        pool.scope_chunks(cap, calls, |_| {
            arrived.fetch_add(1, Ordering::SeqCst);
            let t0 = std::time::Instant::now();
            while arrived.load(Ordering::SeqCst) < 2 && t0.elapsed().as_millis() < 50 {
                std::thread::yield_now();
            }
            let prepared = cache.prepare(&backend, &a).expect("SPD by construction");
            let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            let sol = prepared.solve(&b).expect("direct solve");
            assert!(a.residual(&sol.x, &b) < 1e-10);
            solvers.lock().unwrap().push(prepared);
        });
        let solvers = solvers.into_inner().unwrap();
        prop_assert_eq!(solvers.len(), calls);
        for s in &solvers[1..] {
            prop_assert!(Arc::ptr_eq(&solvers[0], s), "all workers must share one factor");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), calls);
        prop_assert!(cache.misses() >= 1);
        prop_assert_eq!(cache.len(), 1, "racing preparations must deduplicate");
    }
}

// A panicking task must neither deadlock the scope nor poison the pool.
// Few cases: each one unavoidably prints the caught panic to stderr.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pool_survives_a_panicking_task(cap in 1usize..6, num_tasks in 1usize..30,
                                      bad_seed in 0usize..1000) {
        let pool = WorkPool::new(cap);
        let bad = bad_seed % num_tasks;
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_chunks(cap, num_tasks, |i| {
                if i == bad {
                    panic!("injected task failure");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        prop_assert!(result.is_err(), "the panic must propagate to the scope caller");
        prop_assert!(survivors.load(Ordering::Relaxed) < num_tasks,
                     "the failed task must not count as run");
        // The pool keeps scheduling afterwards.
        let after = AtomicUsize::new(0);
        pool.scope_chunks(cap, 8, |_| { after.fetch_add(1, Ordering::Relaxed); });
        prop_assert_eq!(after.load(Ordering::Relaxed), 8);
    }
}
