//! Property-based tests of the linear algebra kernels.

#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays

use std::sync::Arc;

use morestress_linalg::{
    reverse_cuthill_mckee, solve_cg, solve_gmres, Auto, CgOptions, CooMatrix, CsrMatrix,
    DenseMatrix, DirectCholesky, GmresOptions, JacobiPreconditioner, Permutation, SolverBackend,
    SparseCholesky,
};
use proptest::prelude::*;

/// Random sparse triplets on an n×n matrix.
fn coo_strategy(n: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    prop::collection::vec((0..n, 0..n, -10.0f64..10.0), 1..max_nnz).prop_map(move |trips| {
        let mut coo = CooMatrix::new(n, n);
        for (i, j, v) in trips {
            coo.push(i, j, v);
        }
        coo
    })
}

/// A random SPD matrix: A = B Bᵀ + (n+1)·I with sparse-ish B, assembled
/// densely into COO (small n keeps this cheap).
fn spd_strategy(n: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |b| {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += b[i * n + k] * b[j * n + k];
                }
                if i == j {
                    v += (n + 1) as f64;
                }
                coo.push(i, j, v);
            }
        }
        coo.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR conversion preserves the summed value of every entry.
    #[test]
    fn coo_to_csr_preserves_entry_sums(coo in coo_strategy(8, 64)) {
        let csr = coo.to_csr();
        // Dense accumulation of the triplets.
        let mut dense = vec![0.0f64; 64];
        let rebuilt = {
            // Walk the CSR and compare against dense sums later.
            let mut m = vec![0.0f64; 64];
            for i in 0..8 {
                let (cols, vals) = csr.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    m[i * 8 + c] = v;
                }
            }
            m
        };
        // Recompute via a second conversion path: transpose twice.
        let tt = csr.transposed().transposed();
        prop_assert_eq!(&csr, &tt);
        for i in 0..8 {
            let (cols, vals) = csr.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                dense[i * 8 + c] += v; // CSR has unique entries
                let _ = v;
            }
        }
        prop_assert_eq!(dense, rebuilt);
    }

    /// SpMV distributes over vector addition: A(x+y) = Ax + Ay.
    #[test]
    fn spmv_is_linear(coo in coo_strategy(10, 80),
                      x in prop::collection::vec(-5.0f64..5.0, 10),
                      y in prop::collection::vec(-5.0f64..5.0, 10)) {
        let a = coo.to_csr();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + q).collect();
        let lhs = a.spmv(&xy);
        let ax = a.spmv(&x);
        let ay = a.spmv(&y);
        for i in 0..10 {
            prop_assert!((lhs[i] - ax[i] - ay[i]).abs() < 1e-9);
        }
    }

    /// Sparse Cholesky solves random SPD systems to tight residuals.
    #[test]
    fn cholesky_solves_random_spd(a in spd_strategy(12),
                                  b in prop::collection::vec(-5.0f64..5.0, 12)) {
        let chol = SparseCholesky::factor(&a).expect("SPD by construction");
        let x = chol.solve(&b);
        prop_assert!(a.residual(&x, &b) < 1e-10);
    }

    /// RCM + natural orderings give the same answers (different paths).
    #[test]
    fn orderings_agree(a in spd_strategy(10),
                       b in prop::collection::vec(-2.0f64..2.0, 10)) {
        let x1 = SparseCholesky::factor(&a).unwrap().solve(&b);
        let x2 = SparseCholesky::factor_natural(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// CG and GMRES agree with the direct solve on SPD systems.
    #[test]
    fn iterative_solvers_match_direct(a in spd_strategy(10),
                                      b in prop::collection::vec(-2.0f64..2.0, 10)) {
        let direct = SparseCholesky::factor(&a).unwrap().solve(&b);
        let pre = JacobiPreconditioner::new(&a);
        let cg = solve_cg(&a, &b, &pre, CgOptions { tol: 1e-12, max_iter: 1000 }).unwrap();
        let gm = solve_gmres(&a, &b, &pre, GmresOptions { tol: 1e-12, ..Default::default() }).unwrap();
        let scale = direct.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for i in 0..10 {
            prop_assert!((cg.x[i] - direct[i]).abs() < 1e-6 * scale);
            prop_assert!((gm.x[i] - direct[i]).abs() < 1e-6 * scale);
        }
    }

    /// Permutations round-trip vectors.
    #[test]
    fn permutation_roundtrip(perm in Just(()).prop_flat_map(|_| {
        prop::collection::vec(0usize..1000, 1..30).prop_map(|seed| {
            let n = seed.len();
            let mut p: Vec<usize> = (0..n).collect();
            for (i, s) in seed.iter().enumerate() {
                p.swap(i, s % n);
            }
            Permutation::new(p).expect("valid by construction")
        })
    }), ) {
        let n = perm.len();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
        let y = perm.apply(&x);
        prop_assert_eq!(perm.apply_inverse(&y), x);
    }

    /// RCM never changes the spectrum's action: permuted solve equals
    /// unpermuted solve after mapping.
    #[test]
    fn rcm_permutation_is_valid(a in spd_strategy(9)) {
        let p = reverse_cuthill_mckee(&a);
        prop_assert_eq!(p.len(), 9);
        // p is a bijection: inverse of inverse is identity.
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inverse(&p.apply(&x)), x);
    }

    /// Dense LU inverts what it multiplies.
    #[test]
    fn dense_lu_roundtrip(vals in prop::collection::vec(-3.0f64..3.0, 16),
                          x in prop::collection::vec(-3.0f64..3.0, 4)) {
        let mut m = DenseMatrix::from_vec(4, 4, vals);
        for i in 0..4 {
            m[(i, i)] += 8.0; // diagonally dominant => invertible
        }
        let b = m.matvec(&x);
        let solved = m.lu().unwrap().solve(&b).unwrap();
        for i in 0..4 {
            prop_assert!((solved[i] - x[i]).abs() < 1e-8);
        }
    }

    /// The `Auto` policy always prepares a backend that converges on random
    /// SPD systems, whichever side of the direct/iterative threshold the
    /// system lands on.
    #[test]
    fn auto_policy_converges_on_random_spd(a in spd_strategy(12),
                                           b in prop::collection::vec(-3.0f64..3.0, 12),
                                           direct_limit in 0usize..24) {
        let a = Arc::new(a);
        let auto = Auto { direct_limit, tol: 1e-10 };
        let prepared = auto
            .prepare(Arc::clone(&a))
            .expect("Auto must prepare on an SPD operator");
        let sol = prepared
            .solve(&b)
            .expect("the auto-selected backend must converge");
        prop_assert!(
            a.residual(&sol.x, &b) < 1e-7,
            "auto picked {} with residual {}",
            prepared.backend(),
            a.residual(&sol.x, &b)
        );
    }

    /// The batched multi-RHS path returns exactly what per-RHS solves do.
    #[test]
    fn batched_solves_match_individual(a in spd_strategy(10),
                                       bs in prop::collection::vec(
                                           prop::collection::vec(-2.0f64..2.0, 10), 1..6)) {
        let prepared = DirectCholesky::default()
            .prepare(Arc::new(a))
            .expect("SPD by construction");
        let batch = prepared.solve_many(&bs, 3).expect("direct solve");
        prop_assert_eq!(batch.xs.len(), bs.len());
        for (b, x) in bs.iter().zip(&batch.xs) {
            prop_assert_eq!(&prepared.solve(b).expect("direct solve").x, x);
        }
    }
}
