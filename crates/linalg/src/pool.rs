//! A shared, reusable worker pool for every parallel stage in the workspace.
//!
//! Before this module existed, each embarrassingly-parallel stage — the
//! n+1 local solves, the batched multi-RHS global solve, block-wise stress
//! reconstruction — spun its own ad-hoc `std::thread::scope`, paying thread
//! spawn cost on every call and, worse, multiplying: a stage that spawned
//! `cap` threads whose tasks each spawned `cap` more could hold `cap²` OS
//! threads alive. [`WorkPool`] replaces all of that with one lazily-started
//! set of resident worker threads and a scoped work-queue API:
//!
//! * [`WorkPool::global`] — the process-wide pool. Its thread cap comes from
//!   the `MORESTRESS_THREADS` environment variable when set, otherwise from
//!   [`std::thread::available_parallelism`] clamped to 16 (the paper's
//!   thread count).
//! * [`WorkPool::new`] — an explicitly-capped private pool, used by tests to
//!   prove thread-count invariance and by embedders that must bound the
//!   simulator's parallelism.
//! * [`WorkPool::install`] — runs a closure with this pool as the *current*
//!   pool of the calling thread; every parallel site in the workspace
//!   resolves [`WorkPool::current`], so a whole pipeline (local stage →
//!   global solve → reconstruction) is redirected by wrapping it once.
//! * [`WorkPool::scope_chunks`] / [`WorkPool::scope_workers`] — the scoped
//!   execution primitives. Both block until every started task finished, so
//!   task closures may borrow from the caller's stack.
//! * [`WorkPool::scope_dag`] — dependency-counted task-graph execution for
//!   stages whose tasks are *not* independent (the elimination-tree-parallel
//!   supernodal factorization): a task becomes ready when all of its
//!   prerequisites finished, ready tasks are claimed heaviest-priority
//!   first, and the scope blocks until the whole [`TaskDag`] drained.
//!
//! # Cap semantics
//!
//! A pool's `cap` is the maximum number of threads that ever execute its
//! work concurrently: up to `cap − 1` resident workers plus the calling
//! thread, which always participates. Per-call `workers` arguments (the
//! `threads` fields of the various options structs) are *requests* that are
//! clamped to the cap — they can narrow a call below the cap but never
//! widen it. Nested stages share the one pool: a task already running on a
//! pool worker that opens a nested scope enqueues onto the same queue, and
//! idle workers help out; no new threads appear. A worker waiting for its
//! nested scope only waits on worker slots other threads have already
//! *started* — unstarted slots are reclaimed and never run, which is why
//! slot bodies must be drain-a-shared-counter loops (see
//! [`WorkPool::scope_workers`]) and why nesting is deadlock-free at any
//! cap, including 1.
//!
//! The cap bounds the pool's resident workers plus *one* calling thread;
//! `k` independent application threads calling in concurrently donate
//! their own `k` caller slots on top of the `cap − 1` residents. Within
//! one call tree (the nesting case that used to explode to cap²) the bound
//! is the cap.
//!
//! # Determinism
//!
//! The scoped APIs assign tasks dynamically but the workspace's task bodies
//! write to disjoint, index-addressed slots and never accumulate across
//! tasks in scheduling order, so results are bitwise identical for every
//! cap — the property `crates/core/tests/thread_invariance.rs` pins down.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};

/// A worker-pool handle.
///
/// Cloning is cheap (the clones share the pool). The resident worker
/// threads shut down when the last handle is dropped; the global pool lives
/// for the process.
#[derive(Clone)]
pub struct WorkPool {
    inner: Arc<Inner>,
    owner: Arc<Owner>,
}

/// Shared pool state: the work queue and worker bookkeeping.
struct Inner {
    cap: usize,
    state: Mutex<QueueState>,
    work_ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Arc<ScopeJob>>,
    spawned: usize,
    shutdown: bool,
}

/// Dropping the last [`WorkPool`] handle drops this and shuts the workers
/// down. Worker threads only hold [`Weak`] references to it, so they never
/// keep their own pool alive.
struct Owner {
    inner: Arc<Inner>,
}

impl Drop for Owner {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("pool state poisoned");
        state.shutdown = true;
        drop(state);
        self.inner.work_ready.notify_all();
    }
}

/// Thread-local resolution target of [`WorkPool::current`]. Holds the pool
/// weakly so a worker's own thread-local never keeps its pool alive.
#[derive(Clone)]
struct CurrentRef {
    inner: Arc<Inner>,
    owner: Weak<Owner>,
}

impl CurrentRef {
    fn upgrade(&self) -> Option<WorkPool> {
        self.owner.upgrade().map(|owner| WorkPool {
            inner: Arc::clone(&self.inner),
            owner,
        })
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CurrentRef>> = const { RefCell::new(None) };
}

/// One queued worker slot of an active scope.
///
/// `body` is a lifetime-erased pointer to the scope's task closure, which
/// lives on the scope caller's stack. Safety argument: the caller blocks in
/// [`WorkPool::scope_workers`] until every *claimed* job finished and has
/// reclaimed every unclaimed one, so the pointer is never dereferenced
/// after the closure's stack frame dies. Unclaimed jobs may outlive the
/// scope inside the queue, but their `claimed` flag is already set, so they
/// are discarded on pop without touching `body`.
struct ScopeJob {
    slot: usize,
    body: *const (dyn Fn(usize) + Sync),
    claimed: AtomicBool,
    scope: Arc<ScopeState>,
}

// SAFETY: `body` points at a `Sync` closure (shared references may cross
// threads) and the scope discipline above bounds its lifetime.
unsafe impl Send for ScopeJob {}
unsafe impl Sync for ScopeJob {}

/// Completion tracking of one scope: how many claimed jobs finished, plus
/// the first panic payload any of them produced.
struct ScopeState {
    finished: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            finished: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

fn run_job(job: &ScopeJob) {
    if job.claimed.swap(true, Ordering::AcqRel) {
        return; // reclaimed by the scope caller, or already run
    }
    // SAFETY: claiming the job above means the scope caller will wait for
    // `finished` to cover this job before returning, so `body` is alive.
    let body = unsafe { &*job.body };
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(job.slot))) {
        job.scope
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .get_or_insert(payload);
    }
    let mut finished = job.scope.finished.lock().expect("scope latch poisoned");
    *finished += 1;
    drop(finished);
    job.scope.done.notify_all();
}

fn worker_loop(inner: Arc<Inner>, owner: Weak<Owner>) {
    // Work executed on this thread resolves `WorkPool::current()` to the
    // pool that owns it, so nested parallel stages reuse the same pool
    // instead of falling back to the global one.
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(CurrentRef {
            inner: Arc::clone(&inner),
            owner,
        });
    });
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_ready.wait(state).expect("pool state poisoned");
            }
        };
        run_job(&job);
    }
}

/// Reads the global pool's thread cap: `MORESTRESS_THREADS` when set to a
/// positive integer, otherwise the machine's parallelism clamped to 16
/// (the paper's thread count).
fn default_global_cap() -> usize {
    std::env::var("MORESTRESS_THREADS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&cap| cap >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get().min(16)))
}

impl WorkPool {
    /// Creates a private pool whose work never runs on more than `cap`
    /// threads (`cap − 1` resident workers plus the caller). Workers are
    /// spawned lazily on first use and shut down when the last handle to
    /// the pool is dropped.
    pub fn new(cap: usize) -> Self {
        let inner = Arc::new(Inner {
            cap: cap.max(1),
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                spawned: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let owner = Arc::new(Owner {
            inner: Arc::clone(&inner),
        });
        Self { inner, owner }
    }

    /// The process-wide shared pool (created on first use; see the
    /// `default_global_cap` semantics in the module docs).
    pub fn global() -> &'static WorkPool {
        static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkPool::new(default_global_cap()))
    }

    /// The pool parallel stages on this thread currently resolve to: the
    /// innermost [`install`](Self::install) scope, the owning pool on a
    /// pool worker thread, or the [`global`](Self::global) pool.
    pub fn current() -> WorkPool {
        CURRENT
            .with(|current| current.borrow().clone())
            .and_then(|re| re.upgrade())
            .unwrap_or_else(|| Self::global().clone())
    }

    /// Thread cap of this pool: up to `cap − 1` resident workers plus the
    /// calling thread. Each concurrent *independent* calling thread donates
    /// its own caller slot (see the module docs); within one call tree the
    /// cap is a hard bound.
    pub fn cap(&self) -> usize {
        self.inner.cap
    }

    fn current_ref(&self) -> CurrentRef {
        CurrentRef {
            inner: Arc::clone(&self.inner),
            owner: Arc::downgrade(&self.owner),
        }
    }

    /// Runs `f` with this pool installed as the calling thread's current
    /// pool, so every parallel stage `f` reaches — directly or through
    /// nested calls on this thread — executes here instead of on the
    /// global pool. The previous installation is restored on exit, also on
    /// unwind.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<CurrentRef>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|current| *current.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|current| current.borrow_mut().replace(self.current_ref()));
        let _restore = Restore(prev);
        f()
    }

    /// Enqueues `jobs` and makes sure enough workers exist to help.
    fn submit(&self, jobs: &[Arc<ScopeJob>]) {
        let mut state = self.inner.state.lock().expect("pool state poisoned");
        state.jobs.extend(jobs.iter().map(Arc::clone));
        let want = (self.inner.cap - 1).min(state.jobs.len());
        while state.spawned < want {
            state.spawned += 1;
            let inner = Arc::clone(&self.inner);
            let owner = Arc::downgrade(&self.owner);
            std::thread::Builder::new()
                .name("morestress-pool".into())
                .spawn(move || worker_loop(inner, owner))
                .expect("failed to spawn pool worker");
        }
        drop(state);
        self.inner.work_ready.notify_all();
    }

    /// Runs `body(slot)` once per worker slot, on up to `workers` threads
    /// concurrently (clamped to the pool cap; the caller runs slot 0, pool
    /// workers pick up the rest). Returns the number of worker slots that
    /// *actually ran* — the caller plus every slot a resident worker
    /// started, which is less than the request when the pool is busy
    /// serving other callers.
    ///
    /// This is the low-level primitive: `body` must be written in the
    /// work-queue style (each invocation drains a shared task counter until
    /// empty), because slots whose pool worker never became free are
    /// reclaimed and simply not run. [`scope_chunks`](Self::scope_chunks)
    /// packages that pattern.
    ///
    /// Blocks until every started slot returned, so `body` may borrow from
    /// the caller's stack. A panic in any slot is caught and its first
    /// payload re-thrown here only after the scope fully quiesced — one
    /// broken task can neither deadlock nor poison the pool, the other
    /// slots keep draining their work, and the pool stays usable. (Work the
    /// panicking slot would have claimed is abandoned, as in `rayon`: the
    /// scope is aborting anyway.)
    pub fn scope_workers(&self, workers: usize, body: impl Fn(usize) + Sync) -> usize {
        let workers = workers.clamp(1, self.inner.cap);
        let body_ref: &(dyn Fn(usize) + Sync) = &body;
        if workers == 1 {
            body_ref(0);
            return 1;
        }
        // SAFETY: lifetime erasure for the queue; see `ScopeJob` docs. This
        // function does not return before every claimed job finished.
        let body_ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(body_ref as *const (dyn Fn(usize) + Sync)) };
        let scope = Arc::new(ScopeState::new());
        let jobs: Vec<Arc<ScopeJob>> = (1..workers)
            .map(|slot| {
                Arc::new(ScopeJob {
                    slot,
                    body: body_ptr,
                    claimed: AtomicBool::new(false),
                    scope: Arc::clone(&scope),
                })
            })
            .collect();
        self.submit(&jobs);

        // The caller is worker slot 0. Catch its panic so the scope still
        // quiesces before unwinding out.
        let caller = panic::catch_unwind(AssertUnwindSafe(|| body_ref(0)));

        // Reclaim every job no worker started; wait for the ones claimed.
        let mut claimed_by_workers = 0usize;
        for job in &jobs {
            if job.claimed.swap(true, Ordering::AcqRel) {
                claimed_by_workers += 1;
            }
        }
        let mut finished = scope.finished.lock().expect("scope latch poisoned");
        while *finished < claimed_by_workers {
            finished = scope.done.wait(finished).expect("scope latch poisoned");
        }
        drop(finished);

        if let Err(payload) = caller {
            panic::resume_unwind(payload);
        }
        let worker_panic = scope
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        if let Some(payload) = worker_panic {
            panic::resume_unwind(payload);
        }
        1 + claimed_by_workers
    }

    /// Runs `task(i)` exactly once for every `i in 0..num_tasks`,
    /// distributing indices dynamically over up to `workers` worker slots
    /// (clamped to the pool cap and to `num_tasks`). Returns the number of
    /// worker slots that executed at least one task — honest concurrency
    /// telemetry, ≥ 1 and ≤ the clamped request, but scheduling-dependent:
    /// a fast caller can drain a small task set before the residents wake.
    ///
    /// Indices are claimed in *chunks* of `max(1, num_tasks / (8·workers))`
    /// from one shared counter, so fine-grained task sets pay one atomic
    /// RMW per chunk instead of one per task — the contention fix the
    /// many-core runs wanted — while the `8×` oversplit keeps the tail
    /// balanced when task costs vary.
    ///
    /// Blocks until all tasks finished, so `task` may borrow from the
    /// caller's stack; panic semantics are those of
    /// [`scope_workers`](Self::scope_workers).
    pub fn scope_chunks(
        &self,
        workers: usize,
        num_tasks: usize,
        task: impl Fn(usize) + Sync,
    ) -> usize {
        self.scope_chunks_with(workers, num_tasks, || (), |(), i| task(i))
    }

    /// [`scope_chunks`](Self::scope_chunks) with per-worker state: `init`
    /// runs once on every worker slot that claims at least one index, and
    /// the produced state is threaded through all of that slot's `task`
    /// calls. This is how batched solvers reuse one panel scratch per
    /// worker instead of allocating per task.
    ///
    /// The state is dropped when the slot drains; nothing is returned —
    /// use it for scratch, not for reductions (accumulating into it in
    /// claim order would break the workspace's schedule-independence
    /// contract).
    pub fn scope_chunks_with<S>(
        &self,
        workers: usize,
        num_tasks: usize,
        init: impl Fn() -> S + Sync,
        task: impl Fn(&mut S, usize) + Sync,
    ) -> usize {
        if num_tasks == 0 {
            return 0;
        }
        let workers = workers.clamp(1, self.inner.cap).min(num_tasks);
        let chunk = (num_tasks / (8 * workers)).max(1);
        let next = AtomicUsize::new(0);
        let active = AtomicUsize::new(0);
        self.scope_workers(workers, |_slot| {
            let mut state: Option<S> = None;
            loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= num_tasks {
                    return;
                }
                let state = match &mut state {
                    Some(state) => state,
                    None => {
                        active.fetch_add(1, Ordering::Relaxed);
                        state.insert(init())
                    }
                };
                for i in start..(start + chunk).min(num_tasks) {
                    task(state, i);
                }
            }
        });
        active.load(Ordering::Relaxed).max(1)
    }

    /// Runs `task(i)` exactly once for every node of `dag`, never starting a
    /// node before all of its prerequisites finished, on up to `workers`
    /// worker slots (clamped to the pool cap and the node count). Returns
    /// the number of slots that executed at least one task.
    ///
    /// Ready nodes are claimed highest-[priority](TaskDag::set_priority)
    /// first (ties broken by node index), which lets callers schedule heavy
    /// subtrees early; the claim order never affects *which* prerequisites a
    /// task observes — by construction they have all completed — so
    /// schedule-independent task bodies produce schedule-independent
    /// results, the same determinism contract the other scoped primitives
    /// honor. Completion of a prerequisite *happens-before* the start of
    /// every task depending on it (the ready queue is mutex-protected), so
    /// a task may freely read anything its prerequisites wrote.
    ///
    /// Blocks until every node ran, so `task` may borrow from the caller's
    /// stack. A panicking task aborts the scope: nodes not yet started are
    /// abandoned, already-running ones finish, and the first panic payload
    /// is re-thrown here after the scope quiesced (the pool stays usable).
    /// A `dag` whose remaining nodes are never all reachable — a dependency
    /// cycle — panics instead of deadlocking.
    pub fn scope_dag(&self, workers: usize, dag: &TaskDag, task: impl Fn(usize) + Sync) -> usize {
        self.scope_dag_with(workers, dag, || (), |(), i| task(i))
    }

    /// [`scope_dag`](Self::scope_dag) with per-worker state: `init` runs
    /// once on every slot that claims at least one node, and the produced
    /// state is threaded through all of that slot's `task` calls — how the
    /// parallel factorization reuses one dense scratch per worker across
    /// supernode tasks. Like [`scope_chunks_with`](Self::scope_chunks_with),
    /// the state is for scratch, not for reductions.
    pub fn scope_dag_with<S>(
        &self,
        workers: usize,
        dag: &TaskDag,
        init: impl Fn() -> S + Sync,
        task: impl Fn(&mut S, usize) + Sync,
    ) -> usize {
        let n = dag.len();
        if n == 0 {
            return 0;
        }
        assert!(
            dag.pending_edges.is_empty(),
            "scope_dag: TaskDag has staged edges — call seal() after add_dependency"
        );
        struct DagState {
            /// Unfinished-prerequisite count per node.
            preds: Vec<usize>,
            /// Ready nodes, popped highest (priority, index) first.
            ready: BinaryHeap<(u64, usize)>,
            running: usize,
            completed: usize,
            /// First panic payload (or cycle diagnostic) — aborts the scope.
            abort: Option<Box<dyn Any + Send + 'static>>,
        }
        let mut ready = BinaryHeap::new();
        for i in 0..n {
            if dag.preds[i] == 0 {
                ready.push((dag.priority[i], i));
            }
        }
        let state = Mutex::new(DagState {
            preds: dag.preds.clone(),
            ready,
            running: 0,
            completed: 0,
            abort: None,
        });
        let ready_cv = Condvar::new();
        let active = AtomicUsize::new(0);
        let workers = workers.clamp(1, self.inner.cap).min(n);
        self.scope_workers(workers, |_slot| {
            let mut scratch: Option<S> = None;
            let mut guard = state.lock().expect("dag state poisoned");
            loop {
                if guard.completed == n || guard.abort.is_some() {
                    return;
                }
                let Some((_, i)) = guard.ready.pop() else {
                    if guard.running == 0 {
                        // No task is running, none is ready, not all are
                        // done: the dependency graph has a cycle. Abort the
                        // scope instead of deadlocking on the condvar.
                        guard.abort = Some(Box::new(
                            "scope_dag: dependency cycle (unfinished tasks, none ready)",
                        ));
                        drop(guard);
                        ready_cv.notify_all();
                        return;
                    }
                    guard = ready_cv.wait(guard).expect("dag state poisoned");
                    continue;
                };
                guard.running += 1;
                drop(guard);
                // `init` runs inside the same catch_unwind as `task`: a
                // panicking init must abort the scope like a panicking
                // task, not leak `running` and strand the other workers on
                // the condvar.
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    let scratch = match &mut scratch {
                        Some(scratch) => scratch,
                        None => {
                            active.fetch_add(1, Ordering::Relaxed);
                            scratch.insert(init())
                        }
                    };
                    task(scratch, i)
                }));
                guard = state.lock().expect("dag state poisoned");
                guard.running -= 1;
                let mut newly_ready = 0usize;
                match result {
                    Ok(()) => {
                        guard.completed += 1;
                        for &succ in dag.successors(i) {
                            guard.preds[succ] -= 1;
                            if guard.preds[succ] == 0 {
                                guard.ready.push((dag.priority[succ], succ));
                                newly_ready += 1;
                            }
                        }
                    }
                    Err(payload) => {
                        guard.abort.get_or_insert(payload);
                    }
                }
                // Wake waiters only when there is something to see —
                // newly-ready nodes, the final completion, an abort, or a
                // possible cycle verdict (`running == 0` with work left) —
                // not on every completion: a narrow frontier would
                // otherwise thundering-herd every waiter per task.
                if newly_ready > 0
                    || guard.completed == n
                    || guard.abort.is_some()
                    || guard.running == 0
                {
                    ready_cv.notify_all();
                }
            }
        });
        let abort = state.into_inner().expect("dag state poisoned").abort.take();
        if let Some(payload) = abort {
            panic::resume_unwind(payload);
        }
        active.load(Ordering::Relaxed).max(1)
    }
}

/// A dependency graph of tasks for [`WorkPool::scope_dag`]: node `i` may
/// only start once every node registered as its prerequisite finished.
///
/// Built once per schedule shape and reusable across `scope_dag` calls (the
/// scope clones the dependency counters, never mutates the dag). For tree
/// schedules — the elimination-tree case — [`TaskDag::from_parents`] builds
/// the whole graph from a parent array in one pass.
#[derive(Debug, Clone)]
pub struct TaskDag {
    /// Prerequisite count per node.
    preds: Vec<usize>,
    /// Successor adjacency in CSR form: finishing `i` releases
    /// `succ[succ_ptr[i]..succ_ptr[i+1]]`.
    succ_ptr: Vec<usize>,
    succ: Vec<usize>,
    /// Claim priority per node (higher pops first among ready nodes).
    priority: Vec<u64>,
    /// Edge staging area; folded into CSR lazily by [`TaskDag::seal`].
    pending_edges: Vec<(usize, usize)>,
}

impl TaskDag {
    /// A graph of `num_nodes` initially independent nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            preds: vec![0; num_nodes],
            succ_ptr: vec![0; num_nodes + 1],
            succ: Vec::new(),
            priority: vec![0; num_nodes],
            pending_edges: Vec::new(),
        }
    }

    /// A tree (or forest) schedule from a parent array: node `i` must finish
    /// before `parent[i]` may start; `parent[i] >= parent.len()` marks a
    /// root. This is the children-complete-first discipline of the
    /// supernodal elimination tree.
    pub fn from_parents(parent: &[usize]) -> Self {
        let mut dag = Self::new(parent.len());
        for (child, &p) in parent.iter().enumerate() {
            if p < parent.len() {
                dag.add_dependency(child, p);
            }
        }
        dag.seal();
        dag
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Declares that `before` must finish before `after` may start.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `before == after`.
    pub fn add_dependency(&mut self, before: usize, after: usize) {
        assert!(
            before < self.len() && after < self.len() && before != after,
            "scope_dag: invalid dependency {before} -> {after} (nodes: {})",
            self.len()
        );
        self.preds[after] += 1;
        self.pending_edges.push((before, after));
    }

    /// Sets the claim priority of `node` (default 0): among *ready* nodes,
    /// higher priorities are claimed first. Use subtree weights here so the
    /// heaviest independent branches start earliest.
    pub fn set_priority(&mut self, node: usize, priority: u64) {
        self.priority[node] = priority;
    }

    /// Folds staged edges into the CSR successor lists. Must be called
    /// after the last [`add_dependency`](Self::add_dependency) and before
    /// [`WorkPool::scope_dag`] (which asserts it);
    /// [`from_parents`](Self::from_parents) seals for you.
    pub fn seal(&mut self) {
        if self.pending_edges.is_empty() {
            return;
        }
        let n = self.len();
        let mut counts = vec![0usize; n];
        for i in 0..n {
            counts[i] = self.succ_ptr[i + 1] - self.succ_ptr[i];
        }
        for &(before, _) in &self.pending_edges {
            counts[before] += 1;
        }
        let mut new_ptr = vec![0usize; n + 1];
        for i in 0..n {
            new_ptr[i + 1] = new_ptr[i] + counts[i];
        }
        let mut new_succ = vec![0usize; new_ptr[n]];
        let mut next: Vec<usize> = new_ptr[..n].to_vec();
        for i in 0..n {
            for &s in &self.succ[self.succ_ptr[i]..self.succ_ptr[i + 1]] {
                new_succ[next[i]] = s;
                next[i] += 1;
            }
        }
        for &(before, after) in &self.pending_edges {
            new_succ[next[before]] = after;
            next[before] += 1;
        }
        self.pending_edges.clear();
        self.succ_ptr = new_ptr;
        self.succ = new_succ;
    }

    fn successors(&self, node: usize) -> &[usize] {
        debug_assert!(self.pending_edges.is_empty(), "TaskDag used before seal()");
        &self.succ[self.succ_ptr[node]..self.succ_ptr[node + 1]]
    }
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock().expect("pool state poisoned");
        f.debug_struct("WorkPool")
            .field("cap", &self.inner.cap)
            .field("spawned", &state.spawned)
            .field("queued", &state.jobs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkPool::new(4);
        let counts: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        let used = pool.scope_chunks(4, counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(0 < used && used <= 4);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn cap_one_runs_inline() {
        let pool = WorkPool::new(1);
        let hits = AtomicUsize::new(0);
        let used = pool.scope_chunks(16, 10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(used, 1);
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(
            pool.inner.state.lock().unwrap().spawned,
            0,
            "a cap-1 pool must never spawn threads"
        );
    }

    #[test]
    fn requests_are_clamped_to_the_cap() {
        let pool = WorkPool::new(3);
        // The return value counts slots that actually started (the caller
        // may outrun the residents on trivial bodies), never more than the
        // cap / the task count.
        let used = pool.scope_workers(64, |_| {});
        assert!((1..=3).contains(&used), "used {used}");
        let used = pool.scope_chunks(64, 2, |_| {});
        assert!((1..=2).contains(&used), "also clamped to tasks: {used}");
    }

    #[test]
    fn nested_scopes_share_the_pool() {
        use std::collections::HashSet;
        let pool = WorkPool::new(3);
        let ids = Mutex::new(HashSet::new());
        let total = AtomicUsize::new(0);
        pool.install(|| {
            WorkPool::current().scope_chunks(8, 4, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                WorkPool::current().scope_chunks(8, 5, |_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 5);
        assert!(
            ids.lock().unwrap().len() <= 3,
            "nested stages must not exceed the shared cap"
        );
    }

    #[test]
    fn install_redirects_and_restores() {
        let pool = WorkPool::new(2);
        let inside = pool.install(WorkPool::current);
        assert!(Arc::ptr_eq(&inside.inner, &pool.inner));
        let outside = WorkPool::current();
        assert!(Arc::ptr_eq(&outside.inner, &WorkPool::global().inner));
    }

    #[test]
    fn panicking_task_propagates_without_deadlocking() {
        let pool = WorkPool::new(4);
        let survivors = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_chunks(4, 20, |i| {
                if i == 7 {
                    panic!("task 7 exploded");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "the panic must reach the scope caller");
        // The panicking slot abandons its share; the others may or may not
        // have drained the rest, but the failed task never "ran".
        assert!(survivors.load(Ordering::Relaxed) <= 19);
        // And the pool keeps working afterwards.
        let after = AtomicUsize::new(0);
        pool.scope_chunks(4, 10, |_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunked_claiming_still_runs_every_index_once() {
        // Task counts chosen to exercise chunk-boundary arithmetic: primes,
        // exact multiples of the chunk size, and fewer tasks than workers.
        let pool = WorkPool::new(4);
        for num_tasks in [1usize, 3, 64, 97, 128, 1000] {
            let counts: Vec<AtomicUsize> = (0..num_tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.scope_chunks(4, num_tasks, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} of {num_tasks}");
            }
        }
    }

    #[test]
    fn per_worker_state_is_initialized_once_per_active_slot() {
        let pool = WorkPool::new(4);
        let inits = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let used = pool.scope_chunks_with(
            4,
            200,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0u8; 16] // stand-in for a panel scratch
            },
            |scratch, _i| {
                scratch[0] = scratch[0].wrapping_add(1);
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        assert_eq!(
            inits.load(Ordering::Relaxed),
            used,
            "exactly one scratch per slot that claimed work"
        );
    }

    #[test]
    fn scope_dag_respects_dependencies() {
        // A diamond over 6 nodes: 0 → {1, 2} → 3 → {4, 5}. Record the
        // completion sequence and check every edge's ordering.
        let pool = WorkPool::new(4);
        let mut dag = TaskDag::new(6);
        for (before, after) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)] {
            dag.add_dependency(before, after);
        }
        dag.seal();
        let clock = AtomicUsize::new(0);
        let seq: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let used = pool.scope_dag(4, &dag, |i| {
            seq[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
        });
        assert!(0 < used && used <= 4);
        let at = |i: usize| seq[i].load(Ordering::SeqCst);
        assert!((0..6).all(|i| at(i) != usize::MAX), "every node ran");
        for (before, after) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)] {
            assert!(
                at(before) < at(after),
                "node {after} started before its prerequisite {before}"
            );
        }
    }

    #[test]
    fn scope_dag_from_parents_runs_children_first() {
        // A forest: two chains 0→2→4 and 1→3 (parent indexed, MAX = root),
        // nodes must complete before their parents.
        let pool = WorkPool::new(3);
        let parent = vec![2usize, 3, 4, usize::MAX, usize::MAX];
        let dag = TaskDag::from_parents(&parent);
        let clock = AtomicUsize::new(0);
        let seq: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(usize::MAX)).collect();
        pool.scope_dag(3, &dag, |i| {
            seq[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
        });
        for (child, &p) in parent.iter().enumerate() {
            if p < parent.len() {
                assert!(
                    seq[child].load(Ordering::SeqCst) < seq[p].load(Ordering::SeqCst),
                    "child {child} must finish before parent {p}"
                );
            }
        }
        assert_eq!(clock.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn scope_dag_per_worker_state_and_priorities() {
        let pool = WorkPool::new(2);
        let mut dag = TaskDag::new(40);
        // One root gating 39 independent tasks, heaviest-first priorities.
        for i in 1..40 {
            dag.add_dependency(0, i);
            dag.set_priority(i, i as u64);
        }
        dag.seal();
        let inits = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let used = pool.scope_dag_with(
            2,
            &dag,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, _i| {
                *scratch += 1;
                hits.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 40);
        assert_eq!(
            inits.load(Ordering::Relaxed),
            used,
            "one scratch per active slot"
        );
    }

    #[test]
    fn scope_dag_propagates_init_panics_without_hanging() {
        let pool = WorkPool::new(2);
        let dag = TaskDag::new(4); // four independent nodes
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_dag_with(2, &dag, || panic!("init exploded"), |(), _i| {});
        }));
        assert!(result.is_err(), "the init panic must reach the caller");
        // The scope quiesced (no leaked `running` count) and the pool
        // still works.
        let after = AtomicUsize::new(0);
        pool.scope_chunks(2, 6, |_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn scope_dag_panics_on_cycles_instead_of_deadlocking() {
        let pool = WorkPool::new(2);
        let mut dag = TaskDag::new(3);
        dag.add_dependency(0, 1);
        dag.add_dependency(1, 2);
        dag.add_dependency(2, 1); // 1 ⇄ 2 cycle
        dag.seal();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_dag(2, &dag, |_| {});
        }));
        assert!(result.is_err(), "a cyclic dag must abort, not hang");
        // The pool survives the aborted scope.
        let after = AtomicUsize::new(0);
        pool.scope_chunks(2, 8, |_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scope_dag_propagates_task_panics() {
        let pool = WorkPool::new(4);
        let dag = TaskDag::from_parents(&[1, 2, 3, usize::MAX]);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_dag(4, &dag, |i| {
                if i == 1 {
                    panic!("task 1 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // Downstream nodes were abandoned, the pool still works.
        let after = AtomicUsize::new(0);
        pool.scope_chunks(4, 4, |_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn global_cap_env_parsing() {
        // Only shape-checks the fallback path (the env var itself is owned
        // by CI); the parsed branch is covered by the CI thread matrix.
        let cap = default_global_cap();
        assert!(cap >= 1);
    }
}
