use std::error::Error;
use std::fmt;

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// The dimension that was expected.
        expected: usize,
        /// The dimension that was supplied.
        found: usize,
    },
    /// A Cholesky factorization visited a non-positive pivot: the matrix is
    /// not (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Row/column at which factorization broke down.
        row: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// An LU factorization hit a (near-)zero pivot: the matrix is singular.
    Singular {
        /// Row/column at which elimination broke down.
        row: usize,
    },
    /// An iterative solver exhausted its iteration budget without reaching
    /// the requested tolerance.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            LinalgError::NotPositiveDefinite { row, pivot } => write!(
                f,
                "matrix is not positive definite (pivot {pivot:e} at row {row})"
            ),
            LinalgError::Singular { row } => {
                write!(f, "matrix is singular (zero pivot at row {row})")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (relative residual {residual:e})"
            ),
        }
    }
}

impl Error for LinalgError {}
