//! Error taxonomy for the linear algebra stack.
//!
//! Every fallible kernel in this crate funnels into the one [`LinalgError`]
//! enum, so callers (the backend layer, the Schur solver, the ROM stages in
//! `morestress-core`) match on a single closed-ish surface. The table below
//! maps each variant to the layers that can produce it and to the rung of
//! the resilience ladder (`Resilient` / `Auto` in `backend.rs`) that handles
//! it:
//!
//! | Variant                 | Produced by                                             | Ladder handling                                                        |
//! |-------------------------|---------------------------------------------------------|------------------------------------------------------------------------|
//! | `DimensionMismatch`     | shape checks in every solve/prepare entry point          | never recovered — a caller bug, returned immediately                    |
//! | `NonFinite`             | operator/RHS/solution scans in `prepare` and `solve`     | never recovered — poisoned input data, returned immediately             |
//! | `NotPositiveDefinite`   | scalar + supernodal Cholesky pivots (per shard in Schur) | diagonal-shift regularized re-factor, then GMRES                        |
//! | `Singular`              | dense LU pivots (element matrices, interface system)     | GMRES rung (a shifted re-factor cannot help an exactly singular block)  |
//! | `DidNotConverge`        | CG/GMRES budget exhaustion, verified-residual enforcement| iterative refinement reusing the factor, then the next rung, then GMRES |
//!
//! The ladder records every recovery it performs as a `DegradationStep` in
//! `SolveReport::degradation`, so a successful-but-degraded solve keeps the
//! original failure reason instead of discarding it.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// The dimension that was expected.
        expected: usize,
        /// The dimension that was supplied.
        found: usize,
    },
    /// A Cholesky factorization visited a non-positive pivot: the matrix is
    /// not (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Row/column at which factorization broke down.
        row: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// An LU factorization hit a (near-)zero pivot: the matrix is singular.
    Singular {
        /// Row/column at which elimination broke down.
        row: usize,
    },
    /// An iterative solver exhausted its iteration budget without reaching
    /// the requested tolerance.
    DidNotConverge {
        /// Iterations performed (for GMRES, total inner iterations).
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
        /// Restart cycles performed (GMRES; 0 for CG and direct verifies).
        restarts: usize,
    },
    /// A NaN or infinity was found in input or output data — a poisoned
    /// operator value, right-hand side, or computed solution.
    NonFinite {
        /// Which vector/matrix the scan was over ("operator", "rhs",
        /// "solution").
        context: &'static str,
        /// Index of the first offending entry (nnz index for operators,
        /// element index for vectors).
        index: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            LinalgError::NotPositiveDefinite { row, pivot } => write!(
                f,
                "matrix is not positive definite (pivot {pivot:e} at row {row})"
            ),
            LinalgError::Singular { row } => {
                write!(f, "matrix is singular (zero pivot at row {row})")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
                restarts,
            } => {
                write!(
                    f,
                    "iterative solver did not converge after {iterations} iterations \
                     (relative residual {residual:e}"
                )?;
                if *restarts > 0 {
                    write!(f, ", {restarts} restarts")?;
                }
                write!(f, ")")
            }
            LinalgError::NonFinite { context, index } => {
                write!(f, "non-finite value in {context} at index {index}")
            }
        }
    }
}

impl Error for LinalgError {}
