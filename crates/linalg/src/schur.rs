//! The sharded (Schur-complement) solver backend.
//!
//! [`Sharded`] decomposes a square SPD operator with a [`ShardPlan`] into
//! `K` interior blocks bordered by one interface set (no stored entry
//! couples two interiors directly), then solves by static condensation:
//!
//! 1. **Interior factors.** Every diagonal block `A_kk` is prepared
//!    independently through the *inner* backend (the same
//!    [`SolverBackend`] machinery every monolithic solve uses), with the
//!    shard preparations running concurrently on the shared
//!    [`WorkPool`](crate::WorkPool) and each factor memoized in a
//!    [`FactorCache`] under its own matrix fingerprint.
//! 2. **Schur assembly.** The interface operator
//!    `S = A_ss − Σ_k A_sk A_kk⁻¹ A_ks` is assembled from per-shard
//!    contributions: each shard batch-solves its coupling columns
//!    (`A_kk⁻¹ A_ks`, one panel multi-RHS sweep) and condenses them into a
//!    dense clique over the interface DoFs it touches. Contributions are
//!    accumulated in shard order, so `S` is identical at every pool cap.
//! 3. **Interface-then-interiors solve.** A batch of right-hand sides is
//!    reduced (`r_s = b_s − Σ_k A_sk A_kk⁻¹ b_k`), the interface system is
//!    solved once for the whole batch, and each interior is recovered with
//!    `x_k = A_kk⁻¹ (b_k − A_ks x_s)` — every stage a batched
//!    [`PreparedSolver::solve_many`] panel sweep, so the factor-once /
//!    solve-many economics survive sharding end to end.
//!
//! The payoff is capacity and parallelism: no single factorization ever
//! spans the whole operator (peak factor memory is the largest *shard*
//! factor plus the small interface factor), and the `K` expensive numeric
//! factorizations are independent tasks. Every step is deterministic and
//! schedule-independent, so sharded results are bitwise identical across
//! pool caps — only the *shard count* changes the numbers (different
//! elimination order ⇒ different rounding), which is why `shards` is part
//! of the cache fingerprint.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::backend::matrix_fingerprint;
use crate::{
    CsrMatrix, DegradationTrail, DirectCholesky, FactorCache, LinalgError, MemoryFootprint,
    PartitionHint, PreparedSolver, Resilient, ShardPlan, ShardPlanStats, SolverBackend,
    VerifyPolicy, WorkPool,
};

/// Domain-decomposition backend: `K` interior shards factored through an
/// inner backend, coupled by a Schur complement on the interface.
///
/// The struct is cheap declarative configuration like every other backend;
/// cloning shares the internal per-shard [`FactorCache`], so repeated
/// preparations through clones of one `Sharded` reuse shard factors.
#[derive(Debug, Clone)]
pub struct Sharded {
    /// Requested interior shard count. The plan may produce fewer on
    /// operators too small or too dense to separate; `<= 1` degenerates to
    /// a monolithic solve through `inner`.
    pub shards: usize,
    /// Backend used for every interior block and for the interface system.
    pub inner: DirectCholesky,
    /// Verification policy of the assembled solver's full-system solves
    /// (interior blocks verify through their own ladder when contained).
    pub verify: VerifyPolicy,
    /// Memo of per-shard (and interface) factors, keyed by each block's own
    /// matrix fingerprint — shared across clones of this backend.
    cache: Arc<FactorCache>,
    /// The most recent preparation, retained (shared across clones) as the
    /// base of the incremental route: a later `prepare` over an operator
    /// with the *same pattern* reuses every clean shard's factor and
    /// stored clique and re-factors only what changed. Holding it keeps
    /// one full prepared state alive beyond its `PreparedSolver` — the
    /// memory price of O(changed shards) re-preparation in placement and
    /// optimization loops.
    prev: Arc<Mutex<Option<PrevPrepared>>>,
    /// Whether `prepare` may take the geometric planner route when a
    /// [`PartitionHint`] has been supplied (`true` by default);
    /// [`Sharded::without_hint`] turns it off for planner A/B comparisons.
    use_hint: bool,
    /// The caller-supplied geometry hint for the *next* preparation, shared
    /// across clones (interior mutability because
    /// [`SolverBackend::set_partition_hint`] takes `&self`, like the other
    /// backend hooks).
    hint: Arc<Mutex<Option<Arc<PartitionHint>>>>,
}

/// The retained base of the incremental route: the previous operator and
/// its prepared Schur state, tagged with the configuration it was prepared
/// under (a config change must force the from-scratch route).
#[derive(Debug, Clone)]
struct PrevPrepared {
    matrix: Arc<CsrMatrix>,
    schur: Arc<SchurSolver>,
    shards_requested: usize,
    inner_fingerprint: u64,
    /// The hint the preparation was planned under — compared by *content*
    /// (not fingerprint) before the incremental route trusts the retained
    /// plan, mirroring the exact-compare collision guard of the
    /// [`FactorCache`].
    hint: Option<Arc<PartitionHint>>,
}

/// Whether the retained preparation's hint and the currently-set hint
/// describe the same geometry (pointer fast path, content compare after).
fn hint_matches(prev: &Option<Arc<PartitionHint>>, now: &Option<Arc<PartitionHint>>) -> bool {
    match (prev, now) {
        (None, None) => true,
        (Some(p), Some(n)) => Arc::ptr_eq(p, n) || p == n,
        _ => false,
    }
}

impl Sharded {
    /// A sharded backend over `shards` interior blocks with the default
    /// [`DirectCholesky`] inner backend.
    pub fn new(shards: usize) -> Self {
        Self::with_inner(shards, DirectCholesky::default())
    }

    /// A sharded backend with an explicit inner backend configuration.
    pub fn with_inner(shards: usize, inner: DirectCholesky) -> Self {
        Self {
            shards,
            inner,
            verify: VerifyPolicy::Off,
            // Room for every shard factor plus the interface factor (and a
            // little slack), so one prepare never evicts its own blocks.
            cache: Arc::new(FactorCache::with_capacity(2 * shards.max(1) + 2)),
            prev: Arc::new(Mutex::new(None)),
            use_hint: true,
            hint: Arc::new(Mutex::new(None)),
        }
    }

    /// Disables the geometric (hint-driven) planner route: `prepare`
    /// always partitions from the sparsity graph, ignoring any supplied
    /// [`PartitionHint`]. This is the planner A/B lever — the
    /// `ablation_shard_balance` bench drives both planners through the
    /// otherwise-identical pipeline with it.
    pub fn without_hint(mut self) -> Self {
        self.use_hint = false;
        self
    }

    /// The hint the next preparation will plan under (`None` when unset or
    /// when the geometric route is disabled).
    fn effective_hint(&self) -> Option<Arc<PartitionHint>> {
        if !self.use_hint {
            return None;
        }
        self.hint
            .lock()
            .expect("sharded hint state poisoned")
            .clone()
    }

    /// The internal per-shard factor cache (hit/miss counters included).
    pub fn shard_cache(&self) -> &FactorCache {
        &self.cache
    }
}

impl SolverBackend for Sharded {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError> {
        let t0 = Instant::now();
        // Scan the whole operator before any block extraction, so a
        // NonFinite error carries the *global* nnz index rather than a
        // block-local one.
        crate::backend::check_finite_matrix(&a)?;
        // Take the incremental route when the retained previous
        // preparation matches this one's configuration *and* pattern: the
        // plan is a pure function of (pattern, shard count, hint), so it —
        // and with it every elimination order — carries over unchanged,
        // which is what makes per-shard reuse bitwise safe. Any mismatch
        // (different config, different pattern, different hint, first
        // call) falls through to the from-scratch route.
        let hint = self.effective_hint();
        let prev = self
            .prev
            .lock()
            .expect("sharded prev state poisoned")
            .clone();
        let schur = match prev {
            Some(p)
                if p.shards_requested == self.shards
                    && p.inner_fingerprint == self.inner.config_fingerprint()
                    && hint_matches(&p.hint, &hint)
                    && p.matrix.same_pattern(&a) =>
            {
                SchurSolver::assemble_incremental(&p.schur, &a, &self.inner, &self.cache)?
            }
            _ => {
                let plan = ShardPlan::build_hinted(&a, self.shards, hint.as_deref());
                SchurSolver::assemble(&a, plan, &self.inner, &self.cache)?
            }
        };
        let schur = Arc::new(schur);
        *self.prev.lock().expect("sharded prev state poisoned") = Some(PrevPrepared {
            matrix: Arc::clone(&a),
            schur: Arc::clone(&schur),
            shards_requested: self.shards,
            inner_fingerprint: self.inner.config_fingerprint(),
            hint,
        });
        Ok(PreparedSolver::from_sharded(
            a,
            schur,
            t0.elapsed(),
            self.verify,
        ))
    }

    fn config_fingerprint(&self) -> u64 {
        // The shard count and the partition hint change the elimination
        // order and therefore the bits of the result, so both must split
        // cache entries; the internal cache identity must not (clones
        // share semantics).
        let hint = self.effective_hint().map_or(0, |h| h.fingerprint());
        0x50 ^ (self.shards as u64).rotate_left(32)
            ^ self.inner.config_fingerprint().rotate_left(4)
            ^ self.verify.fingerprint().rotate_left(44)
            ^ hint.rotate_left(20)
    }

    fn set_partition_hint(&self, hint: Option<Arc<PartitionHint>>) {
        *self.hint.lock().expect("sharded hint state poisoned") = hint;
    }

    fn accepts_cached(&self, prepared: &PreparedSolver, a: &CsrMatrix) -> bool {
        // Different requested shard counts (or hints) key different cache
        // entries, but they can degenerate to the *same* canonical plan —
        // operators too small or too dense to separate, or a hint that
        // merely re-derives the graph partition — in which case the
        // prepared solvers are interchangeable bit for bit. Trust an exact
        // plan comparison (plans are canonical), mirroring the exact
        // matrix comparison that guards fingerprint hits.
        let Some(schur) = prepared.schur() else {
            return false;
        };
        prepared.verify_policy() == self.verify
            && schur.inner_fingerprint() == self.inner.config_fingerprint()
            && *schur.plan()
                == ShardPlan::build_hinted(a, self.shards, self.effective_hint().as_deref())
    }
}

/// One interior shard: its prepared factor, both coupling blocks, and the
/// condensed Schur contribution kept for incremental re-assembly.
#[derive(Debug)]
struct ShardBlock {
    /// Prepared factor of the interior block `A_kk`.
    solver: Arc<PreparedSolver>,
    /// Interior × interface coupling `A_ks` (columns in interface-local
    /// indexing).
    a_ks: CsrMatrix,
    /// Interface × interior coupling `A_sk`.
    a_sk: CsrMatrix,
    /// Interface-local indices of the interface DoFs this shard couples
    /// (the non-empty rows of `A_sk`), `Arc`-shared with reusing
    /// preparations.
    cols: Arc<[usize]>,
    /// Stored dense clique `A_sk A_kk⁻¹ A_ks` over `cols` (row-major,
    /// `cols.len()²` entries): the shard's Schur contribution, kept so an
    /// incremental re-preparation can re-accumulate `S` in shard order
    /// without re-condensing clean shards.
    clique: Arc<[f64]>,
    /// Content fingerprint over `(A_kk, A_ks, A_sk)` — the fast reject of
    /// the per-block dirty detection (equal fingerprints are confirmed by
    /// exact comparison before anything is reused).
    fingerprint: u64,
    /// Whether this interior's direct factorization broke down and the
    /// block was contained by falling down the resilience ladder
    /// (regularized re-factor or GMRES) instead of aborting the prepare.
    degraded: bool,
}

/// The per-block content fingerprint dirty detection compares: all three
/// blocks a shard is extracted into, mixed with distinct rotations so
/// moving a value between blocks cannot cancel out.
fn block_fingerprint(interior: &CsrMatrix, a_ks: &CsrMatrix, a_sk: &CsrMatrix) -> u64 {
    matrix_fingerprint(interior)
        ^ matrix_fingerprint(a_ks).rotate_left(16)
        ^ matrix_fingerprint(a_sk).rotate_left(32)
}

/// The prepared sharded solver: per-shard factors, couplings, and the
/// factored interface Schur complement. Immutable after assembly, so it is
/// `Send + Sync` like every other prepared engine.
#[derive(Debug)]
pub(crate) struct SchurSolver {
    plan: ShardPlan,
    blocks: Vec<ShardBlock>,
    /// Prepared factor of the Schur complement; `None` when the interface
    /// is empty (single shard, or fully disconnected shards).
    interface_solver: Option<Arc<PreparedSolver>>,
    /// Configuration fingerprint of the inner backend the blocks were
    /// prepared under — consulted by `Sharded::accepts_cached` before
    /// trusting a plan comparison across cache entries.
    inner_fingerprint: u64,
    /// Shards whose factor + clique this preparation computed (all of them
    /// on the from-scratch route, the dirty set on the incremental route).
    shards_refactored: usize,
    /// Shards reused intact from the previous preparation.
    shards_reused: usize,
    /// Whether the interface system itself needed the ladder.
    interface_degraded: bool,
    /// Precomputed interface scatter maps (`None` for an empty interface),
    /// carried forward by the incremental route so interface-only
    /// perturbations skip the pattern-union rebuild.
    iface_assembly: Option<Arc<InterfaceAssembly>>,
}

/// Per-shard extraction of one operator under a plan: the interface
/// scatter map, every interior block and both coupling blocks. One helper
/// shared by the from-scratch and incremental routes, so both see
/// identical blocks by construction.
struct Extraction {
    iface_map: Vec<Option<usize>>,
    interiors: Vec<Arc<CsrMatrix>>,
    couplings: Vec<(CsrMatrix, CsrMatrix)>,
}

/// Serial extraction pass over all shards (each `extract` is internally
/// pool-parallel and bitwise deterministic).
fn extract_blocks(a: &CsrMatrix, plan: &ShardPlan) -> Extraction {
    let n = a.nrows();
    let interface = plan.interface();
    let n_s = interface.len();
    let num_shards = plan.num_shards();

    let mut iface_map: Vec<Option<usize>> = vec![None; n];
    for (p, &row) in interface.iter().enumerate() {
        iface_map[row] = Some(p);
    }

    let mut interiors: Vec<Arc<CsrMatrix>> = Vec::with_capacity(num_shards);
    let mut couplings: Vec<(CsrMatrix, CsrMatrix)> = Vec::with_capacity(num_shards);
    let mut own_map: Vec<Option<usize>> = vec![None; n];
    for k in 0..num_shards {
        let rows = plan.shard_rows(k);
        for (local, &row) in rows.iter().enumerate() {
            own_map[row] = Some(local);
        }
        interiors.push(Arc::new(a.extract(rows, &own_map, rows.len())));
        couplings.push((
            a.extract(rows, &iface_map, n_s),
            a.extract(interface, &own_map, rows.len()),
        ));
        for &row in rows {
            own_map[row] = None;
        }
    }
    Extraction {
        iface_map,
        interiors,
        couplings,
    }
}

/// Precomputed scatter maps of the serial interface accumulation
/// `S = A_ss − Σ_k clique_k`: the CSR pattern of `S` (the union of the
/// `A_ss` pattern and every shard clique's pattern) plus the destination
/// slot of every source entry. Assembly is then one flat scatter-add in
/// the canonical serial order — `A_ss` entries first, then each shard's
/// clique in shard order, row-major within a clique — with no per-entry
/// column search and no coordinate sort, which makes the interface
/// rebuild of an incremental re-preparation (where `S` is *always*
/// rebuilt) measurably cheaper.
///
/// The maps are pure *pattern* data: they depend only on the operator's
/// sparsity and the plan (each shard's coupled-column set is the non-empty
/// rows of its `A_sk`). The incremental route's precondition is exactly an
/// unchanged pattern, so it reuses the previous preparation's maps as-is.
#[derive(Debug)]
struct InterfaceAssembly {
    /// CSR row pointers of `S`.
    row_ptr: Vec<usize>,
    /// CSR column indices of `S` (sorted within each row).
    col_idx: Vec<usize>,
    /// Destination slot of each `A_ss` entry, in `A_ss` CSR entry order.
    ass_slots: Vec<usize>,
    /// Destination slots of each shard's dense clique, row-major over its
    /// coupled columns (`cols.len()²` slots per shard, shard order).
    clique_slots: Vec<Vec<usize>>,
}

impl InterfaceAssembly {
    /// Builds the union pattern and the slot maps for `A_ss` and every
    /// shard clique. Cost is one sort of the union pattern plus a binary
    /// search per source entry — paid once per *pattern*, not per
    /// assembly.
    fn build(a_ss: &CsrMatrix, blocks: &[ShardBlock]) -> Self {
        let n_s = a_ss.nrows();
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); n_s];
        for i in 0..n_s {
            per_row[i].extend_from_slice(a_ss.row(i).0);
        }
        for b in blocks {
            for &i in b.cols.iter() {
                per_row[i].extend_from_slice(&b.cols);
            }
        }
        let mut row_ptr = Vec::with_capacity(n_s + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        for cols in &mut per_row {
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }
        let slot = |i: usize, c: usize| -> usize {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            row_ptr[i]
                + row
                    .binary_search(&c)
                    .expect("union pattern contains every source entry")
        };
        let mut ass_slots = Vec::with_capacity(a_ss.nnz());
        for i in 0..n_s {
            for &c in a_ss.row(i).0 {
                ass_slots.push(slot(i, c));
            }
        }
        let clique_slots = blocks
            .iter()
            .map(|b| {
                let mut slots = Vec::with_capacity(b.cols.len() * b.cols.len());
                for &i in b.cols.iter() {
                    for &j in b.cols.iter() {
                        slots.push(slot(i, j));
                    }
                }
                slots
            })
            .collect();
        Self {
            row_ptr,
            col_idx,
            ass_slots,
            clique_slots,
        }
    }

    /// Scatters `A_ss` and subtracts every clique into a fresh values
    /// array, in the canonical serial order.
    fn assemble(&self, a_ss: &CsrMatrix, blocks: &[ShardBlock]) -> CsrMatrix {
        let n_s = a_ss.nrows();
        let mut values = vec![0.0f64; self.col_idx.len()];
        let mut next = 0usize;
        for i in 0..n_s {
            for &v in a_ss.row(i).1 {
                values[self.ass_slots[next]] += v;
                next += 1;
            }
        }
        for (b, slots) in blocks.iter().zip(&self.clique_slots) {
            for (&s, &v) in slots.iter().zip(b.clique.iter()) {
                values[s] -= v;
            }
        }
        CsrMatrix::from_raw_trusted(n_s, n_s, self.row_ptr.clone(), self.col_idx.clone(), values)
    }
}

impl MemoryFootprint for InterfaceAssembly {
    fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes()
            + self.col_idx.heap_bytes()
            + self.ass_slots.heap_bytes()
            + self
                .clique_slots
                .iter()
                .map(MemoryFootprint::heap_bytes)
                .sum::<usize>()
    }
}

/// Builds and factors the interface system `S = A_ss − Σ_k clique_k` from
/// the fresh `A_ss` and every block's stored clique, accumulated serially
/// in shard order through [`InterfaceAssembly`]'s precomputed scatter maps
/// (`A_ss` entries first, then each shard's clique — a fixed order, so `S`
/// is identical at every pool cap *and* between the from-scratch and
/// incremental routes). `reuse` is the previous preparation's maps, valid
/// exactly when the operator pattern is unchanged — the incremental
/// route's precondition.
fn condense_interface(
    a: &CsrMatrix,
    plan: &ShardPlan,
    iface_map: &[Option<usize>],
    blocks: &[ShardBlock],
    inner: &DirectCholesky,
    cache: &FactorCache,
    reuse: Option<Arc<InterfaceAssembly>>,
) -> Result<CondensedInterface, LinalgError> {
    let interface = plan.interface();
    let n_s = interface.len();
    if n_s == 0 {
        return Ok((None, false, None));
    }
    let a_ss = a.extract(interface, iface_map, n_s);
    let assembly = reuse.unwrap_or_else(|| Arc::new(InterfaceAssembly::build(&a_ss, blocks)));
    let s = Arc::new(assembly.assemble(&a_ss, blocks));
    let (solver, degraded) = prepare_contained(inner, cache, &s)?;
    Ok((Some(solver), degraded, Some(assembly)))
}

/// `(interface factor, ladder-contained?, scatter maps)` of
/// [`condense_interface`].
type CondensedInterface = (
    Option<Arc<PreparedSolver>>,
    bool,
    Option<Arc<InterfaceAssembly>>,
);

/// `(solver, interface-local coupled columns, dense clique contribution,
/// ladder-contained?)` of one shard's concurrent preparation task.
type ShardPrep = (Arc<PreparedSolver>, Vec<usize>, Vec<f64>, bool);

/// `(solutions, summed iterations, worst residual, peak worker slots)` of
/// one sharded batch solve.
pub(crate) type ShardedBatch = (Vec<Vec<f64>>, Option<usize>, Option<f64>, usize);

impl SchurSolver {
    /// Extracts, factors and condenses every block of `plan` over `a`.
    fn assemble(
        a: &Arc<CsrMatrix>,
        plan: ShardPlan,
        inner: &DirectCholesky,
        cache: &FactorCache,
    ) -> Result<Self, LinalgError> {
        let n_s = plan.interface().len();
        let num_shards = plan.num_shards();
        let Extraction {
            iface_map,
            interiors,
            couplings,
        } = extract_blocks(a, &plan);

        // Factor every interior and condense its Schur contribution, one
        // task per shard on the shared pool. Like the monolithic parallel
        // factorization, preparation runs at the pool cap (`prepare` has no
        // threads override). Each task is internally deterministic (the
        // factor is bitwise cap-invariant, the panel solves are too), so
        // only the serial accumulation order below matters for
        // reproducibility.
        let (prepped, _) = per_shard(WorkPool::current().cap(), num_shards, |k| {
            shard_prep_task(inner, cache, &interiors[k], &couplings[k], n_s)
        })?;
        let mut blocks: Vec<ShardBlock> = Vec::with_capacity(num_shards);
        for (k, ((solver, cols, clique, degraded), (a_ks, a_sk))) in
            prepped.into_iter().zip(couplings).enumerate()
        {
            let fingerprint = block_fingerprint(&interiors[k], &a_ks, &a_sk);
            blocks.push(ShardBlock {
                solver,
                a_ks,
                a_sk,
                cols: cols.into(),
                clique: clique.into(),
                fingerprint,
                degraded,
            });
        }

        let (interface_solver, interface_degraded, iface_assembly) =
            condense_interface(a, &plan, &iface_map, &blocks, inner, cache, None)?;

        Ok(Self {
            plan,
            blocks,
            interface_solver,
            inner_fingerprint: inner.config_fingerprint(),
            shards_refactored: num_shards,
            shards_reused: 0,
            interface_degraded,
            iface_assembly,
        })
    }

    /// Re-assembles over a value-perturbed operator with the same pattern
    /// as `prev`'s: the plan carries over (it is a pure function of
    /// pattern and shard count), every *clean* shard reuses its factor and
    /// stored clique, only the *dirty* shards are re-factored and
    /// re-condensed, and the interface system is always rebuilt from the
    /// fresh `A_ss` plus all cliques and refactored.
    ///
    /// The result is bitwise identical to a from-scratch [`assemble`]
    /// (`Self::assemble`) over the same operator: the plan, elimination
    /// orders, kernels and the serial shard-order accumulation of `S` are
    /// all unchanged, and a clean shard's stored factor and clique were
    /// computed from bit-identical inputs by the same deterministic code a
    /// fresh prepare would run.
    fn assemble_incremental(
        prev: &SchurSolver,
        a: &Arc<CsrMatrix>,
        inner: &DirectCholesky,
        cache: &FactorCache,
    ) -> Result<Self, LinalgError> {
        let plan = prev.plan.clone();
        let n_s = plan.interface().len();
        let num_shards = plan.num_shards();
        let Extraction {
            iface_map,
            interiors,
            couplings,
        } = extract_blocks(a, &plan);

        // Dirty detection, per block: a fingerprint mismatch proves a
        // change; equal fingerprints are confirmed by exact comparison
        // before reuse (the same collision guard the FactorCache applies
        // to its hits).
        let fingerprints: Vec<u64> = (0..num_shards)
            .map(|k| block_fingerprint(&interiors[k], &couplings[k].0, &couplings[k].1))
            .collect();
        let dirty: Vec<usize> = (0..num_shards)
            .filter(|&k| {
                let p = &prev.blocks[k];
                fingerprints[k] != p.fingerprint
                    || interiors[k].as_ref() != p.solver.matrix().as_ref()
                    || couplings[k].0 != p.a_ks
                    || couplings[k].1 != p.a_sk
            })
            .collect();

        // Re-factor + re-condense only the dirty shards, fanned out like
        // the full route (run *before* any invalidation: a shard dirtied
        // only through its couplings still hits the cache on its unchanged
        // interior).
        let (reprepped, _) = per_shard(WorkPool::current().cap(), dirty.len(), |i| {
            shard_prep_task(
                inner,
                cache,
                &interiors[dirty[i]],
                &couplings[dirty[i]],
                n_s,
            )
        })?;

        let mut blocks: Vec<ShardBlock> = Vec::with_capacity(num_shards);
        let mut repreps = reprepped.into_iter();
        let mut next_dirty = dirty.iter().copied().peekable();
        for (k, (a_ks, a_sk)) in couplings.into_iter().enumerate() {
            if next_dirty.peek() == Some(&k) {
                next_dirty.next();
                let (solver, cols, clique, degraded) =
                    repreps.next().expect("one preparation per dirty shard");
                blocks.push(ShardBlock {
                    solver,
                    a_ks,
                    a_sk,
                    cols: cols.into(),
                    clique: clique.into(),
                    fingerprint: fingerprints[k],
                    degraded,
                });
            } else {
                let p = &prev.blocks[k];
                blocks.push(ShardBlock {
                    solver: Arc::clone(&p.solver),
                    a_ks,
                    a_sk,
                    cols: Arc::clone(&p.cols),
                    clique: Arc::clone(&p.clique),
                    fingerprint: p.fingerprint,
                    degraded: p.degraded,
                });
            }
        }

        // The scatter maps are pure pattern data and the pattern is
        // unchanged (this route's precondition), so the previous maps
        // apply verbatim.
        let (interface_solver, interface_degraded, iface_assembly) = condense_interface(
            a,
            &plan,
            &iface_map,
            &blocks,
            inner,
            cache,
            prev.iface_assembly.clone(),
        )?;

        // Evict the superseded entries — the old factors of interiors that
        // actually changed, and the old interface system — so stale blocks
        // never crowd live ones out of the shard cache.
        for (block, prev_block) in blocks.iter().zip(&prev.blocks) {
            let old = prev_block.solver.matrix();
            if block.solver.matrix().as_ref() != old.as_ref() {
                cache.invalidate(old);
            }
        }
        if let (Some(old), Some(new)) = (&prev.interface_solver, &interface_solver) {
            if old.matrix().as_ref() != new.matrix().as_ref() {
                cache.invalidate(old.matrix());
            }
        }

        Ok(Self {
            plan,
            blocks,
            interface_solver,
            inner_fingerprint: prev.inner_fingerprint,
            shards_refactored: dirty.len(),
            shards_reused: num_shards - dirty.len(),
            interface_degraded,
            iface_assembly,
        })
    }

    /// Dimension of the full operator.
    fn dim(&self) -> usize {
        self.plan.num_rows()
    }

    /// Interior shard count of the prepared plan.
    pub(crate) fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Interface DoFs coupling the shards.
    pub(crate) fn interface_dofs(&self) -> usize {
        self.plan.interface().len()
    }

    /// The canonical partition this solver was prepared under.
    pub(crate) fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Quality accounting of the prepared plan (balance, interface share,
    /// planner route) — surfaced on `SolveReport::plan_stats`.
    pub(crate) fn plan_stats(&self) -> ShardPlanStats {
        self.plan.stats()
    }

    /// Inner-backend configuration fingerprint the blocks were prepared
    /// under.
    pub(crate) fn inner_fingerprint(&self) -> u64 {
        self.inner_fingerprint
    }

    /// Shards whose factor + clique this preparation computed.
    pub(crate) fn shards_refactored(&self) -> usize {
        self.shards_refactored
    }

    /// Shards reused intact from the previous preparation.
    pub(crate) fn shards_reused(&self) -> usize {
        self.shards_reused
    }

    /// Blocks that needed the resilience ladder: interiors whose direct
    /// factorization broke down and were contained, plus one more if the
    /// interface system itself degraded.
    pub(crate) fn shards_degraded(&self) -> usize {
        self.blocks.iter().filter(|b| b.degraded).count() + usize::from(self.interface_degraded)
    }

    /// The ladder trail of the first contained block (empty when every
    /// block kept its clean direct factor) — surfaced as the preparation
    /// trail of the wrapping [`PreparedSolver`].
    pub(crate) fn degradation_trail(&self) -> DegradationTrail {
        self.blocks
            .iter()
            .filter(|b| b.degraded)
            .map(|b| *b.solver.prep_degradation())
            .chain(
                self.interface_degraded
                    .then(|| {
                        self.interface_solver
                            .as_ref()
                            .map(|s| *s.prep_degradation())
                    })
                    .flatten(),
            )
            .next()
            .unwrap_or_default()
    }

    /// Largest per-shard solver footprint — the peak factor memory a
    /// distributed or out-of-core deployment would need to co-locate.
    pub(crate) fn shard_factor_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.solver.solver_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Summed stored factor nonzeros over shards and interface (`None` if
    /// any block was prepared with an iterative inner engine).
    pub(crate) fn factor_nnz(&self) -> Option<usize> {
        let mut total = 0usize;
        for block in &self.blocks {
            total += block.solver.factor_nnz()?;
        }
        if let Some(s) = &self.interface_solver {
            total += s.factor_nnz()?;
        }
        Some(total)
    }

    /// Resolved dense-microkernel name of the interior block factors
    /// (first block that reports one; they all share the inner backend
    /// configuration, so they resolve identically).
    pub(crate) fn kernel_name(&self) -> Option<&'static str> {
        self.blocks
            .iter()
            .map(|b| b.solver.kernel_name())
            .chain(self.interface_solver.iter().map(|s| s.kernel_name()))
            .flatten()
            .next()
    }

    /// Peak worker slots any block's numeric factorization used.
    pub(crate) fn factor_workers(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.solver.factor_workers())
            .chain(self.interface_solver.iter().map(|s| s.factor_workers()))
            .max()
            .unwrap_or(1)
    }

    /// Bytes of the shared prepared state: every shard factor, the
    /// interface factor, the coupling blocks, the stored cliques kept for
    /// incremental re-assembly, and the interface scatter maps.
    pub(crate) fn shared_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.solver.solver_bytes()
                    + b.a_ks.heap_bytes()
                    + b.a_sk.heap_bytes()
                    + b.cols.len() * std::mem::size_of::<usize>()
                    + b.clique.len() * std::mem::size_of::<f64>()
            })
            .sum::<usize>()
            + self
                .interface_solver
                .as_ref()
                .map_or(0, |s| s.solver_bytes())
            + self.iface_assembly.as_ref().map_or(0, |m| m.heap_bytes())
            + self.plan.heap_bytes()
    }

    /// Per-right-hand-side workspace estimate of a batched solve: the
    /// gathered interior right-hand sides and pre-solve results (both held
    /// across the interface stage) plus the interface staging vectors.
    /// Unlike the monolithic engines, this scales with the *batch size*,
    /// not the worker count — the report accounts for that.
    pub(crate) fn workspace_bytes(&self) -> usize {
        (2 * self.dim() + 2 * self.interface_dofs()) * std::mem::size_of::<f64>()
    }

    /// Solves the full system for a batch of right-hand sides:
    /// interior pre-solves, interface reduction + solve, interior
    /// back-substitution — each stage batched panel sweeps, the per-shard
    /// stages fanned out over the pool (shard outputs are disjoint, and
    /// the report merge below runs serially in shard order, so results
    /// stay bitwise cap-invariant).
    ///
    /// Returns `(solutions, iterations, residual, workers)` with the usual
    /// batch-aggregate semantics (summed iterations, worst residual, peak
    /// worker slots over the stages).
    pub(crate) fn solve_many(
        &self,
        rhs: &[Vec<f64>],
        threads: usize,
    ) -> Result<ShardedBatch, LinalgError> {
        let interface = self.plan.interface();
        let n_s = interface.len();
        let mut xs: Vec<Vec<f64>> = rhs.iter().map(|b| vec![0.0; b.len()]).collect();
        let mut iterations: Option<usize> = None;
        let mut residual: Option<f64> = None;
        let mut workers = 1usize;
        // Fan-out slots of the per-shard stages, merged into `workers` at
        // the end (kept separate: `merge` holds the mutable borrow).
        let mut fanout = 1usize;
        let mut merge = |report: &crate::SolveReport| {
            if let Some(it) = report.iterations {
                iterations = Some(iterations.unwrap_or(0) + it);
            }
            if let Some(res) = report.residual {
                residual = Some(residual.map_or(res, |worst: f64| worst.max(res)));
            }
            workers = workers.max(report.workers);
        };

        // Stage 1: interior pre-solves z_k = A_kk⁻¹ b_k, one task per
        // shard (the gathered b_k is kept for reuse as the
        // back-substitution right-hand side). `threads` caps both the
        // shard fan-out and each inner panel sweep.
        let (stage1, used1) = per_shard(threads, self.blocks.len(), |k| {
            let rows = self.plan.shard_rows(k);
            let b_k: Vec<Vec<f64>> = rhs
                .iter()
                .map(|b| rows.iter().map(|&r| b[r]).collect())
                .collect();
            let batch = self.blocks[k].solver.solve_many(&b_k, threads)?;
            Ok((b_k, batch))
        })?;
        fanout = fanout.max(used1);
        let mut gathered: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.blocks.len());
        let mut pre: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.blocks.len());
        for (b_k, batch) in stage1 {
            merge(&batch.report);
            gathered.push(b_k);
            pre.push(batch.xs);
        }

        let Some(s_solver) = &self.interface_solver else {
            // Empty interface: the interiors are the whole answer.
            for (k, z_k) in pre.iter().enumerate() {
                let rows = self.plan.shard_rows(k);
                for (x, z) in xs.iter_mut().zip(z_k) {
                    for (&r, &v) in rows.iter().zip(z) {
                        x[r] = v;
                    }
                }
            }
            return Ok((xs, iterations, residual, workers.max(fanout)));
        };

        // Stage 2: interface reduction r_s = b_s − Σ_k A_sk z_k, shards
        // accumulated in order.
        let mut r_s: Vec<Vec<f64>> = rhs
            .iter()
            .map(|b| interface.iter().map(|&r| b[r]).collect())
            .collect();
        let mut tmp_s = vec![0.0; n_s];
        for (block, z_k) in self.blocks.iter().zip(&pre) {
            for (r, z) in r_s.iter_mut().zip(z_k) {
                block.a_sk.spmv_into(z, &mut tmp_s);
                for (ri, t) in r.iter_mut().zip(&tmp_s) {
                    *ri -= t;
                }
            }
        }
        drop(pre);

        // Stage 3: one batched interface solve.
        let s_batch = s_solver.solve_many(&r_s, threads)?;
        merge(&s_batch.report);
        for (x, x_s) in xs.iter_mut().zip(&s_batch.xs) {
            for (&r, &v) in interface.iter().zip(x_s) {
                x[r] = v;
            }
        }

        // Stage 4: interior back-substitution x_k = A_kk⁻¹ (b_k − A_ks x_s),
        // again one task per shard.
        let gathered: Vec<Mutex<Vec<Vec<f64>>>> = gathered.into_iter().map(Mutex::new).collect();
        let (stage4, used4) = per_shard(threads, self.blocks.len(), |k| {
            let block = &self.blocks[k];
            let mut b_k = std::mem::take(&mut *gathered[k].lock().expect("gathered slot poisoned"));
            let mut tmp_k = vec![0.0; self.plan.shard_rows(k).len()];
            for (b, x_s) in b_k.iter_mut().zip(&s_batch.xs) {
                block.a_ks.spmv_into(x_s, &mut tmp_k);
                for (bi, t) in b.iter_mut().zip(&tmp_k) {
                    *bi -= t;
                }
            }
            block.solver.solve_many(&b_k, threads)
        })?;
        fanout = fanout.max(used4);
        for (k, batch) in stage4.into_iter().enumerate() {
            let rows = self.plan.shard_rows(k);
            merge(&batch.report);
            for (x, z) in xs.iter_mut().zip(&batch.xs) {
                for (&r, &v) in rows.iter().zip(z) {
                    x[r] = v;
                }
            }
        }

        Ok((xs, iterations, residual, workers.max(fanout)))
    }
}

/// Runs `f(k)` once per shard index on the shared pool with up to
/// `threads` worker slots (the usual cap override — clamped to the pool
/// cap; within one call tree the pool cap stays the hard bound when tasks
/// nest further scopes). Returns the results in shard order plus the
/// number of slots that ran — the fan-out/fan-in shape every per-shard
/// stage (preparation, pre-solve, back-substitution) uses. Each task must
/// be internally deterministic; fan-in order is fixed, so the first error
/// (in shard order) wins regardless of scheduling.
fn per_shard<T: Send>(
    threads: usize,
    count: usize,
    f: impl Fn(usize) -> Result<T, LinalgError> + Sync,
) -> Result<(Vec<T>, usize), LinalgError> {
    let pool = WorkPool::current();
    let slots: Vec<Mutex<Option<Result<T, LinalgError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let used = pool.scope_chunks(threads.max(1), count, |k| {
        *slots[k].lock().expect("shard slot poisoned") = Some(f(k));
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("shard slot poisoned")
                .expect("every shard visited")
        })
        .collect::<Result<Vec<T>, LinalgError>>()?;
    Ok((results, used.max(1)))
}

/// One shard's preparation: factor the interior through the cache, solve
/// the coupling columns in one panel sweep, and condense the dense clique
/// `A_sk A_kk⁻¹ A_ks` over the interface DoFs this shard touches.
fn shard_prep_task(
    inner: &DirectCholesky,
    cache: &FactorCache,
    interior: &Arc<CsrMatrix>,
    coupling: &(CsrMatrix, CsrMatrix),
    n_s: usize,
) -> Result<ShardPrep, LinalgError> {
    let (a_ks, a_sk) = coupling;
    let n_k = interior.nrows();
    let (solver, degraded) = prepare_contained(inner, cache, interior)?;

    // Interface DoFs this shard couples: exactly the non-empty rows of
    // `A_sk` (equivalently, by symmetry, the non-empty columns of `A_ks`).
    let cols: Vec<usize> = (0..n_s).filter(|&i| !a_sk.row(i).0.is_empty()).collect();
    if cols.is_empty() {
        return Ok((solver, cols, Vec::new(), degraded));
    }
    let mut pos = vec![usize::MAX; n_s];
    for (q, &j) in cols.iter().enumerate() {
        pos[j] = q;
    }
    // Densify the coupled columns of A_ks as a batch of right-hand sides.
    let mut cols_rhs: Vec<Vec<f64>> = vec![vec![0.0; n_k]; cols.len()];
    for r in 0..n_k {
        let (cidx, vals) = a_ks.row(r);
        for (&c, &v) in cidx.iter().zip(vals) {
            debug_assert_ne!(pos[c], usize::MAX, "A_ks column outside coupled set");
            cols_rhs[pos[c]][r] = v;
        }
    }
    // E = A_kk⁻¹ A_ks[:, cols] in one batched panel sweep.
    let e = solver.solve_many(&cols_rhs, WorkPool::current().cap())?;
    // Dense clique C[p][q] = (A_sk E)[cols[p], q], each entry a sparse·dense
    // dot: gather the coupled entries of e_q into a contiguous scratch and
    // hand the contraction to the configured dense microkernel — the same
    // kernel that factored the interior, so the condensation inherits its
    // rounding (and the fingerprint split already accounts for it).
    let kern = inner.supernodal.kernel.kernel();
    let w = cols.len();
    let mut clique = vec![0.0f64; w * w];
    let mut eg: Vec<f64> = Vec::new();
    for (p, &i) in cols.iter().enumerate() {
        let (cidx, vals) = a_sk.row(i);
        eg.resize(cidx.len(), 0.0);
        for (q, e_q) in e.xs.iter().enumerate() {
            for (j, &c) in cidx.iter().enumerate() {
                eg[j] = e_q[c];
            }
            clique[p * w + q] = kern.dot(vals, &eg);
        }
    }
    Ok((solver, cols, clique, degraded))
}

/// Prepares one block through the cache, containing a factorization
/// breakdown: a [`LinalgError::NotPositiveDefinite`] interior (or interface
/// system) falls down the resilience ladder — regularized re-factor, then
/// GMRES — instead of aborting the whole sharded prepare, so clean blocks
/// keep their direct factors. Any other error (a poisoned block, a
/// dimension bug) still aborts: the ladder cannot recover those.
fn prepare_contained(
    inner: &DirectCholesky,
    cache: &FactorCache,
    block: &Arc<CsrMatrix>,
) -> Result<(Arc<PreparedSolver>, bool), LinalgError> {
    match cache.prepare(inner, block) {
        Ok(solver) => Ok((solver, false)),
        Err(LinalgError::NotPositiveDefinite { .. }) => {
            let ladder = Resilient {
                inner: *inner,
                ..Resilient::default()
            };
            Ok((cache.prepare(&ladder, block)?, true))
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_operators::laplacian_2d;
    use crate::CooMatrix;

    fn loads(n: usize, count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|k| {
                (0..n)
                    .map(|i| ((i * (k + 2) + 5 * k) % 11) as f64 - 5.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sharded_matches_monolithic_direct() {
        let a = Arc::new(laplacian_2d(28, 22));
        let rhs = loads(a.nrows(), 5);
        let mono = DirectCholesky::default()
            .prepare(Arc::clone(&a))
            .unwrap()
            .solve_many(&rhs, 4)
            .unwrap();
        for shards in [2usize, 3, 4] {
            let backend = Sharded::new(shards);
            let prepared = backend.prepare(Arc::clone(&a)).unwrap();
            let batch = prepared.solve_many(&rhs, 4).unwrap();
            assert_eq!(batch.report.backend, "sharded");
            assert!(batch.report.shards >= 2, "plan must split for {shards}");
            assert!(batch.report.interface_dofs > 0);
            assert!(batch.report.shard_factor_bytes > 0);
            // The 1e-30 floor keeps an (unexpected) all-zero reference
            // from vacuously passing, matching the core suites' helper.
            let scale = mono
                .xs
                .iter()
                .flatten()
                .fold(0.0f64, |m, v| m.max(v.abs()))
                .max(1e-30);
            for (x, y) in mono.xs.iter().zip(&batch.xs) {
                for (p, q) in x.iter().zip(y) {
                    assert!(
                        (p - q).abs() <= 1e-10 * scale,
                        "sharded({shards}) disagrees: {p} vs {q}"
                    );
                }
            }
            // Residual sanity straight against the operator.
            for (x, b) in batch.xs.iter().zip(&rhs) {
                assert!(a.residual(x, b) < 1e-10);
            }
        }
    }

    #[test]
    fn single_shard_degenerates_to_monolithic() {
        let a = Arc::new(laplacian_2d(12, 12));
        let rhs = loads(a.nrows(), 3);
        let mono = DirectCholesky::default()
            .prepare(Arc::clone(&a))
            .unwrap()
            .solve_many(&rhs, 2)
            .unwrap();
        let prepared = Sharded::new(1).prepare(Arc::clone(&a)).unwrap();
        let batch = prepared.solve_many(&rhs, 2).unwrap();
        assert_eq!(batch.report.shards, 1);
        assert_eq!(batch.report.interface_dofs, 0);
        for (x, y) in mono.xs.iter().zip(&batch.xs) {
            assert_eq!(x, y, "one-shard solve must equal the monolithic bits");
        }
    }

    #[test]
    fn sharded_single_rhs_solve_works() {
        let a = Arc::new(laplacian_2d(20, 20));
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i * 3) % 7) as f64 - 3.0).collect();
        let prepared = Sharded::new(4).prepare(Arc::clone(&a)).unwrap();
        let sol = prepared.solve(&b).unwrap();
        assert!(a.residual(&sol.x, &b) < 1e-10);
        assert!(sol.report.shards >= 2);
    }

    #[test]
    fn shard_cache_reuses_interior_factors() {
        let a = Arc::new(laplacian_2d(26, 26));
        let backend = Sharded::new(3);
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let misses = backend.shard_cache().misses();
        assert!(misses >= 3, "each block prepared once, got {misses}");
        let second = backend.prepare(Arc::clone(&a)).unwrap();
        assert_eq!(
            backend.shard_cache().misses(),
            misses,
            "re-preparing the same operator must hit the shard cache"
        );
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 5) as f64).collect();
        assert_eq!(first.solve(&b).unwrap().x, second.solve(&b).unwrap().x);
    }

    /// Bitwise-identity oracle of the incremental tests: the perturbed
    /// operator solved through `backend` (incremental route) against a
    /// *fresh* backend's from-scratch preparation of the same operator.
    fn assert_bitwise_vs_scratch(backend: &Sharded, a: &Arc<CsrMatrix>, rhs: &[Vec<f64>]) {
        let incremental = backend.prepare(Arc::clone(a)).unwrap();
        let scratch = Sharded::new(backend.shards).prepare(Arc::clone(a)).unwrap();
        let xi = incremental.solve_many(rhs, 4).unwrap();
        let xs = scratch.solve_many(rhs, 4).unwrap();
        for (x, y) in xi.xs.iter().zip(&xs.xs) {
            assert_eq!(x, y, "incremental bits must match from-scratch bits");
        }
    }

    #[test]
    fn incremental_refactors_only_the_touched_shard() {
        let a = Arc::new(laplacian_2d(30, 24));
        let rhs = loads(a.nrows(), 4);
        let backend = Sharded::new(4);
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let k = first.schur().expect("sharded engine").num_shards();
        assert!(k >= 2, "operator must split");
        // Perturb one interior diagonal entry (stays SPD): only the owning
        // shard's block changes.
        let row = first.schur().unwrap().plan().shard_rows(0)[0];
        let mut b = (*a).clone();
        b.add_at(row, row, 1.0);
        let b = Arc::new(b);
        let second = backend.prepare(Arc::clone(&b)).unwrap();
        let schur = second.schur().unwrap();
        assert_eq!(schur.shards_refactored(), 1, "one shard touched");
        assert_eq!(schur.shards_reused(), k - 1);
        let batch = second.solve_many(&rhs, 4).unwrap();
        assert_eq!(batch.report.shards_refactored, 1);
        assert_eq!(batch.report.shards_reused, k - 1);
        assert_bitwise_vs_scratch(&backend, &b, &rhs);
    }

    #[test]
    fn interface_perturbation_reuses_every_shard_but_rebuilds_s() {
        let a = Arc::new(laplacian_2d(30, 24));
        let rhs = loads(a.nrows(), 3);
        let backend = Sharded::new(3);
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let schur = first.schur().expect("sharded engine");
        let k = schur.num_shards();
        assert!(k >= 2);
        // Perturb an interface *diagonal* entry: no interior or coupling
        // block changes, so every shard is clean — but S must still be
        // re-assembled from the fresh A_ss, never silently reused.
        let row = schur.plan().interface()[0];
        let mut b = (*a).clone();
        b.add_at(row, row, 2.0);
        let b = Arc::new(b);
        let second = backend.prepare(Arc::clone(&b)).unwrap();
        let schur2 = second.schur().unwrap();
        assert_eq!(schur2.shards_refactored(), 0);
        assert_eq!(schur2.shards_reused(), k);
        assert_bitwise_vs_scratch(&backend, &b, &rhs);
        // And the perturbation genuinely changed the answer.
        let x1 = first.solve(&rhs[0]).unwrap().x;
        let x2 = second.solve(&rhs[0]).unwrap().x;
        assert_ne!(x1, x2, "interface perturbation must reach the result");
    }

    #[test]
    fn coupling_perturbation_dirties_the_owning_shard() {
        let a = Arc::new(laplacian_2d(30, 24));
        let rhs = loads(a.nrows(), 3);
        let backend = Sharded::new(3);
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let schur = first.schur().expect("sharded engine");
        let k = schur.num_shards();
        let plan = schur.plan();
        // Find a stored interface↔interior entry: it lives in the coupling
        // blocks (A_ks/A_sk) of exactly one shard.
        let (s_row, i_col, owner) = plan
            .interface()
            .iter()
            .find_map(|&s| {
                let (cols, _) = a.row(s);
                cols.iter().find_map(|&c| plan.owner(c).map(|k| (s, c, k)))
            })
            .expect("some interface row couples an interior");
        let mut b = (*a).clone();
        // Weaken the symmetric off-diagonal pair: stays diagonally dominant.
        b.add_at(s_row, i_col, 0.5);
        b.add_at(i_col, s_row, 0.5);
        let b = Arc::new(b);
        let second = backend.prepare(Arc::clone(&b)).unwrap();
        let schur2 = second.schur().unwrap();
        assert_eq!(
            schur2.shards_refactored(),
            1,
            "only shard {owner} holds the perturbed coupling"
        );
        assert_eq!(schur2.shards_reused(), k - 1);
        assert_bitwise_vs_scratch(&backend, &b, &rhs);
    }

    #[test]
    fn global_scaling_refactors_every_shard() {
        let a = Arc::new(laplacian_2d(26, 26));
        let rhs = loads(a.nrows(), 3);
        let backend = Sharded::new(3);
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let k = first.schur().expect("sharded engine").num_shards();
        let mut b = (*a).clone();
        for v in b.values_mut() {
            *v *= 1.5;
        }
        let b = Arc::new(b);
        let second = backend.prepare(Arc::clone(&b)).unwrap();
        let schur = second.schur().unwrap();
        assert_eq!(schur.shards_refactored(), k, "every block changed");
        assert_eq!(schur.shards_reused(), 0);
        assert_bitwise_vs_scratch(&backend, &b, &rhs);
    }

    #[test]
    fn pattern_change_takes_the_full_route() {
        let backend = Sharded::new(3);
        let a = Arc::new(laplacian_2d(30, 24));
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let k1 = first.schur().expect("sharded engine").num_shards();
        assert_eq!(first.schur().unwrap().shards_refactored(), k1);
        // A different lattice shape is a different pattern: no incremental
        // reuse, everything refactored under the new plan.
        let b = Arc::new(laplacian_2d(24, 30));
        let second = backend.prepare(Arc::clone(&b)).unwrap();
        let schur = second.schur().unwrap();
        assert_eq!(schur.shards_refactored(), schur.num_shards());
        assert_eq!(schur.shards_reused(), 0);
        let rhs = loads(b.nrows(), 2);
        let batch = second.solve_many(&rhs, 2).unwrap();
        for (x, r) in batch.xs.iter().zip(&rhs) {
            assert!(b.residual(x, r) < 1e-10);
        }
    }

    #[test]
    fn identical_reprepare_reuses_every_shard() {
        let a = Arc::new(laplacian_2d(26, 26));
        let backend = Sharded::new(3);
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let k = first.schur().expect("sharded engine").num_shards();
        // Same values in a distinct allocation: the dirty set is empty.
        let second = backend.prepare(Arc::new((*a).clone())).unwrap();
        let schur = second.schur().unwrap();
        assert_eq!(schur.shards_refactored(), 0);
        assert_eq!(schur.shards_reused(), k);
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 5) as f64).collect();
        assert_eq!(first.solve(&b).unwrap().x, second.solve(&b).unwrap().x);
    }

    #[test]
    fn degenerate_plans_share_one_cache_entry() {
        // n = 49 < 2·MIN_SPLIT: every requested shard count collapses to
        // the same single-shard plan, so differently-keyed cache entries
        // are interchangeable and the second backend must *hit*.
        let a = Arc::new(laplacian_2d(7, 7));
        let cache = FactorCache::new();
        let four = Sharded::new(4);
        let eight = Sharded::new(8);
        assert_ne!(four.config_fingerprint(), eight.config_fingerprint());
        cache.prepare(&four, &a).unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        cache.prepare(&eight, &a).unwrap();
        assert_eq!(
            (cache.hits(), cache.misses(), cache.len()),
            (1, 1, 1),
            "degenerate plans are identical — the lookup must dedupe"
        );

        // Counter-case: on an operator that genuinely splits, K=2 and K=4
        // produce different plans, so no cross-config sharing.
        let big = Arc::new(laplacian_2d(28, 28));
        let cache = FactorCache::new();
        cache.prepare(&Sharded::new(2), &big).unwrap();
        cache.prepare(&Sharded::new(4), &big).unwrap();
        assert_eq!(cache.hits(), 0, "distinct plans must not alias");
        assert_eq!(cache.misses(), 2);
    }

    /// A `(bx·m+1) × (by·m+1)` point grid with 5-point coupling plus the
    /// block spans of a `bx × by` grid of `m×m`-cell blocks — the shape of
    /// the reduced global operator, with a hint the geometric planner can
    /// act on (mirrors the helper in `shard::tests`).
    fn hinted_grid(bx: usize, by: usize, m: usize) -> (CsrMatrix, PartitionHint) {
        let (nx, ny) = (bx * m + 1, by * m + 1);
        let idx = |x: usize, y: usize| y * nx + x;
        let span1 = |c: usize, blocks: usize| -> [usize; 2] {
            if c.is_multiple_of(m) {
                let plane = c / m;
                [plane.saturating_sub(1), plane.min(blocks - 1)]
            } else {
                [c / m, c / m]
            }
        };
        let mut coo = CooMatrix::new(nx * ny, nx * ny);
        let mut spans = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                let v = idx(x, y);
                coo.push(v, v, 4.0);
                if x + 1 < nx {
                    coo.push(v, idx(x + 1, y), -1.0);
                    coo.push(idx(x + 1, y), v, -1.0);
                }
                if y + 1 < ny {
                    coo.push(v, idx(x, y + 1), -1.0);
                    coo.push(idx(x, y + 1), v, -1.0);
                }
                let sx = span1(x, bx);
                let sy = span1(y, by);
                spans.push([sx[0], sx[1], sy[0], sy[1]]);
            }
        }
        (coo.to_csr(), PartitionHint::new([bx, by], spans))
    }

    #[test]
    fn hinted_prepare_takes_the_geometric_route_and_matches() {
        let (a, hint) = hinted_grid(4, 4, 4);
        let a = Arc::new(a);
        let rhs = loads(a.nrows(), 3);
        let mono = DirectCholesky::default()
            .prepare(Arc::clone(&a))
            .unwrap()
            .solve_many(&rhs, 4)
            .unwrap();
        let backend = Sharded::new(4);
        backend.set_partition_hint(Some(Arc::new(hint)));
        let prepared = backend.prepare(Arc::clone(&a)).unwrap();
        let schur = prepared.schur().expect("sharded engine");
        let stats = schur.plan_stats();
        assert!(stats.geometric, "hint must route geometrically");
        assert_eq!(stats.shards, 4);
        assert!(stats.min_shard_rows >= ShardPlan::MIN_SHARD_ROWS);
        assert!(stats.balance_ratio <= 2.0);
        // Agreement with the monolithic solve, and bitwise cap invariance.
        let scale = mono
            .xs
            .iter()
            .flatten()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-30);
        let b1 = prepared.solve_many(&rhs, 1).unwrap();
        let b8 = prepared.solve_many(&rhs, 8).unwrap();
        for ((x, y), z) in mono.xs.iter().zip(&b1.xs).zip(&b8.xs) {
            assert_eq!(y, z, "geometric sharded solve must be cap-invariant");
            for (p, q) in x.iter().zip(y) {
                assert!((p - q).abs() <= 1e-10 * scale);
            }
        }
    }

    #[test]
    fn hinted_incremental_reuses_clean_shards_and_stays_bitwise() {
        let (a, hint) = hinted_grid(4, 4, 4);
        let a = Arc::new(a);
        let hint = Arc::new(hint);
        let rhs = loads(a.nrows(), 3);
        let backend = Sharded::new(4);
        backend.set_partition_hint(Some(Arc::clone(&hint)));
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        let schur = first.schur().expect("sharded engine");
        assert!(schur.plan_stats().geometric);
        let k = schur.num_shards();
        // Perturb one interior diagonal: incremental route, one dirty shard.
        let row = schur.plan().shard_rows(0)[0];
        let mut b = (*a).clone();
        b.add_at(row, row, 1.0);
        let b = Arc::new(b);
        let second = backend.prepare(Arc::clone(&b)).unwrap();
        let schur2 = second.schur().unwrap();
        assert!(schur2.plan_stats().geometric, "plan carries over");
        assert_eq!(schur2.shards_refactored(), 1);
        assert_eq!(schur2.shards_reused(), k - 1);
        // Bitwise oracle: a fresh backend under the same hint, from scratch.
        let scratch_backend = Sharded::new(4);
        scratch_backend.set_partition_hint(Some(Arc::clone(&hint)));
        let scratch = scratch_backend.prepare(Arc::clone(&b)).unwrap();
        let xi = second.solve_many(&rhs, 4).unwrap();
        let xs = scratch.solve_many(&rhs, 4).unwrap();
        for (x, y) in xi.xs.iter().zip(&xs.xs) {
            assert_eq!(x, y, "hinted incremental bits must match scratch");
        }
    }

    #[test]
    fn hint_change_forces_the_full_route() {
        let (a, hint) = hinted_grid(4, 4, 4);
        let a = Arc::new(a);
        let backend = Sharded::new(4);
        backend.set_partition_hint(Some(Arc::new(hint)));
        let first = backend.prepare(Arc::clone(&a)).unwrap();
        assert!(first.schur().unwrap().plan_stats().geometric);
        // Dropping the hint is a configuration change: same matrix, but the
        // plan must be rebuilt from the graph — never reused incrementally.
        backend.set_partition_hint(None);
        let second = backend.prepare(Arc::clone(&a)).unwrap();
        let schur = second.schur().unwrap();
        assert!(!schur.plan_stats().geometric);
        assert_eq!(schur.shards_refactored(), schur.num_shards());
        assert_eq!(schur.shards_reused(), 0);
    }

    #[test]
    fn without_hint_pins_the_graph_planner() {
        let (a, hint) = hinted_grid(4, 4, 4);
        let a = Arc::new(a);
        let backend = Sharded::new(4).without_hint();
        backend.set_partition_hint(Some(Arc::new(hint)));
        let prepared = backend.prepare(Arc::clone(&a)).unwrap();
        let schur = prepared.schur().expect("sharded engine");
        assert!(!schur.plan_stats().geometric, "hint must be ignored");
        assert_eq!(*schur.plan(), ShardPlan::build(&a, 4));
    }

    #[test]
    fn indefinite_interior_is_contained_per_shard() {
        // One negative diagonal entry makes exactly one interior block (or
        // the interface) non-SPD. Pre-containment this aborted the whole
        // prepare with `NotPositiveDefinite`; now the broken block falls
        // down the resilience ladder while every clean shard keeps its
        // direct factor, and the degradation is surfaced in the report.
        let mut coo = CooMatrix::new(80, 80);
        for i in 0..80 {
            coo.push(i, i, if i == 40 { -4.0 } else { 4.0 });
            if i > 0 {
                coo.push(i, i - 1, -1.0);
                coo.push(i - 1, i, -1.0);
            }
        }
        let a = Arc::new(coo.to_csr());
        let prepared = Sharded::new(2).prepare(Arc::clone(&a)).unwrap();
        let schur = prepared.schur().expect("sharded engine");
        assert!(
            schur.shards_degraded() >= 1,
            "the non-SPD block must be recorded as degraded"
        );
        assert!(
            schur.shards_degraded() < schur.num_shards() + 1,
            "containment must not drag every block down the ladder"
        );
        assert!(
            !prepared.prep_degradation().is_empty(),
            "the contained breakdown must appear in the preparation trail"
        );
        // The full indefinite (but nonsingular) system still solves: static
        // condensation is exact for any invertible interior, and the
        // degraded block's ladder solve targets 1e-8 — so the composed
        // residual lands within a few orders of that.
        let b: Vec<f64> = (0..80).map(|i| ((i % 7) as f64) - 3.0).collect();
        let sol = prepared.solve(&b).unwrap();
        assert!(
            a.residual(&sol.x, &b) < 1e-5,
            "contained solve residual too large: {}",
            a.residual(&sol.x, &b)
        );
        assert!(sol.report.shards_degraded >= 1);
        assert!(!sol.report.degradation.is_empty());

        // A clean operator through the same machinery reports zero degraded
        // shards.
        let clean = Arc::new(laplacian_2d(10, 8));
        let prepared = Sharded::new(2).prepare(Arc::clone(&clean)).unwrap();
        assert_eq!(prepared.schur().unwrap().shards_degraded(), 0);
        let sol = prepared.solve(&loads(clean.nrows(), 1)[0]).unwrap();
        assert_eq!(sol.report.shards_degraded, 0);
        assert!(sol.report.degradation.is_empty());
    }
}
