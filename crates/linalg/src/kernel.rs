//! Swappable dense microkernels for the supernodal flop core.
//!
//! Every hot path in this crate — the supernodal rank-k panel updates, the
//! dense diagonal-block Cholesky, the blocked triangular sweeps, the Schur
//! clique condensation, and the Krylov dot/axpy primitives — funnels its
//! floating-point work through the [`DenseKernel`] trait defined here.
//! Three implementations are provided:
//!
//! * [`ScalarKernel`] — the original plain slice loops, extracted verbatim
//!   from `supernodal.rs`. This is the differential oracle: every other
//!   kernel is pinned against it to ≤1e-12 by proptests.
//! * [`BlockedKernel`] — register-tiled, k-unrolled loops written around
//!   explicit [`f64::mul_add`] so LLVM autovectorizes them (the default).
//!   On x86-64 the bodies are compiled twice — once generic, once under
//!   `#[target_feature(enable = "fma")]` — and dispatched at runtime via
//!   `is_x86_feature_detected!`, so `mul_add` lowers to a hardware fused
//!   multiply-add instead of a libm call wherever the CPU supports it.
//!   Because `mul_add` is *exactly rounded* regardless of how it is
//!   lowered, both paths produce bitwise-identical results: the kernel's
//!   output does not depend on the host CPU.
//! * [`SimdKernel`] — hand-written `core::arch` x86-64 AVX2/FMA
//!   intrinsics for the bandwidth-bound entry points, behind the optional
//!   `simd` cargo feature, with a runtime `is_x86_feature_detected!`
//!   dispatch that falls back to [`ScalarKernel`] on CPUs without AVX2.
//!
//! # Determinism contract
//!
//! Each kernel is individually deterministic: for a fixed kernel choice
//! the same inputs always produce the same bits, on any thread schedule
//! and (for `Scalar` and `Blocked`) on any host CPU. This is what lets
//! the parallel supernodal factorization stay bitwise pool-cap-invariant
//! *per kernel*. Different kernels associate sums differently (and the
//! fused multiply-add rounds differently from separate multiply/add), so
//! **changing the kernel changes the result bits** — the kernel choice is
//! therefore part of the [`FactorCache`](crate::FactorCache) config
//! fingerprint, and cross-kernel agreement is pinned only to ≤1e-12.

/// Dense panel microkernel: the flop-bearing inner loops of the
/// supernodal factorization and triangular sweeps, plus the dot/axpy
/// primitives the Krylov solvers share.
///
/// All panels are column-major with leading dimension = panel height, the
/// layout `supernodal.rs` stores. Implementations must be deterministic
/// (fixed inputs → fixed bits); see the module-level docs in `kernel.rs`
/// for the exact contract.
pub trait DenseKernel: Send + Sync {
    /// Stable identifier recorded in [`SolveReport`](crate::SolveReport)
    /// and the bench artifacts (`"scalar"`, `"blocked"`, `"avx2"`).
    fn name(&self) -> &'static str;

    /// Dot product `x · y`. Slices must have equal length.
    fn dot(&self, x: &[f64], y: &[f64]) -> f64;

    /// `y ← y + alpha·x`. Slices must have equal length.
    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]);

    /// Rank-`wd` symmetric update block of the supernodal left-looking
    /// sweep: with `g_k = panel[k·m + lo .. k·m + m]` (the tail of
    /// descendant column `k` at row offset `lo`) and `mu = m - lo`,
    /// accumulates
    ///
    /// ```text
    /// update[j·mu + i] += Σ_{k<wd} g_k[j] · g_k[i]    (j < wj, i < mu)
    /// ```
    ///
    /// i.e. `update += Gᵀ·G` restricted to its first `wj` columns. The
    /// caller zeroes (or owns) `update`, which must hold `wj·mu` entries;
    /// the caller also scatters the result through its relative-index
    /// maps, so the kernel only ever touches contiguous slices.
    fn rank_update(
        &self,
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize,
    );

    /// Dense left-looking Cholesky of the leading `w × w` block of a
    /// `w`-column panel of height `m`, updating the below-diagonal rows in
    /// the same pass (exactly the in-panel factorization of
    /// `supernodal.rs`). On a non-positive or non-finite pivot returns
    /// `Err((j, pivot))` with the *panel-local* column index `j`.
    ///
    /// # Errors
    ///
    /// `Err((j, pivot))` when the pivot of local column `j` is not
    /// strictly positive and finite.
    fn factor_panel(&self, panel: &mut [f64], m: usize, w: usize) -> Result<(), (usize, f64)>;

    /// Forward substitution on the dense `w × w` lower-triangular
    /// diagonal block of a panel of height `m`: solves `L₁₁ y = x` in
    /// place, where `x` is the `w`-entry slice of the right-hand side
    /// owned by this supernode.
    fn solve_lower(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64]);

    /// Below-diagonal mat-vec of the forward sweep: overwrites `acc`
    /// (length `m - w`) with `L₂₁ · y`, where `y` is the `w`-entry
    /// diagonal-block solution and `L₂₁` the rows `w..m` of the panel.
    /// The caller scatters `acc` into the global right-hand side.
    fn below_accumulate(&self, panel: &[f64], m: usize, w: usize, y: &[f64], acc: &mut [f64]);

    /// Backward substitution on the panel: solves `L₁₁ᵀ x = x − L₂₁ᵀ xb`
    /// in place, where `x` is the `w`-entry diagonal-block slice and `xb`
    /// (length `m - w`) the already-solved entries gathered from the rows
    /// below the block.
    fn solve_lower_transpose(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64], xb: &[f64]);
}

/// Which [`DenseKernel`] the factorization and solve sweeps run on.
///
/// The choice changes the result bits (see the module-level docs in
/// `kernel.rs`), so
/// it participates in the backend config fingerprint and is recorded in
/// [`SolveReport`](crate::SolveReport) / [`SupernodeStats`](crate::SupernodeStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// [`ScalarKernel`]: the original loops, kept as the differential
    /// oracle.
    Scalar,
    /// [`BlockedKernel`]: unrolled `mul_add` tiles, autovectorized — the
    /// default.
    #[default]
    Blocked,
    /// `SimdKernel`: AVX2/FMA intrinsics when built with the `simd`
    /// feature *and* the CPU supports them; resolves to
    /// [`ScalarKernel`] otherwise (so the variant is always safe to
    /// request).
    Simd,
}

impl KernelChoice {
    /// Resolves the choice to a kernel instance. [`KernelChoice::Simd`]
    /// resolves at runtime: AVX2+FMA hardware (under the `simd` feature)
    /// gets the intrinsics kernel, anything else the scalar fallback.
    pub fn kernel(self) -> &'static dyn DenseKernel {
        match self {
            KernelChoice::Scalar => &ScalarKernel,
            KernelChoice::Blocked => &BlockedKernel,
            KernelChoice::Simd => {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                if avx2_fma_detected() {
                    return &SimdKernel;
                }
                &ScalarKernel
            }
        }
    }

    /// The name of the kernel this choice actually resolves to on this
    /// host (`"scalar"`, `"blocked"`, or `"avx2"`).
    pub fn resolved_name(self) -> &'static str {
        self.kernel().name()
    }

    /// Fingerprint of the *resolved* kernel, folded into backend config
    /// fingerprints: two choices that produce the same bits (e.g. `Simd`
    /// falling back to scalar) share a fingerprint, and two that differ
    /// numerically never do.
    pub fn fingerprint(self) -> u64 {
        match self.resolved_name() {
            "blocked" => 0xb10c_6ed0_4b8d_2f31,
            "avx2" => 0x51bd_a5e6_0c47_9d13,
            _ => 0x5ca1_a27b_e581_66f7,
        }
    }

    /// Every choice that resolves to a *distinct* kernel on this host, in
    /// oracle-first order — what the ablation bench and the invariance
    /// tests iterate.
    pub fn available() -> &'static [KernelChoice] {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if avx2_fma_detected() {
            return &[
                KernelChoice::Scalar,
                KernelChoice::Blocked,
                KernelChoice::Simd,
            ];
        }
        &[KernelChoice::Scalar, KernelChoice::Blocked]
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx2_fma_detected() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

// ---------------------------------------------------------------------------
// ScalarKernel — the original loops, verbatim.
// ---------------------------------------------------------------------------

/// The plain slice loops this crate shipped with, extracted verbatim —
/// the differential oracle every tuned kernel is tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl DenseKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn rank_update(
        &self,
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize,
    ) {
        let mu = m - lo;
        for k in 0..wd {
            let gcol = &panel[k * m + lo..k * m + m];
            for jj in 0..wj {
                let coef = gcol[jj];
                if coef == 0.0 {
                    continue;
                }
                let dstcol = &mut update[jj * mu..(jj + 1) * mu];
                for (di, &gi) in dstcol.iter_mut().zip(gcol) {
                    *di += coef * gi;
                }
            }
        }
    }

    fn factor_panel(&self, panel: &mut [f64], m: usize, w: usize) -> Result<(), (usize, f64)> {
        for j in 0..w {
            let (head, tail) = panel.split_at_mut(j * m);
            let colj = &mut tail[..m];
            for colk in head.chunks_exact(m) {
                let coef = colk[j]; // L[j, k] in the diagonal block
                if coef == 0.0 {
                    continue;
                }
                for (x, &lk) in colj[j..].iter_mut().zip(&colk[j..]) {
                    *x -= coef * lk;
                }
            }
            let d = colj[j];
            if d <= 0.0 || !d.is_finite() {
                return Err((j, d));
            }
            let piv = d.sqrt();
            colj[j] = piv;
            let inv = 1.0 / piv;
            for x in &mut colj[j + 1..] {
                *x *= inv;
            }
        }
        Ok(())
    }

    fn solve_lower(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64]) {
        for j in 0..w {
            let col = &panel[j * m..(j + 1) * m];
            let yj = x[j] / col[j];
            x[j] = yj;
            for i in (j + 1)..w {
                x[i] -= col[i] * yj;
            }
        }
    }

    fn below_accumulate(&self, panel: &[f64], m: usize, w: usize, y: &[f64], acc: &mut [f64]) {
        acc.iter_mut().for_each(|v| *v = 0.0);
        for (j, &coef) in y.iter().enumerate().take(w) {
            if coef == 0.0 {
                continue;
            }
            let col = &panel[j * m + w..(j + 1) * m];
            for (a, &l) in acc.iter_mut().zip(col) {
                *a += l * coef;
            }
        }
    }

    fn solve_lower_transpose(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64], xb: &[f64]) {
        for j in (0..w).rev() {
            let col = &panel[j * m..(j + 1) * m];
            let mut acc = x[j];
            for (&l, &xi) in col[w..].iter().zip(xb.iter()) {
                acc -= l * xi;
            }
            for i in (j + 1)..w {
                acc -= col[i] * x[i];
            }
            x[j] = acc / col[j];
        }
    }
}

// ---------------------------------------------------------------------------
// BlockedKernel — unrolled mul_add tiles, FMA-dispatched.
// ---------------------------------------------------------------------------

/// Register-tiled kernel: the loops are unrolled over the rank dimension
/// (4 descendant columns per pass) and written around [`f64::mul_add`] so
/// LLVM turns the inner row loops into packed FMA streams. See the
/// module-level docs in `kernel.rs` for the FMA runtime-dispatch scheme
/// and why the result bits are host-independent.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockedKernel;

/// Generates the `BlockedKernel` trait methods: each one dispatches to
/// the `fma::` re-export of the shared body when the CPU supports fused
/// multiply-add (so `mul_add` compiles to a single instruction), and to
/// the generic body (libm `fma`, same bits) otherwise.
macro_rules! blocked_dispatch {
    ($body:ident ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("fma") {
            // SAFETY: FMA support was just verified at runtime.
            return unsafe { fma::$body($($arg),*) };
        }
        body::$body($($arg),*)
    }};
}

impl DenseKernel for BlockedKernel {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        blocked_dispatch!(dot(x, y))
    }

    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        blocked_dispatch!(axpy(alpha, x, y))
    }

    fn rank_update(
        &self,
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize,
    ) {
        blocked_dispatch!(rank_update(update, panel, m, lo, wj, wd))
    }

    fn factor_panel(&self, panel: &mut [f64], m: usize, w: usize) -> Result<(), (usize, f64)> {
        blocked_dispatch!(factor_panel(panel, m, w))
    }

    fn solve_lower(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64]) {
        blocked_dispatch!(solve_lower(panel, m, w, x))
    }

    fn below_accumulate(&self, panel: &[f64], m: usize, w: usize, y: &[f64], acc: &mut [f64]) {
        blocked_dispatch!(below_accumulate(panel, m, w, y, acc))
    }

    fn solve_lower_transpose(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64], xb: &[f64]) {
        blocked_dispatch!(solve_lower_transpose(panel, m, w, x, xb))
    }
}

/// The blocked loop bodies, written once and compiled under two feature
/// sets (generic here, FMA-enabled in [`fma`]). Everything is
/// `#[inline(always)]` so the `target_feature` wrappers specialize the
/// whole body, not just a call.
mod body {
    /// Four-lane accumulator dot; the fixed reduction tree keeps the
    /// result schedule-independent.
    #[inline(always)]
    pub(super) fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let quads = n / 4;
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0, 0.0, 0.0);
        for q in 0..quads {
            let b = 4 * q;
            s0 = x[b].mul_add(y[b], s0);
            s1 = x[b + 1].mul_add(y[b + 1], s1);
            s2 = x[b + 2].mul_add(y[b + 2], s2);
            s3 = x[b + 3].mul_add(y[b + 3], s3);
        }
        let mut tail = 0.0f64;
        for i in 4 * quads..n {
            tail = x[i].mul_add(y[i], tail);
        }
        ((s0 + s1) + (s2 + s3)) + tail
    }

    #[inline(always)]
    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = alpha.mul_add(xi, *yi);
        }
    }

    #[inline(always)]
    pub(super) fn rank_update(
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize,
    ) {
        let mu = m - lo;
        let mut k = 0;
        // Four rank-1 terms per pass: each destination element chains four
        // fused multiply-adds while independent rows fill the FMA pipes.
        while k + 4 <= wd {
            let g0 = &panel[k * m + lo..k * m + m];
            let g1 = &panel[(k + 1) * m + lo..(k + 1) * m + m];
            let g2 = &panel[(k + 2) * m + lo..(k + 2) * m + m];
            let g3 = &panel[(k + 3) * m + lo..(k + 3) * m + m];
            for jj in 0..wj {
                let (c0, c1, c2, c3) = (g0[jj], g1[jj], g2[jj], g3[jj]);
                let dstcol = &mut update[jj * mu..(jj + 1) * mu];
                for i in 0..mu {
                    dstcol[i] = c3.mul_add(
                        g3[i],
                        c2.mul_add(g2[i], c1.mul_add(g1[i], c0.mul_add(g0[i], dstcol[i]))),
                    );
                }
            }
            k += 4;
        }
        while k < wd {
            let g0 = &panel[k * m + lo..k * m + m];
            for jj in 0..wj {
                let c0 = g0[jj];
                let dstcol = &mut update[jj * mu..(jj + 1) * mu];
                for (di, &gi) in dstcol.iter_mut().zip(g0) {
                    *di = c0.mul_add(gi, *di);
                }
            }
            k += 1;
        }
    }

    #[inline(always)]
    pub(super) fn factor_panel(panel: &mut [f64], m: usize, w: usize) -> Result<(), (usize, f64)> {
        for j in 0..w {
            let (head, tail) = panel.split_at_mut(j * m);
            let colj = &mut tail[..m];
            // Two prior columns per pass over the update tail.
            let mut k = 0;
            while k + 2 <= j {
                let ck0 = &head[k * m..(k + 1) * m];
                let ck1 = &head[(k + 1) * m..(k + 2) * m];
                let (c0, c1) = (ck0[j], ck1[j]);
                for i in j..m {
                    colj[i] = (-c1).mul_add(ck1[i], (-c0).mul_add(ck0[i], colj[i]));
                }
                k += 2;
            }
            if k < j {
                let ck = &head[k * m..(k + 1) * m];
                let c = ck[j];
                for i in j..m {
                    colj[i] = (-c).mul_add(ck[i], colj[i]);
                }
            }
            let d = colj[j];
            if d <= 0.0 || !d.is_finite() {
                return Err((j, d));
            }
            let piv = d.sqrt();
            colj[j] = piv;
            let inv = 1.0 / piv;
            for x in &mut colj[j + 1..] {
                *x *= inv;
            }
        }
        Ok(())
    }

    #[inline(always)]
    pub(super) fn solve_lower(panel: &[f64], m: usize, w: usize, x: &mut [f64]) {
        for j in 0..w {
            let col = &panel[j * m..(j + 1) * m];
            let yj = x[j] / col[j];
            x[j] = yj;
            for i in (j + 1)..w {
                x[i] = (-yj).mul_add(col[i], x[i]);
            }
        }
    }

    #[inline(always)]
    pub(super) fn below_accumulate(panel: &[f64], m: usize, w: usize, y: &[f64], acc: &mut [f64]) {
        acc.iter_mut().for_each(|v| *v = 0.0);
        let mut j = 0;
        while j + 4 <= w {
            let (c0, c1, c2, c3) = (y[j], y[j + 1], y[j + 2], y[j + 3]);
            let l0 = &panel[j * m + w..(j + 1) * m];
            let l1 = &panel[(j + 1) * m + w..(j + 2) * m];
            let l2 = &panel[(j + 2) * m + w..(j + 3) * m];
            let l3 = &panel[(j + 3) * m + w..(j + 4) * m];
            for i in 0..acc.len() {
                acc[i] = c3.mul_add(
                    l3[i],
                    c2.mul_add(l2[i], c1.mul_add(l1[i], c0.mul_add(l0[i], acc[i]))),
                );
            }
            j += 4;
        }
        while j < w {
            let coef = y[j];
            let col = &panel[j * m + w..(j + 1) * m];
            for (a, &l) in acc.iter_mut().zip(col) {
                *a = coef.mul_add(l, *a);
            }
            j += 1;
        }
    }

    #[inline(always)]
    pub(super) fn solve_lower_transpose(
        panel: &[f64],
        m: usize,
        w: usize,
        x: &mut [f64],
        xb: &[f64],
    ) {
        for j in (0..w).rev() {
            let col = &panel[j * m..(j + 1) * m];
            let mut acc = x[j] - dot(&col[w..], xb);
            for i in (j + 1)..w {
                acc = (-col[i]).mul_add(x[i], acc);
            }
            x[j] = acc / col[j];
        }
    }
}

/// `#[target_feature(enable = "fma")]` instantiations of the [`body`]
/// loops: identical source, compiled with hardware fused multiply-add so
/// `mul_add` never falls back to libm. Bitwise-identical output (fused
/// multiply-add is exactly rounded either way); purely a speed dispatch.
#[cfg(target_arch = "x86_64")]
mod fma {
    use super::body;

    /// Re-exports one body under the FMA feature set.
    macro_rules! fma_variant {
        ($name:ident ( $($arg:ident : $ty:ty),* ) $(-> $ret:ty)?) => {
            /// # Safety
            ///
            /// The caller must have verified FMA support at runtime.
            #[target_feature(enable = "fma")]
            pub(super) unsafe fn $name($($arg: $ty),*) $(-> $ret)? {
                body::$name($($arg),*)
            }
        };
    }

    fma_variant!(dot(x: &[f64], y: &[f64]) -> f64);
    fma_variant!(axpy(alpha: f64, x: &[f64], y: &mut [f64]));
    fma_variant!(rank_update(
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize
    ));
    fma_variant!(factor_panel(panel: &mut [f64], m: usize, w: usize) -> Result<(), (usize, f64)>);
    fma_variant!(solve_lower(panel: &[f64], m: usize, w: usize, x: &mut [f64]));
    fma_variant!(below_accumulate(
        panel: &[f64],
        m: usize,
        w: usize,
        y: &[f64],
        acc: &mut [f64]
    ));
    fma_variant!(solve_lower_transpose(
        panel: &[f64],
        m: usize,
        w: usize,
        x: &mut [f64],
        xb: &[f64]
    ));
}

// ---------------------------------------------------------------------------
// SimdKernel — AVX2/FMA intrinsics (optional `simd` feature).
// ---------------------------------------------------------------------------

/// Hand-vectorized AVX2/FMA kernel for the bandwidth-bound entry points
/// (rank-k update, dot, axpy, below-block mat-vec); the short triangular
/// loops delegate to [`BlockedKernel`], whose FMA path emits the same
/// instructions there. Methods verify CPU support at runtime and fall
/// back to [`ScalarKernel`] when AVX2/FMA is absent, so direct calls are
/// sound on any x86-64 host; [`KernelChoice::Simd`] performs the same
/// check once at resolution time.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdKernel;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl DenseKernel for SimdKernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, x: &[f64], y: &[f64]) -> f64 {
        if avx2_fma_detected() {
            // SAFETY: AVX2+FMA support was just verified at runtime.
            unsafe { avx::dot(x, y) }
        } else {
            ScalarKernel.dot(x, y)
        }
    }

    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        if avx2_fma_detected() {
            // SAFETY: AVX2+FMA support was just verified at runtime.
            unsafe { avx::axpy(alpha, x, y) }
        } else {
            ScalarKernel.axpy(alpha, x, y)
        }
    }

    fn rank_update(
        &self,
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize,
    ) {
        if avx2_fma_detected() {
            // SAFETY: AVX2+FMA support was just verified at runtime.
            unsafe { avx::rank_update(update, panel, m, lo, wj, wd) }
        } else {
            ScalarKernel.rank_update(update, panel, m, lo, wj, wd)
        }
    }

    fn factor_panel(&self, panel: &mut [f64], m: usize, w: usize) -> Result<(), (usize, f64)> {
        if avx2_fma_detected() {
            BlockedKernel.factor_panel(panel, m, w)
        } else {
            ScalarKernel.factor_panel(panel, m, w)
        }
    }

    fn solve_lower(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64]) {
        if avx2_fma_detected() {
            BlockedKernel.solve_lower(panel, m, w, x)
        } else {
            ScalarKernel.solve_lower(panel, m, w, x)
        }
    }

    fn below_accumulate(&self, panel: &[f64], m: usize, w: usize, y: &[f64], acc: &mut [f64]) {
        if avx2_fma_detected() {
            // SAFETY: AVX2+FMA support was just verified at runtime.
            unsafe { avx::below_accumulate(panel, m, w, y, acc) }
        } else {
            ScalarKernel.below_accumulate(panel, m, w, y, acc)
        }
    }

    fn solve_lower_transpose(&self, panel: &[f64], m: usize, w: usize, x: &mut [f64], xb: &[f64]) {
        if avx2_fma_detected() {
            BlockedKernel.solve_lower_transpose(panel, m, w, x, xb)
        } else {
            ScalarKernel.solve_lower_transpose(panel, m, w, x, xb)
        }
    }
}

/// The AVX2/FMA loop bodies. Every function requires the caller to have
/// verified `avx2` and `fma` CPU support.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    use core::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_fmadd_pd,
        _mm256_loadu_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm_add_pd,
        _mm_add_sd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };

    /// Horizontal sum of one 4-lane register (fixed lane order, so the
    /// reduction stays deterministic).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// Two-register-accumulator dot product with a `mul_add` scalar tail.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len().min(y.len());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_fmadd_pd(
                _mm256_loadu_pd(x.as_ptr().add(i)),
                _mm256_loadu_pd(y.as_ptr().add(i)),
                acc0,
            );
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(x.as_ptr().add(i + 4)),
                _mm256_loadu_pd(y.as_ptr().add(i + 4)),
                acc1,
            );
            i += 8;
        }
        if i + 4 <= n {
            acc0 = _mm256_fmadd_pd(
                _mm256_loadu_pd(x.as_ptr().add(i)),
                _mm256_loadu_pd(y.as_ptr().add(i)),
                acc0,
            );
            i += 4;
        }
        let mut sum = hsum(_mm256_add_pd(acc0, acc1));
        while i < n {
            sum = x[i].mul_add(y[i], sum);
            i += 1;
        }
        sum
    }

    /// Packed `y ← y + alpha·x`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let av = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 4 <= n {
            let yv = _mm256_fmadd_pd(
                av,
                _mm256_loadu_pd(x.as_ptr().add(i)),
                _mm256_loadu_pd(y.as_ptr().add(i)),
            );
            _mm256_storeu_pd(y.as_mut_ptr().add(i), yv);
            i += 4;
        }
        while i < n {
            y[i] = alpha.mul_add(x[i], y[i]);
            i += 1;
        }
    }

    /// Rank-k update, two rank-1 terms per pass, 4 rows per register.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; same slice contract as
    /// [`DenseKernel::rank_update`](super::DenseKernel::rank_update).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn rank_update(
        update: &mut [f64],
        panel: &[f64],
        m: usize,
        lo: usize,
        wj: usize,
        wd: usize,
    ) {
        let mu = m - lo;
        let mut k = 0;
        while k + 2 <= wd {
            let g0 = &panel[k * m + lo..k * m + m];
            let g1 = &panel[(k + 1) * m + lo..(k + 1) * m + m];
            for jj in 0..wj {
                let c0 = _mm256_set1_pd(g0[jj]);
                let c1 = _mm256_set1_pd(g1[jj]);
                let dstcol = &mut update[jj * mu..(jj + 1) * mu];
                let mut i = 0;
                while i + 4 <= mu {
                    let mut acc = _mm256_loadu_pd(dstcol.as_ptr().add(i));
                    acc = _mm256_fmadd_pd(c0, _mm256_loadu_pd(g0.as_ptr().add(i)), acc);
                    acc = _mm256_fmadd_pd(c1, _mm256_loadu_pd(g1.as_ptr().add(i)), acc);
                    _mm256_storeu_pd(dstcol.as_mut_ptr().add(i), acc);
                    i += 4;
                }
                while i < mu {
                    dstcol[i] = g1[jj].mul_add(g1[i], g0[jj].mul_add(g0[i], dstcol[i]));
                    i += 1;
                }
            }
            k += 2;
        }
        if k < wd {
            let g0 = &panel[k * m + lo..k * m + m];
            for jj in 0..wj {
                let c0 = _mm256_set1_pd(g0[jj]);
                let dstcol = &mut update[jj * mu..(jj + 1) * mu];
                let mut i = 0;
                while i + 4 <= mu {
                    let acc = _mm256_fmadd_pd(
                        c0,
                        _mm256_loadu_pd(g0.as_ptr().add(i)),
                        _mm256_loadu_pd(dstcol.as_ptr().add(i)),
                    );
                    _mm256_storeu_pd(dstcol.as_mut_ptr().add(i), acc);
                    i += 4;
                }
                while i < mu {
                    dstcol[i] = g0[jj].mul_add(g0[i], dstcol[i]);
                    i += 1;
                }
            }
        }
    }

    /// Below-block mat-vec `acc = L₂₁ · y`, two columns per pass.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; same slice contract as
    /// [`DenseKernel::below_accumulate`](super::DenseKernel::below_accumulate).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn below_accumulate(
        panel: &[f64],
        m: usize,
        w: usize,
        y: &[f64],
        acc: &mut [f64],
    ) {
        acc.iter_mut().for_each(|v| *v = 0.0);
        let mb = acc.len();
        let mut j = 0;
        while j + 2 <= w {
            let c0 = _mm256_set1_pd(y[j]);
            let c1 = _mm256_set1_pd(y[j + 1]);
            let l0 = &panel[j * m + w..(j + 1) * m];
            let l1 = &panel[(j + 1) * m + w..(j + 2) * m];
            let mut i = 0;
            while i + 4 <= mb {
                let mut av = _mm256_loadu_pd(acc.as_ptr().add(i));
                av = _mm256_fmadd_pd(c0, _mm256_loadu_pd(l0.as_ptr().add(i)), av);
                av = _mm256_fmadd_pd(c1, _mm256_loadu_pd(l1.as_ptr().add(i)), av);
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), av);
                i += 4;
            }
            while i < mb {
                acc[i] = y[j + 1].mul_add(l1[i], y[j].mul_add(l0[i], acc[i]));
                i += 1;
            }
            j += 2;
        }
        if j < w {
            let coef = y[j];
            let col = &panel[j * m + w..(j + 1) * m];
            for (a, &l) in acc.iter_mut().zip(col) {
                *a = coef.mul_add(l, *a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random panel (no external RNG in the test
    /// sandbox): wd columns of height m, column-major.
    fn test_panel(m: usize, wd: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..m * wd)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    fn all_kernels() -> Vec<&'static dyn DenseKernel> {
        KernelChoice::available()
            .iter()
            .map(|c| c.kernel())
            .collect()
    }

    fn assert_close(label: &str, a: f64, b: f64, scale: f64) {
        assert!(
            (a - b).abs() <= 1e-12 * scale.max(1.0),
            "{label}: {a} vs {b}"
        );
    }

    #[test]
    fn default_choice_is_blocked() {
        assert_eq!(KernelChoice::default(), KernelChoice::Blocked);
        assert_eq!(KernelChoice::Blocked.resolved_name(), "blocked");
        assert_eq!(KernelChoice::Scalar.resolved_name(), "scalar");
    }

    #[test]
    fn fingerprints_follow_resolution() {
        assert_ne!(
            KernelChoice::Scalar.fingerprint(),
            KernelChoice::Blocked.fingerprint()
        );
        // Simd either resolves to real AVX2 (own fingerprint) or falls
        // back to scalar (shared fingerprint) — never to blocked's.
        let simd = KernelChoice::Simd;
        if simd.resolved_name() == "scalar" {
            assert_eq!(simd.fingerprint(), KernelChoice::Scalar.fingerprint());
        } else {
            assert_ne!(simd.fingerprint(), KernelChoice::Scalar.fingerprint());
            assert_ne!(simd.fingerprint(), KernelChoice::Blocked.fingerprint());
        }
    }

    #[test]
    fn available_is_distinct_and_oracle_first() {
        let avail = KernelChoice::available();
        assert_eq!(avail[0], KernelChoice::Scalar);
        assert!(avail.contains(&KernelChoice::Blocked));
        let names: Vec<_> = avail.iter().map(|c| c.resolved_name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup, "available kernels must be distinct");
    }

    #[test]
    fn dot_and_axpy_agree_across_kernels() {
        for len in [0usize, 1, 3, 4, 7, 8, 31, 64, 129] {
            let x = test_panel(len.max(1), 1, 11)[..len].to_vec();
            let y = test_panel(len.max(1), 1, 23)[..len].to_vec();
            let oracle = ScalarKernel.dot(&x, &y);
            for kern in all_kernels() {
                assert_close(
                    &format!("dot len {len} ({})", kern.name()),
                    kern.dot(&x, &y),
                    oracle,
                    len as f64,
                );
                let mut yo = y.clone();
                let mut yk = y.clone();
                ScalarKernel.axpy(0.37, &x, &mut yo);
                kern.axpy(0.37, &x, &mut yk);
                for (a, b) in yo.iter().zip(&yk) {
                    assert_close(&format!("axpy len {len} ({})", kern.name()), *b, *a, 1.0);
                }
            }
        }
    }

    #[test]
    fn rank_update_agrees_across_kernels() {
        // Widths that exercise the unroll remainders: 1, below a tile,
        // non-multiples of the 4-wide k-unroll, and the width cap.
        for (m, lo, wj, wd) in [
            (1usize, 0usize, 1usize, 1usize),
            (5, 0, 2, 1),
            (9, 2, 3, 3),
            (16, 4, 5, 4),
            (23, 6, 7, 6),
            (40, 8, 17, 32),
        ] {
            let panel = test_panel(m, wd, (m * 31 + wd) as u64);
            let mu = m - lo;
            let mut oracle = vec![0.1; wj * mu];
            ScalarKernel.rank_update(&mut oracle, &panel, m, lo, wj, wd);
            for kern in all_kernels() {
                let mut update = vec![0.1; wj * mu];
                kern.rank_update(&mut update, &panel, m, lo, wj, wd);
                for (i, (a, b)) in oracle.iter().zip(&update).enumerate() {
                    assert_close(
                        &format!("rank_update m{m} wj{wj} wd{wd} [{i}] ({})", kern.name()),
                        *b,
                        *a,
                        wd as f64,
                    );
                }
            }
        }
    }

    #[test]
    fn factor_and_solves_agree_across_kernels() {
        for (m, w) in [(1usize, 1usize), (6, 3), (13, 5), (40, 32)] {
            // SPD-ish panel: G·Gᵀ + (m+1)·I on the diagonal block.
            let g = test_panel(m, m, (m + w) as u64);
            let mut base = vec![0.0f64; w * m];
            for j in 0..w {
                for i in 0..m {
                    let mut v = 0.0;
                    for k in 0..m {
                        v += g[k * m + i] * g[k * m + j];
                    }
                    if i == j {
                        v += (m + 1) as f64;
                    }
                    base[j * m + i] = v;
                }
            }
            let rhs = test_panel(m, 1, 97);
            let mut oracle = base.clone();
            ScalarKernel
                .factor_panel(&mut oracle, m, w)
                .expect("SPD panel");
            for kern in all_kernels() {
                let mut panel = base.clone();
                kern.factor_panel(&mut panel, m, w).expect("SPD panel");
                for (i, (a, b)) in oracle.iter().zip(&panel).enumerate() {
                    assert_close(
                        &format!("factor m{m} w{w} [{i}] ({})", kern.name()),
                        *b,
                        *a,
                        m as f64,
                    );
                }
                // Forward, below mat-vec, and backward on the same factor
                // (use the oracle factor so only the sweep differs).
                let mut xo = rhs[..w].to_vec();
                let mut xk = xo.clone();
                ScalarKernel.solve_lower(&oracle, m, w, &mut xo);
                kern.solve_lower(&oracle, m, w, &mut xk);
                for (a, b) in xo.iter().zip(&xk) {
                    assert_close(&format!("solve_lower ({})", kern.name()), *b, *a, 1.0);
                }
                let mut ao = vec![0.0; m - w];
                let mut ak = vec![1.0; m - w]; // must be overwritten
                ScalarKernel.below_accumulate(&oracle, m, w, &xo, &mut ao);
                kern.below_accumulate(&oracle, m, w, &xo, &mut ak);
                for (a, b) in ao.iter().zip(&ak) {
                    assert_close(&format!("below_accumulate ({})", kern.name()), *b, *a, 1.0);
                }
                let xb = vec![0.25; m - w];
                let mut bo = xo.clone();
                let mut bk = xo.clone();
                ScalarKernel.solve_lower_transpose(&oracle, m, w, &mut bo, &xb);
                kern.solve_lower_transpose(&oracle, m, w, &mut bk, &xb);
                for (a, b) in bo.iter().zip(&bk) {
                    assert_close(
                        &format!("solve_lower_transpose ({})", kern.name()),
                        *b,
                        *a,
                        1.0,
                    );
                }
            }
        }
    }

    #[test]
    fn non_spd_panel_reports_local_column() {
        let mut panel = vec![0.0f64; 3 * 3];
        panel[0] = 4.0;
        panel[4] = -1.0; // column 1 diagonal goes non-positive
        panel[8] = 1.0;
        for kern in all_kernels() {
            let mut p = panel.clone();
            let err = kern.factor_panel(&mut p, 3, 3).expect_err("indefinite");
            assert_eq!(err.0, 1, "local column index ({})", kern.name());
        }
    }
}
