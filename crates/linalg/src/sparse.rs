//! Sparse matrices: COO assembly format and CSR compute format.

use crate::MemoryFootprint;

/// Coordinate-format (triplet) sparse matrix used during assembly.
///
/// Duplicate entries are summed when converting to CSR, which is exactly the
/// semantics of finite element assembly.
///
/// # Example
///
/// ```
/// use morestress_linalg::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // duplicate: summed
/// coo.push(1, 1, 4.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// assert_eq!(csr.get(1, 1), 4.0);
/// assert_eq!(csr.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with pre-reserved capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Appends the entry `(i, j, v)`. Duplicates are allowed and summed on
    /// conversion.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "CooMatrix::push out of bounds"
        );
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
    }

    /// Number of stored triplets (including duplicates).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Converts to CSR, summing duplicate entries and sorting column indices
    /// within each row.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row.
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = row_ptr.clone();
        for t in 0..self.nnz() {
            let r = self.rows[t];
            let slot = next[r];
            next[r] += 1;
            col_idx[slot] = self.cols[t];
            values[slot] = self.vals[t];
        }
        // Sort within each row and combine duplicates.
        let mut out_ptr = vec![0usize; self.nrows + 1];
        let mut out_col: Vec<usize> = Vec::with_capacity(self.nnz());
        let mut out_val: Vec<f64> = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            scratch.clear();
            scratch.extend(
                col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                i = j;
            }
            out_ptr[r + 1] = out_col.len();
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: out_ptr,
            col_idx: out_col,
            values: out_val,
        }
    }
}

impl MemoryFootprint for CooMatrix {
    fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes() + self.cols.heap_bytes() + self.vals.heap_bytes()
    }
}

/// Compressed sparse row matrix: the compute format for all FEM operators.
///
/// Column indices are sorted and unique within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent (wrong lengths,
    /// non-monotone `row_ptr`, unsorted/duplicate or out-of-range columns).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr tail");
        for r in 0..nrows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be monotone");
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns must be sorted and unique");
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "column index out of range");
            }
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds an all-zero matrix with a fixed sparsity pattern given by
    /// per-row sorted column lists. Used by the FEM assembler, which computes
    /// the pattern from mesh connectivity and then scatter-adds element
    /// matrices.
    pub fn from_pattern(nrows: usize, ncols: usize, rows: &[Vec<usize>]) -> Self {
        assert_eq!(rows.len(), nrows, "pattern row count");
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut col_idx = Vec::with_capacity(nnz);
        for row in rows {
            for w in row.windows(2) {
                assert!(w[0] < w[1], "pattern columns must be sorted and unique");
            }
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len());
        }
        let values = vec![0.0; col_idx.len()];
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array (pattern is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Whether `other` has the same dimensions and sparsity pattern
    /// (ignoring values) — the precondition for value-only reuse paths
    /// like the [`Sharded`](crate::Sharded) incremental re-preparation.
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// The columns and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)`, zero if the entry is not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Adds `v` to the stored entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is not in the sparsity pattern; the FEM assembler
    /// guarantees the pattern covers all element couplings.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        let k = self.col_idx[lo..hi]
            .binary_search(&j)
            .unwrap_or_else(|_| panic!("add_at: entry ({i},{j}) not in pattern"));
        self.values[lo + k] += v;
    }

    /// Sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        // Zipped slices per row: the index/value loads carry no bounds
        // checks, so the accumulation vectorizes (the gather on `x` is the
        // only indirect access left).
        for (yi, w) in y.iter_mut().zip(self.row_ptr.windows(2)) {
            let (lo, hi) = (w[0], w[1]);
            *yi = self.col_idx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(|(&c, &v)| v * x[c])
                .sum();
        }
    }

    /// Sparse matrix–vector product returning a fresh vector.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Relative residual `‖b - A x‖₂ / ‖b‖₂` (absolute if `‖b‖₂ = 0`).
    pub fn residual(&self, x: &[f64], b: &[f64]) -> f64 {
        let ax = self.spmv(x);
        let r: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        let nb = crate::norm2(b);
        if nb > 0.0 {
            r / nb
        } else {
            r
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = r;
                values[slot] = self.values[k];
            }
        }
        // Rows of the transpose are produced in increasing source-row order,
        // so columns are already sorted.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extracts the sub-matrix `A[rows, cols]`.
    ///
    /// `col_map` must map every original column index either to
    /// `Some(new index)` (kept) or `None` (dropped); `new_ncols` is the
    /// number of kept columns. The kept columns must preserve order
    /// (monotone `col_map`) so that rows stay sorted.
    ///
    /// The local stage uses this to split the unit-block operator into
    /// `A_ff` (free × free) and `A_fb` (free × boundary), Eq. 12 of the paper.
    pub fn extract(
        &self,
        rows: &[usize],
        col_map: &[Option<usize>],
        new_ncols: usize,
    ) -> CsrMatrix {
        assert_eq!(col_map.len(), self.ncols, "extract: col_map length");
        // Count pass first: exact per-row offsets let the fill pass write
        // disjoint output ranges — no reallocation, and row chunks can fill
        // in parallel on the shared pool (this routine sits on the
        // constraint-reduction hot path of every batched solve).
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut nnz = 0usize;
        for &r in rows {
            let (cols, _) = self.row(r);
            nnz += cols.iter().filter(|&&c| col_map[c].is_some()).count();
            row_ptr.push(nnz);
        }
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let fill_rows = |out_rows: &[usize], first_out: usize, ci: &mut [usize], va: &mut [f64]| {
            let base = row_ptr[first_out];
            let mut w = 0usize;
            for &r in out_rows {
                let (cols, vals) = self.row(r);
                for (c, v) in cols.iter().zip(vals) {
                    if let Some(nc) = col_map[*c] {
                        debug_assert!(nc < new_ncols);
                        ci[w] = nc;
                        va[w] = *v;
                        w += 1;
                    }
                }
            }
            debug_assert_eq!(w, row_ptr[first_out + out_rows.len()] - base);
        };
        // Chunk rows so each task streams a contiguous output range; the
        // writes are disjoint by construction, so results are bitwise
        // identical at every pool cap.
        const CHUNK: usize = 512;
        let pool = crate::WorkPool::current();
        let num_chunks = rows.len().div_ceil(CHUNK.max(1));
        if num_chunks > 1 && pool.cap() > 1 {
            let mut slices: Vec<std::sync::Mutex<(&mut [usize], &mut [f64])>> =
                Vec::with_capacity(num_chunks);
            let (mut ci_rest, mut va_rest) = (col_idx.as_mut_slice(), values.as_mut_slice());
            for ch in 0..num_chunks {
                let lo = row_ptr[ch * CHUNK];
                let hi = row_ptr[rows.len().min((ch + 1) * CHUNK)];
                let (ci_head, ci_tail) = ci_rest.split_at_mut(hi - lo);
                let (va_head, va_tail) = va_rest.split_at_mut(hi - lo);
                slices.push(std::sync::Mutex::new((ci_head, va_head)));
                ci_rest = ci_tail;
                va_rest = va_tail;
            }
            pool.scope_chunks(pool.cap(), num_chunks, |ch| {
                let first = ch * CHUNK;
                let last = rows.len().min(first + CHUNK);
                let mut guard = slices[ch].lock().expect("extract chunk poisoned");
                let (ci, va) = &mut *guard;
                fill_rows(&rows[first..last], first, ci, va);
            });
        } else {
            fill_rows(rows, 0, &mut col_idx, &mut values);
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: new_ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from raw parts **without** the per-entry
    /// validation of [`CsrMatrix::from_raw`] (only cheap shape checks plus
    /// full validation in debug builds). For callers that construct the
    /// arrays programmatically on a hot path — e.g. the global-stage
    /// assembler, whose pattern is sorted by construction — the O(nnz)
    /// validation sweep is pure overhead.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths are inconsistent; in debug builds,
    /// additionally panics on any violation [`CsrMatrix::from_raw`] would
    /// reject.
    pub fn from_raw_trusted(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr tail");
        #[cfg(debug_assertions)]
        {
            Self::from_raw(nrows, ncols, row_ptr, col_idx, values)
        }
        #[cfg(not(debug_assertions))]
        {
            Self {
                nrows,
                ncols,
                row_ptr,
                col_idx,
                values,
            }
        }
    }

    /// Symmetrically permutes a square matrix: `B = P A Pᵀ`, where
    /// `perm[new] = old` (i.e. row `new` of `B` is row `perm[new]` of `A`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `perm` has the wrong length.
    pub fn permuted_symmetric(&self, perm: &crate::Permutation) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols, "permute: matrix must be square");
        assert_eq!(perm.len(), self.nrows, "permute: permutation length");
        let inv = perm.inverse_slice();
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for new_r in 0..self.nrows {
            let old_r = perm.as_slice()[new_r];
            let (cols, vals) = self.row(old_r);
            scratch.clear();
            scratch.extend(cols.iter().map(|&c| inv[c]).zip(vals.iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Maximum absolute asymmetry `max |A_ij - A_ji|` of a square matrix.
    pub fn asymmetry(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols, "asymmetry: matrix must be square");
        let t = self.transposed();
        let mut worst = 0.0_f64;
        for i in 0..self.nrows {
            let (ca, va) = self.row(i);
            let (cb, vb) = t.row(i);
            // Merge the two sorted rows.
            let (mut p, mut q) = (0, 0);
            while p < ca.len() || q < cb.len() {
                match (ca.get(p), cb.get(q)) {
                    (Some(&a), Some(&b)) if a == b => {
                        worst = worst.max((va[p] - vb[q]).abs());
                        p += 1;
                        q += 1;
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        worst = worst.max(va[p].abs());
                        p += 1;
                    }
                    (Some(_), Some(_)) => {
                        worst = worst.max(vb[q].abs());
                        q += 1;
                    }
                    (Some(_), None) => {
                        worst = worst.max(va[p].abs());
                        p += 1;
                    }
                    (None, Some(_)) => {
                        worst = worst.max(vb[q].abs());
                        q += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        worst
    }

    /// The diagonal of a square matrix as a vector (zeros for missing
    /// entries).
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(self.nrows, self.ncols, "diagonal: matrix must be square");
        (0..self.nrows).map(|i| self.get(i, i)).collect()
    }
}

impl MemoryFootprint for CsrMatrix {
    fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes() + self.col_idx.heap_bytes() + self.values.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Permutation;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_sums_duplicates_and_sorts() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 1.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 2, 2.0);
        coo.push(0, 1, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row(1).0, &[0, 2]);
        assert_eq!(csr.get(1, 2), 3.0);
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_1d(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = a.spmv(&x);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 3, 1.0);
        coo.push(2, 1, -2.0);
        coo.push(1, 1, 7.0);
        let a = coo.to_csr();
        let att = a.transposed().transposed();
        assert_eq!(a, att);
    }

    #[test]
    fn extract_splits_blocks() {
        let a = laplacian_1d(4);
        // Keep rows {1,2}, columns {1,2} -> interior block.
        let col_map = vec![None, Some(0), Some(1), None];
        let aff = a.extract(&[1, 2], &col_map, 2);
        assert_eq!(aff.get(0, 0), 2.0);
        assert_eq!(aff.get(0, 1), -1.0);
        assert_eq!(aff.get(1, 0), -1.0);
        // Coupling block rows {1,2}, columns {0,3}.
        let col_map_b = vec![Some(0), None, None, Some(1)];
        let afb = a.extract(&[1, 2], &col_map_b, 2);
        assert_eq!(afb.get(0, 0), -1.0);
        assert_eq!(afb.get(1, 1), -1.0);
        assert_eq!(afb.get(0, 1), 0.0);
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_action() {
        let a = laplacian_1d(4);
        let perm = Permutation::new(vec![3, 1, 0, 2]).unwrap();
        let b = a.permuted_symmetric(&perm);
        // b[new_i][new_j] == a[perm[new_i]][perm[new_j]]
        for ni in 0..4 {
            for nj in 0..4 {
                assert_eq!(
                    b.get(ni, nj),
                    a.get(perm.as_slice()[ni], perm.as_slice()[nj])
                );
            }
        }
    }

    #[test]
    fn asymmetry_detects_nonsymmetric() {
        let a = laplacian_1d(4);
        assert_eq!(a.asymmetry(), 0.0);
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        let b = coo.to_csr();
        assert_eq!(b.asymmetry(), 1.0);
    }

    #[test]
    fn pattern_assembly_roundtrip() {
        let rows = vec![vec![0, 1], vec![0, 1, 2], vec![1, 2]];
        let mut a = CsrMatrix::from_pattern(3, 3, &rows);
        a.add_at(1, 2, 5.0);
        a.add_at(1, 2, 1.0);
        assert_eq!(a.get(1, 2), 6.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not in pattern")]
    fn pattern_violation_panics() {
        let rows = vec![vec![0], vec![1]];
        let mut a = CsrMatrix::from_pattern(2, 2, &rows);
        a.add_at(0, 1, 1.0);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = laplacian_1d(3);
        let x = [1.0, 1.0, 1.0];
        let b = a.spmv(&x);
        assert!(a.residual(&x, &b) < 1e-15);
    }
}
