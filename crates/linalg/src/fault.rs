//! Deterministic fault-injection support for the resilience test harness.
//!
//! A [`FaultPlan`] is a seeded, structure-addressed fault injector: given
//! the same seed and the same operator structure it corrupts the same
//! entries, so the `fault_injection` suite (and any debugging session
//! replaying one of its cases) is exactly reproducible — no wall-clock, no
//! global RNG. Faults are addressed by *structure* (an nnz slot, a pivot
//! row, a shard's interior block, a cache key), not by raw byte offsets,
//! so they stay meaningful when kernel internals change.
//!
//! This module is test support: production code never constructs a
//! `FaultPlan`. It lives in the crate (rather than in `tests/`) because
//! the cache-corruption fault needs crate-private access to rebind a
//! prepared factor to an operator it does not solve.

use std::sync::Arc;

use crate::backend::{shifted_copy, FactorCache, SolverBackend};
use crate::error::LinalgError;
use crate::shard::ShardPlan;
use crate::sparse::CsrMatrix;

/// Seeded, structure-addressed fault injector (see the module docs).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
}

impl FaultPlan {
    /// A plan replaying the fault sequence of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// splitmix64 — the same tiny generator the dev proptest shim uses.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A deterministic index in `0..n` (0 for an empty range).
    pub fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }

    /// Poisons one stored value of `a` with NaN, returning the nnz index.
    /// The input scan of every `prepare`/`solve` entry point must turn this
    /// into [`LinalgError::NonFinite`] before any factorization runs.
    pub fn poison_value(&mut self, a: &mut CsrMatrix) -> usize {
        let k = self.pick(a.nnz());
        a.values_mut()[k] = f64::NAN;
        k
    }

    /// Zeroes one diagonal entry of `a` (keeping symmetry), returning the
    /// row. Cholesky must break down with
    /// [`LinalgError::NotPositiveDefinite`] at or before that row, sending
    /// the ladder to its regularized/GMRES rungs.
    pub fn break_pivot(&mut self, a: &mut CsrMatrix) -> usize {
        let row = self.pick_row_with_diagonal(a);
        let k = diag_index(a, row).expect("picked row has a diagonal entry");
        a.values_mut()[k] = 0.0;
        row
    }

    /// Makes one shard's interior block indefinite by negating a diagonal
    /// entry it owns (keeping symmetry), returning the shard index. Only
    /// that shard's interior factorization can break down; every other
    /// shard must keep its clean direct factor.
    pub fn corrupt_shard(&mut self, a: &mut CsrMatrix, plan: &ShardPlan) -> usize {
        let shard = self.pick(plan.num_shards());
        let rows = plan.shard_rows(shard);
        // Walk the shard's rows from a deterministic start until one with a
        // stored diagonal entry turns up.
        let start = self.pick(rows.len().max(1));
        for off in 0..rows.len() {
            let row = rows[(start + off) % rows.len()];
            if let Some(k) = diag_index(a, row) {
                let v = a.values()[k];
                a.values_mut()[k] = -v.abs() - 1.0;
                return shard;
            }
        }
        shard
    }

    /// Evicts every cached factor of `a` (any backend configuration),
    /// returning how many entries were dropped. A well-behaved caller must
    /// transparently re-prepare on the resulting miss.
    pub fn evict_cache(&mut self, cache: &FactorCache, a: &CsrMatrix) -> usize {
        cache.invalidate(a)
    }

    /// Plants a corrupted factor under `(backend, a)`'s cache key: a
    /// healthy-looking [`PreparedSolver`](crate::PreparedSolver) whose factor belongs to a
    /// strongly diagonally-shifted copy of `a`, not to `a` itself. The
    /// stale-cache self-heal ([`FactorCache::solve_many_healing`]) must
    /// detect the mismatch, invalidate the entry and rebuild it once.
    ///
    /// # Errors
    ///
    /// Propagates the prepare failure if even the shifted copy cannot be
    /// prepared (it is SPD-dominant by construction, so this means the
    /// backend itself is broken).
    pub fn corrupt_cache(
        &mut self,
        cache: &FactorCache,
        backend: &dyn SolverBackend,
        a: &Arc<CsrMatrix>,
    ) -> Result<(), LinalgError> {
        let max_diag = a
            .diagonal()
            .iter()
            .fold(0.0f64, |m, d| m.max(d.abs()))
            .max(1.0);
        // A shift of 3–10× the diagonal scale: large enough that the wrong
        // factor's solutions visibly miss the true operator's residual
        // check, small enough to stay well-conditioned.
        let shift = (3 + self.pick(8)) as f64 * max_diag;
        let wrong = backend.prepare(Arc::new(shifted_copy(a, shift)))?;
        let solver = Arc::new(wrong.rebind_matrix(Arc::clone(a)));
        cache.inject(backend, a, solver);
        Ok(())
    }

    /// A row of `a` that has a stored diagonal entry (falls back to row 0
    /// if none does, which no assembled FEM operator hits).
    fn pick_row_with_diagonal(&mut self, a: &CsrMatrix) -> usize {
        let n = a.nrows();
        let start = self.pick(n.max(1));
        for off in 0..n {
            let row = (start + off) % n;
            if diag_index(a, row).is_some() {
                return row;
            }
        }
        0
    }
}

/// nnz index of the stored diagonal entry of `row`, if the pattern has one.
fn diag_index(a: &CsrMatrix, row: usize) -> Option<usize> {
    let lo = a.row_ptr()[row];
    let hi = a.row_ptr()[row + 1];
    (lo..hi).find(|&k| a.col_idx()[k] == row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_operators::laplacian_2d;
    use crate::DirectCholesky;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let base = laplacian_2d(6, 6);
        let (mut a1, mut a2, mut a3) = (base.clone(), base.clone(), base.clone());
        assert_eq!(
            FaultPlan::new(7).poison_value(&mut a1),
            FaultPlan::new(7).poison_value(&mut a2)
        );
        let k3 = FaultPlan::new(8).poison_value(&mut a3);
        // Not a hard guarantee per seed pair, but these two seeds differ.
        assert_ne!(
            FaultPlan::new(7).pick(1 << 30),
            FaultPlan::new(8).pick(1 << 30)
        );
        assert!(k3 < base.nnz());
    }

    #[test]
    fn break_pivot_defeats_cholesky() {
        let mut a = laplacian_2d(5, 5);
        let row = FaultPlan::new(42).break_pivot(&mut a);
        assert!(row < a.nrows());
        let err = DirectCholesky::default()
            .prepare(Arc::new(a))
            .expect_err("zeroed pivot must break the factorization");
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn corrupt_shard_targets_one_interior_block() {
        let a = laplacian_2d(8, 8);
        let plan = ShardPlan::build(&a, 4);
        let mut faulty = a.clone();
        let shard = FaultPlan::new(3).corrupt_shard(&mut faulty, &plan);
        assert!(shard < plan.num_shards());
        // Exactly one stored value changed, on the diagonal, inside the
        // reported shard's interior rows.
        let changed: Vec<usize> = (0..a.nnz())
            .filter(|&k| a.values()[k] != faulty.values()[k])
            .collect();
        assert_eq!(changed.len(), 1);
        let k = changed[0];
        let row = (0..a.nrows())
            .find(|&r| a.row_ptr()[r] <= k && k < a.row_ptr()[r + 1])
            .unwrap();
        assert_eq!(a.col_idx()[k], row, "fault must stay on the diagonal");
        assert_eq!(plan.owner(row), Some(shard));
        assert!(faulty.values()[k] < 0.0);
    }
}
