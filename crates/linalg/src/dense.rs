//! Small dense matrices.
//!
//! Used for element stiffness matrices (24×24), Galerkin-projected reduced
//! operators (n×n with n ≈ 24…456, Eq. 16 of the paper) and the interpolation
//! matrix `L`. Row-major storage.

use crate::kernel::{BlockedKernel, DenseKernel};
use crate::{LinalgError, MemoryFootprint};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use morestress_linalg::DenseMatrix;
///
/// # fn main() -> Result<(), morestress_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = a.lu()?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: wrong buffer length");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the row-major backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            y[i] = crate::dot(self.row(i), x);
        }
        y
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, b.rows, "matmul: dimension mismatch");
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                // Row-major matmul is a sequence of row axpys — hand them
                // to the blocked microkernel.
                BlockedKernel.axpy(aik, b.row(k), c.row_mut(i));
            }
        }
        c
    }

    /// Transposed copy.
    pub fn transposed(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Maximum absolute asymmetry `max |A_ij - A_ji|` (for square matrices).
    ///
    /// Used by tests to assert that Galerkin-projected element matrices stay
    /// symmetric.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn asymmetry(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "asymmetry: matrix must be square");
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a zero pivot is encountered and
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn lu(&self) -> Result<DenseLu, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "dense LU (matrix must be square)",
                expected: self.rows,
                found: self.cols,
            });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at/below row k.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best == 0.0 {
                return Err(LinalgError::Singular { row: k });
            }
            if p != k {
                piv.swap(k, p);
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    let (top, bottom) = lu.data.split_at_mut(i * n);
                    let krow = &top[k * n..k * n + n];
                    let irow = &mut bottom[..n];
                    BlockedKernel.axpy(-m, &krow[(k + 1)..], &mut irow[(k + 1)..]);
                }
            }
        }
        Ok(DenseLu { lu, piv })
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl MemoryFootprint for DenseMatrix {
    fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

/// LU factorization (with partial pivoting) of a square [`DenseMatrix`].
///
/// See [`DenseMatrix::lu`] for an example.
#[derive(Debug, Clone)]
pub struct DenseLu {
    lu: DenseMatrix,
    piv: Vec<usize>,
}

impl DenseLu {
    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "dense LU solve",
                expected: n,
                found: b.len(),
            });
        }
        // Apply the row permutation, then forward/backward substitution —
        // each inner contraction one blocked-kernel dot over the stored row.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let s = BlockedKernel.dot(&self.lu.row(i)[..i], &x[..i]);
            x[i] -= s;
        }
        for i in (0..n).rev() {
            let s = x[i] - BlockedKernel.dot(&self.lu.row(i)[(i + 1)..], &x[(i + 1)..]);
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let a = DenseMatrix::identity(4);
        let lu = a.lu().unwrap();
        let b = [1.0, -2.0, 3.5, 0.0];
        assert_eq!(lu.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]);
        let x_true = [1.0, 2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.lu().unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.lu().unwrap().solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_and_asymmetry() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.transposed()[(0, 1)], 3.0);
        assert_eq!(a.asymmetry(), 1.0);
        let s = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(s.asymmetry(), 0.0);
    }

    #[test]
    fn non_square_lu_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::DimensionMismatch { .. })));
    }
}
