//! Preconditioned iterative solvers.
//!
//! The paper solves the global reduced system with GMRES ("Eq. 20 is better
//! solved by iterative methods such as GMRES ... because we do not need to
//! solve the same equation repeatedly in the global stage", §4.3). The global
//! operator is in fact symmetric positive definite (it is a Galerkin
//! projection of an SPD operator), so CG applies too; both are provided and
//! compared in `benches/ablation_global_solver.rs`.

use crate::{axpy, dot, norm2, CsrMatrix, LinalgError, LinearOperator};

/// Application of a preconditioner `z ≈ A⁻¹ r`.
///
/// Implementations must be cheap relative to a matrix–vector product.
pub trait Preconditioner {
    /// Computes `z ≈ A⁻¹ r` into `z`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The identity preconditioner (no preconditioning).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner.
///
/// # Example
///
/// ```
/// use morestress_linalg::{CooMatrix, JacobiPreconditioner, Preconditioner};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(1, 1, 2.0);
/// let jac = JacobiPreconditioner::new(&coo.to_csr());
/// let mut z = vec![0.0; 2];
/// jac.apply(&[8.0, 8.0], &mut z);
/// assert_eq!(z, vec![2.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal. Zero diagonal
    /// entries are treated as 1 (no scaling) so the preconditioner is always
    /// well defined.
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Symmetric successive over-relaxation (SSOR) preconditioner.
///
/// `M = (D/ω + L) (ω/(2-ω) D⁻¹) (D/ω + U)` for `A = L + D + U`. Applied via
/// one forward and one backward Gauss–Seidel-like sweep. Symmetric for
/// symmetric `A`, so it is admissible inside CG.
#[derive(Debug, Clone)]
pub struct SsorPreconditioner {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
}

impl SsorPreconditioner {
    /// Builds the preconditioner. `omega` must lie in `(0, 2)`; `1.0` gives
    /// symmetric Gauss–Seidel.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `(0, 2)` or a diagonal entry is zero.
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "SSOR omega must be in (0,2)");
        let diag = a.diagonal();
        assert!(
            diag.iter().all(|&d| d != 0.0),
            "SSOR requires a nonzero diagonal"
        );
        Self {
            a: a.clone(),
            diag,
            omega,
        }
    }
}

impl Preconditioner for SsorPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.a.nrows();
        let w = self.omega;
        // Forward sweep: (D/ω + L) y = r.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut s = r[i];
            for (&j, &v) in cols.iter().zip(vals) {
                if j < i {
                    s -= v * y[j];
                }
            }
            y[i] = s * w / self.diag[i];
        }
        // Scale: y ← ((2-ω)/ω) D y.
        for i in 0..n {
            y[i] *= (2.0 - w) / w * self.diag[i];
        }
        // Backward sweep: (D/ω + U) z = y.
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut s = y[i];
            for (&j, &v) in cols.iter().zip(vals) {
                if j > i {
                    s -= v * z[j];
                }
            }
            z[i] = s * w / self.diag[i];
        }
    }
}

/// Outcome of a converged iterative solve.
#[derive(Debug, Clone)]
pub struct IterativeSolution {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed (for GMRES: total inner iterations).
    pub iterations: usize,
    /// Final relative residual estimate.
    pub residual: f64,
}

/// Options for [`solve_cg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iter: 10_000,
        }
    }
}

/// Preconditioned conjugate gradients for SPD systems.
///
/// # Errors
///
/// [`LinalgError::DidNotConverge`] if the tolerance is not met within
/// `max_iter` iterations; [`LinalgError::DimensionMismatch`] on shape errors.
///
/// # Example
///
/// ```
/// use morestress_linalg::{solve_cg, CgOptions, CooMatrix, JacobiPreconditioner};
///
/// # fn main() -> Result<(), morestress_linalg::LinalgError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0); coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let sol = solve_cg(&a, &[2.0, 9.0], &JacobiPreconditioner::new(&a), CgOptions::default())?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-9 && (sol.x[1] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve_cg<A, P>(
    a: &A,
    b: &[f64],
    precond: &P,
    opts: CgOptions,
) -> Result<IterativeSolution, LinalgError>
where
    A: LinearOperator + ?Sized,
    P: Preconditioner + ?Sized,
{
    let n = a.nrows();
    if b.len() != n || a.ncols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "CG",
            expected: n,
            found: b.len(),
        });
    }
    let nb = norm2(b);
    if nb == 0.0 {
        return Ok(IterativeSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    // Last finite relative residual, for honest error reports: the initial
    // iterate x = 0 has ‖b − Ax‖/‖b‖ = 1.
    let mut last_rn = 1.0;
    for it in 0..opts.max_iter {
        a.apply_into(&p, &mut ap);
        let alpha = rz / dot(&p, &ap);
        if !alpha.is_finite() {
            // Breakdown: pᵀAp ≤ 0 (indefinite operator) or a poisoned
            // value. Spinning to max_iter would only report NaN.
            return Err(LinalgError::DidNotConverge {
                iterations: it,
                residual: last_rn,
                restarts: 0,
            });
        }
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rn = norm2(&r) / nb;
        if rn <= opts.tol {
            return Ok(IterativeSolution {
                x,
                iterations: it + 1,
                residual: rn,
            });
        }
        if !rn.is_finite() {
            return Err(LinalgError::DidNotConverge {
                iterations: it + 1,
                residual: last_rn,
                restarts: 0,
            });
        }
        last_rn = rn;
        precond.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::DidNotConverge {
        iterations: opts.max_iter,
        residual: last_rn,
        restarts: 0,
    })
}

/// Options for [`solve_gmres`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOptions {
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub tol: f64,
    /// Restart length (Krylov subspace dimension per cycle).
    pub restart: usize,
    /// Maximum number of restart cycles.
    pub max_restarts: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            restart: 60,
            max_restarts: 200,
        }
    }
}

/// Restarted GMRES with left preconditioning, modified Gram–Schmidt and
/// Givens rotations.
///
/// This is the solver the paper prescribes for the global reduced system
/// (§4.3).
///
/// # Errors
///
/// [`LinalgError::DidNotConverge`] if the tolerance is not met within the
/// restart budget; [`LinalgError::DimensionMismatch`] on shape errors.
pub fn solve_gmres<A, P>(
    a: &A,
    b: &[f64],
    precond: &P,
    opts: GmresOptions,
) -> Result<IterativeSolution, LinalgError>
where
    A: LinearOperator + ?Sized,
    P: Preconditioner + ?Sized,
{
    let n = a.nrows();
    if b.len() != n || a.ncols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "GMRES",
            expected: n,
            found: b.len(),
        });
    }
    let nb = norm2(b);
    if nb == 0.0 {
        return Ok(IterativeSolution {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }
    let m = opts.restart.max(1).min(n);
    let mut x = vec![0.0; n];
    let mut total_iters = 0usize;
    let mut cycles = 0usize;

    let mut scratch = vec![0.0; n];
    // Preconditioned rhs norm for the relative stopping criterion (left
    // preconditioning minimizes ‖M⁻¹(b − Ax)‖).
    precond.apply(b, &mut scratch);
    let nmb = norm2(&scratch).max(f64::MIN_POSITIVE);

    for _cycle in 0..opts.max_restarts {
        // r = M⁻¹ (b - A x)
        let ax = a.apply(&x);
        let raw: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let mut r = vec![0.0; n];
        precond.apply(&raw, &mut r);
        let beta = norm2(&r);
        if !beta.is_finite() {
            // A poisoned iterate cannot recover through more restarts.
            return Err(LinalgError::DidNotConverge {
                iterations: total_iters,
                residual: beta,
                restarts: cycles,
            });
        }
        if beta / nmb <= opts.tol {
            let rn = a.rel_residual(&x, b);
            return Ok(IterativeSolution {
                x,
                iterations: total_iters,
                residual: rn,
            });
        }

        // Arnoldi with Givens rotations on the Hessenberg matrix.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|ri| ri / beta).collect());
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_used = 0usize;
        let mut converged = false;
        cycles += 1;

        for j in 0..m {
            total_iters += 1;
            // w = M⁻¹ A v_j
            a.apply_into(&v[j], &mut scratch);
            let mut w = vec![0.0; n];
            precond.apply(&scratch, &mut w);
            // Modified Gram–Schmidt.
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                h[i][j] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hnorm = norm2(&w);
            h[j + 1][j] = hnorm;
            // Apply previous Givens rotations to column j.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation to kill h[j+1][j].
            let denom = (h[j][j] * h[j][j] + h[j + 1][j] * h[j + 1][j]).sqrt();
            if denom == 0.0 {
                cs[j] = 1.0;
                sn[j] = 0.0;
            } else {
                cs[j] = h[j][j] / denom;
                sn[j] = h[j + 1][j] / denom;
            }
            h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            k_used = j + 1;

            let rel = g[j + 1].abs() / nmb;
            if rel <= opts.tol || hnorm == 0.0 {
                converged = true;
                break;
            }
            v.push(w.iter().map(|wi| wi / hnorm).collect());
        }

        // Back-substitute y from the triangularized Hessenberg system.
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in (i + 1)..k_used {
                s -= h[i][j] * y[j];
            }
            y[i] = s / h[i][i];
        }
        for (j, yj) in y.iter().enumerate() {
            axpy(*yj, &v[j], &mut x);
        }
        if converged {
            let rn = a.rel_residual(&x, b);
            return Ok(IterativeSolution {
                x,
                iterations: total_iters,
                residual: rn,
            });
        }
    }
    let rn = a.rel_residual(&x, b);
    Err(LinalgError::DidNotConverge {
        iterations: total_iters,
        residual: rn,
        restarts: cycles,
    })
}

/// Options for [`refine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Target relative residual `‖b − Ax‖/‖b‖`.
    pub tol: f64,
    /// Maximum correction sweeps before giving up.
    pub max_sweeps: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        Self {
            tol: 1e-12,
            max_sweeps: 4,
        }
    }
}

/// Iterative refinement of a direct solve: repeatedly solves the correction
/// equation `F dx = b − A x` with the supplied (possibly approximate or
/// regularized) factor application `correct` and updates `x += dx`.
///
/// Returns `(sweeps_performed, final_relative_residual)`. Refinement never
/// makes the iterate worse: a sweep whose update fails to strictly reduce
/// the residual is rolled back and the loop stops (stall detection), so the
/// caller can fall to the next rung of the degradation ladder with the best
/// iterate found so far still in `x`.
pub fn refine<A, F>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    correct: F,
    opts: RefineOptions,
) -> (usize, f64)
where
    A: LinearOperator + ?Sized,
    F: Fn(&[f64]) -> Vec<f64>,
{
    let mut best = a.rel_residual(x, b);
    let mut sweeps = 0usize;
    let mut prev = vec![0.0; x.len()];
    while sweeps < opts.max_sweeps && best > opts.tol && best.is_finite() {
        let ax = a.apply(x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let dx = correct(&r);
        prev.copy_from_slice(x);
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        let rn = a.rel_residual(x, b);
        if rn.is_nan() || rn >= best {
            // Stalled or regressed (a NaN residual counts): keep the best
            // iterate seen.
            x.copy_from_slice(&prev);
            break;
        }
        best = rn;
        sweeps += 1;
    }
    (sweeps, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn spd_test_matrix(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    fn nonsymmetric_test_matrix(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 5.0);
            if i > 0 {
                coo.push(i, i - 1, -2.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cg_solves_spd() {
        let a = spd_test_matrix(64);
        let x_true: Vec<f64> = (0..64).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let b = a.spmv(&x_true);
        let sol = solve_cg(&a, &b, &JacobiPreconditioner::new(&a), CgOptions::default()).unwrap();
        assert!(a.residual(&sol.x, &b) < 1e-9);
    }

    #[test]
    fn cg_with_ssor_converges_faster_than_identity() {
        let a = spd_test_matrix(256);
        let b: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).cos()).collect();
        let id = solve_cg(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let ssor = SsorPreconditioner::new(&a, 1.0);
        let pre = solve_cg(&a, &b, &ssor, CgOptions::default()).unwrap();
        assert!(pre.iterations <= id.iterations);
        assert!(a.residual(&pre.x, &b) < 1e-9);
    }

    #[test]
    fn gmres_solves_nonsymmetric() {
        let a = nonsymmetric_test_matrix(80);
        let x_true: Vec<f64> = (0..80).map(|i| (i as f64 / 11.0).sin()).collect();
        let b = a.spmv(&x_true);
        let sol = solve_gmres(
            &a,
            &b,
            &JacobiPreconditioner::new(&a),
            GmresOptions::default(),
        )
        .unwrap();
        assert!(a.residual(&sol.x, &b) < 1e-8, "residual {}", sol.residual);
    }

    #[test]
    fn gmres_restart_path_is_exercised() {
        let a = spd_test_matrix(100);
        let b = vec![1.0; 100];
        let opts = GmresOptions {
            restart: 5,
            max_restarts: 500,
            tol: 1e-10,
        };
        let sol = solve_gmres(&a, &b, &IdentityPreconditioner, opts).unwrap();
        assert!(a.residual(&sol.x, &b) < 1e-8);
        assert!(sol.iterations > 5, "must have restarted at least once");
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = spd_test_matrix(10);
        let sol = solve_cg(
            &a,
            &[0.0; 10],
            &IdentityPreconditioner,
            CgOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.x, vec![0.0; 10]);
        let sol = solve_gmres(
            &a,
            &[0.0; 10],
            &IdentityPreconditioner,
            GmresOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        let a = spd_test_matrix(200);
        let b = vec![1.0; 200];
        let res = solve_cg(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-14,
                max_iter: 2,
            },
        );
        assert!(matches!(res, Err(LinalgError::DidNotConverge { .. })));
    }

    #[test]
    fn cg_breakdown_reports_finite_state() {
        // A poisoned operator value turns alpha NaN on the first step; the
        // old loop would spin to max_iter and report a NaN residual.
        let mut a = spd_test_matrix(8);
        a.values_mut()[3] = f64::NAN;
        let res = solve_cg(
            &a,
            &[1.0; 8],
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                max_iter: 10_000,
            },
        );
        match res {
            Err(LinalgError::DidNotConverge {
                iterations,
                residual,
                restarts,
            }) => {
                assert!(iterations < 10_000, "breakdown must exit early");
                assert!(residual.is_finite(), "residual must be the last finite one");
                assert_eq!(restarts, 0);
            }
            other => panic!("expected DidNotConverge, got {other:?}"),
        }
    }

    #[test]
    fn gmres_error_reports_restart_count() {
        let a = spd_test_matrix(200);
        let b = vec![1.0; 200];
        let res = solve_gmres(
            &a,
            &b,
            &IdentityPreconditioner,
            GmresOptions {
                tol: 1e-14,
                restart: 4,
                max_restarts: 3,
            },
        );
        match res {
            Err(LinalgError::DidNotConverge {
                iterations,
                restarts,
                ..
            }) => {
                assert_eq!(restarts, 3);
                assert_eq!(iterations, 12);
            }
            other => panic!("expected DidNotConverge, got {other:?}"),
        }
    }

    #[test]
    fn refinement_improves_a_perturbed_factor_solve() {
        use crate::SparseCholesky;
        let a = spd_test_matrix(50);
        let x_true: Vec<f64> = (0..50).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let b = a.spmv(&x_true);
        // Factor a shifted operator — a deliberately wrong "factor" whose
        // single solve leaves an O(shift) error that refinement removes.
        let mut shifted = a.clone();
        for i in 0..50 {
            shifted.add_at(i, i, 0.05);
        }
        let factor = SparseCholesky::factor(&shifted).unwrap();
        let mut x = factor.solve(&b);
        let coarse = a.residual(&x, &b);
        let (sweeps, rn) = refine(
            &a,
            &b,
            &mut x,
            |r| factor.solve(r),
            RefineOptions {
                tol: 1e-12,
                max_sweeps: 40,
            },
        );
        assert!(sweeps > 0, "refinement must engage");
        assert!(rn < coarse * 1e-3, "refined {rn} vs coarse {coarse}");
        assert!((a.residual(&x, &b) - rn).abs() < 1e-14);
    }

    #[test]
    fn refinement_rolls_back_a_stalling_sweep() {
        let a = spd_test_matrix(10);
        let b = vec![1.0; 10];
        // A "correction" that makes things worse: refinement must keep the
        // initial iterate untouched and report zero sweeps.
        let mut x = vec![0.25; 10];
        let before = x.clone();
        let r0 = a.residual(&x, &b);
        let (sweeps, rn) = refine(
            &a,
            &b,
            &mut x,
            |r| r.iter().map(|v| v * 100.0).collect(),
            RefineOptions::default(),
        );
        assert_eq!(sweeps, 0);
        assert_eq!(x, before);
        assert!((rn - r0).abs() < 1e-14);
    }

    #[test]
    fn gmres_and_cg_agree_on_spd() {
        let a = spd_test_matrix(60);
        let b: Vec<f64> = (0..60).map(|i| ((i % 5) as f64) - 2.0).collect();
        let jac = JacobiPreconditioner::new(&a);
        let x1 = solve_cg(&a, &b, &jac, CgOptions::default()).unwrap().x;
        let x2 = solve_gmres(&a, &b, &jac, GmresOptions::default())
            .unwrap()
            .x;
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-7);
        }
    }
}
