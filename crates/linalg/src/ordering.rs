//! Fill-reducing orderings for the sparse Cholesky factorization.
//!
//! The local-stage operator `A_ff` comes from a structured 3-D mesh; reverse
//! Cuthill–McKee (RCM) reduces its bandwidth, and therefore the fill of the
//! factor, substantially (see `benches/ablation_ordering.rs`).

use crate::CsrMatrix;

/// A permutation of `0..n`, stored as `perm[new] = old`.
///
/// # Example
///
/// ```
/// use morestress_linalg::Permutation;
///
/// let p = Permutation::new(vec![2, 0, 1]).expect("valid permutation");
/// assert_eq!(p.as_slice(), &[2, 0, 1]);
/// assert_eq!(p.inverse_slice(), &[1, 2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// Builds a permutation from `perm[new] = old`. Returns `None` if `perm`
    /// is not a permutation of `0..perm.len()`.
    pub fn new(perm: Vec<usize>) -> Option<Self> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || inv[old] != usize::MAX {
                return None;
            }
            inv[old] = new;
        }
        Some(Self { perm, inv })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
            inv: (0..n).collect(),
        }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `perm[new] = old` view.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// `inv[old] = new` view.
    pub fn inverse_slice(&self) -> &[usize] {
        &self.inv
    }

    /// Applies the permutation to a vector: `out[new] = x[perm[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "permutation apply: length mismatch");
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Applies the inverse permutation: `out[old] = x[inv[old]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "permutation apply: length mismatch");
        self.inv.iter().map(|&new| x[new]).collect()
    }
}

/// Computes a reverse Cuthill–McKee ordering of a square sparse matrix
/// treated as an undirected graph.
///
/// Starts each connected component from a pseudo-peripheral vertex found by
/// repeated BFS, orders vertices level by level with neighbors visited in
/// increasing-degree order, then reverses.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    assert_eq!(a.nrows(), a.ncols(), "RCM: matrix must be square");
    let n = a.nrows();
    let degree = |v: usize| a.row(v).0.len();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();

    // BFS returning the farthest, lowest-degree vertex and marking nothing.
    let bfs_far = |start: usize, scratch: &mut Vec<i32>| -> usize {
        scratch.iter_mut().for_each(|d| *d = -1);
        let mut q = std::collections::VecDeque::new();
        scratch[start] = 0;
        q.push_back(start);
        let mut last_level: Vec<usize> = vec![start];
        let mut max_d = 0;
        while let Some(v) = q.pop_front() {
            let d = scratch[v];
            if d > max_d {
                max_d = d;
                last_level.clear();
            }
            if d == max_d {
                last_level.push(v);
            }
            for &w in a.row(v).0 {
                if w != v && scratch[w] < 0 {
                    scratch[w] = d + 1;
                    q.push_back(w);
                }
            }
        }
        *last_level
            .iter()
            .min_by_key(|&&v| degree(v))
            .expect("bfs visited at least the start vertex")
    };

    let mut scratch = vec![-1i32; n];
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        // Pseudo-peripheral start: two BFS sweeps from the seed.
        let far = bfs_far(seed, &mut scratch);
        let start = bfs_far(far, &mut scratch);

        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            neighbors.extend(
                a.row(v)
                    .0
                    .iter()
                    .copied()
                    .filter(|&w| w != v && !visited[w]),
            );
            neighbors.sort_unstable_by_key(|&w| degree(w));
            for &w in &neighbors {
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order.reverse();
    Permutation::new(order).expect("RCM produced a valid permutation")
}

/// Half-bandwidth of a square sparse matrix: `max |i - j|` over stored
/// entries. Used to quantify what RCM buys us (see the ordering ablation
/// benchmark).
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut b = 0usize;
    for i in 0..a.nrows() {
        for &j in a.row(i).0 {
            b = b.max(i.abs_diff(j));
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn permutation_validation() {
        assert!(Permutation::new(vec![0, 1, 2]).is_some());
        assert!(Permutation::new(vec![0, 0, 2]).is_none());
        assert!(Permutation::new(vec![0, 3]).is_none());
    }

    #[test]
    fn apply_and_inverse_are_inverses() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let x = [10.0, 20.0, 30.0, 40.0];
        let y = p.apply(&x);
        assert_eq!(y, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(p.apply_inverse(&y), x.to_vec());
    }

    /// RCM on a randomly-permuted 1-D chain should recover bandwidth 1.
    #[test]
    fn rcm_recovers_chain_bandwidth() {
        let n = 50;
        // Build a chain with scrambled labels: vertex i <-> sigma(i).
        let sigma: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            // Deterministic scramble.
            for i in 0..n {
                let j = (i * 17 + 5) % n;
                v.swap(i, j);
            }
            v
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(sigma[i], sigma[i], 2.0);
            if i + 1 < n {
                coo.push(sigma[i], sigma[i + 1], -1.0);
                coo.push(sigma[i + 1], sigma[i], -1.0);
            }
        }
        let a = coo.to_csr();
        assert!(bandwidth(&a) > 1);
        let p = reverse_cuthill_mckee(&a);
        let b = a.permuted_symmetric(&p);
        assert_eq!(bandwidth(&b), 1);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        coo.push(2, 2, 1.0);
        coo.push(3, 3, 1.0);
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 4);
    }
}
