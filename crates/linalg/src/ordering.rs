//! Fill-reducing orderings for the sparse Cholesky factorization.
//!
//! The local-stage operator `A_ff` comes from a structured 3-D mesh; reverse
//! Cuthill–McKee (RCM) reduces its bandwidth, and therefore the fill of the
//! factor, substantially (see `benches/ablation_ordering.rs`).

use crate::CsrMatrix;

/// A permutation of `0..n`, stored as `perm[new] = old`.
///
/// # Example
///
/// ```
/// use morestress_linalg::Permutation;
///
/// let p = Permutation::new(vec![2, 0, 1]).expect("valid permutation");
/// assert_eq!(p.as_slice(), &[2, 0, 1]);
/// assert_eq!(p.inverse_slice(), &[1, 2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// Builds a permutation from `perm[new] = old`. Returns `None` if `perm`
    /// is not a permutation of `0..perm.len()`.
    pub fn new(perm: Vec<usize>) -> Option<Self> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || inv[old] != usize::MAX {
                return None;
            }
            inv[old] = new;
        }
        Some(Self { perm, inv })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
            inv: (0..n).collect(),
        }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `perm[new] = old` view.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// `inv[old] = new` view.
    pub fn inverse_slice(&self) -> &[usize] {
        &self.inv
    }

    /// Applies the permutation to a vector: `out[new] = x[perm[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_into(x, &mut out);
        out
    }

    /// Applies the permutation into a caller-provided buffer:
    /// `out[new] = x[perm[new]]`. Allocation-free — this is the hot-path
    /// variant the triangular-solve kernels use with reused scratch.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()` or `out.len() != self.len()`.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "permutation apply: length mismatch");
        assert_eq!(out.len(), self.len(), "permutation apply: output length");
        for (o, &old) in out.iter_mut().zip(&self.perm) {
            *o = x[old];
        }
    }

    /// Applies the inverse permutation: `out[old] = x[inv[old]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_inverse_into(x, &mut out);
        out
    }

    /// Applies the inverse permutation into a caller-provided buffer:
    /// `out[old] = x[inv[old]]`. Allocation-free counterpart of
    /// [`Permutation::apply_inverse`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()` or `out.len() != self.len()`.
    pub fn apply_inverse_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "permutation apply: length mismatch");
        assert_eq!(out.len(), self.len(), "permutation apply: output length");
        for (o, &new) in out.iter_mut().zip(&self.inv) {
            *o = x[new];
        }
    }
}

/// Declarative fill-reducing ordering choice for the direct solvers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FillOrdering {
    /// Picks [`Rcm`](FillOrdering::Rcm) or
    /// [`NestedDissection`](FillOrdering::NestedDissection) per operator
    /// from a cheap [`StructureProbe`] (mean row density + sampled
    /// bandwidth), so dense-row reduced operators (the global stage) and
    /// large sparse lattices both get the right ordering without the
    /// caller choosing. The default since PR 4.
    #[default]
    Auto,
    /// Reverse Cuthill–McKee: minimizes bandwidth, the right choice for
    /// band-structured operators and for the global stage's reduced
    /// operators, whose ~300-entry rows make nested dissection's
    /// separators enormous.
    Rcm,
    /// Separator-based nested dissection: recursively orders two halves of
    /// the graph before a small separator, which asymptotically beats
    /// banded orderings on large structured lattices (50k-DoF lattice:
    /// 4.6× less factor fill than RCM, see `BENCH_PR3.json`) and produces
    /// big trailing supernodes for the blocked factorization.
    NestedDissection,
    /// The natural (identity) ordering; exposed for ablations.
    Natural,
}

impl FillOrdering {
    /// Resolves [`Auto`](FillOrdering::Auto) to a concrete ordering for
    /// `a` via [`StructureProbe`]; concrete orderings return themselves.
    pub fn resolve(&self, a: &CsrMatrix) -> FillOrdering {
        match self {
            FillOrdering::Auto => {
                if StructureProbe::of(a).prefers_nested_dissection() {
                    FillOrdering::NestedDissection
                } else {
                    FillOrdering::Rcm
                }
            }
            concrete => *concrete,
        }
    }

    /// Computes the permutation of this ordering for `a`.
    pub fn permutation(&self, a: &CsrMatrix) -> Permutation {
        match self.resolve(a) {
            FillOrdering::Rcm => reverse_cuthill_mckee(a),
            FillOrdering::NestedDissection => nested_dissection(a),
            FillOrdering::Natural => Permutation::identity(a.nrows()),
            FillOrdering::Auto => unreachable!("resolve() returns a concrete ordering"),
        }
    }

    /// Stable tag mixed into solver-cache fingerprints.
    pub fn fingerprint(&self) -> u64 {
        match self {
            FillOrdering::Rcm => 0,
            FillOrdering::NestedDissection => 1,
            FillOrdering::Natural => 2,
            FillOrdering::Auto => 3,
        }
    }
}

/// Smallest operator [`FillOrdering::Auto`] hands to nested dissection:
/// below this, RCM's lower ordering cost wins even when ND would reduce
/// fill (the factorization is cheap either way).
const ND_MIN_DOFS: usize = 4096;

/// Densest rows (mean stored entries per row) [`FillOrdering::Auto`] still
/// hands to nested dissection. The global stage's reduced operators carry
/// ~300-entry rows: every BFS level is huge, so ND's "small separator"
/// premise collapses and RCM's banded fill is far cheaper.
const ND_MAX_MEAN_ROW_NNZ: f64 = 16.0;

/// How many rows [`StructureProbe::of`] samples for the bandwidth
/// estimate.
const PROBE_ROWS: usize = 64;

/// Cheap structural fingerprint of a sparse operator, driving
/// [`FillOrdering::Auto`]. Cost: O(nnz of ~64 sampled rows) — vanishing
/// next to either ordering, let alone the factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureProbe {
    /// Matrix dimension.
    pub n: usize,
    /// Exact mean stored entries per row (`nnz / n`).
    pub mean_row_nnz: f64,
    /// Max `|i − j|` over the sampled rows — a lower bound on the true
    /// bandwidth, which is all the decision rule needs.
    pub bandwidth_estimate: usize,
}

impl StructureProbe {
    /// Probes `a` (square, as used by the orderings).
    pub fn of(a: &CsrMatrix) -> Self {
        let n = a.nrows();
        let mean_row_nnz = if n == 0 {
            0.0
        } else {
            a.nnz() as f64 / n as f64
        };
        let stride = (n / PROBE_ROWS).max(1);
        let mut bandwidth_estimate = 0usize;
        let mut i = 0;
        while i < n {
            for &j in a.row(i).0 {
                bandwidth_estimate = bandwidth_estimate.max(i.abs_diff(j));
            }
            i += stride;
        }
        Self {
            n,
            mean_row_nnz,
            bandwidth_estimate,
        }
    }

    /// The [`FillOrdering::Auto`] decision: nested dissection for large
    /// sparse operators with genuinely multi-dimensional coupling
    /// (bandwidth ≳ √n — a 2-D/3-D lattice signature; a naturally narrow
    /// band is already optimal for RCM), RCM otherwise.
    pub fn prefers_nested_dissection(&self) -> bool {
        self.n >= ND_MIN_DOFS
            && self.mean_row_nnz <= ND_MAX_MEAN_ROW_NNZ
            && self
                .bandwidth_estimate
                .saturating_mul(self.bandwidth_estimate)
                >= self.n
    }
}

/// Computes a reverse Cuthill–McKee ordering of a square sparse matrix
/// treated as an undirected graph.
///
/// Starts each connected component from a pseudo-peripheral vertex found by
/// repeated BFS, orders vertices level by level with neighbors visited in
/// increasing-degree order, then reverses.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    assert_eq!(a.nrows(), a.ncols(), "RCM: matrix must be square");
    let n = a.nrows();
    let degree = |v: usize| a.row(v).0.len();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();

    // BFS returning the farthest, lowest-degree vertex and marking nothing.
    let bfs_far = |start: usize, scratch: &mut Vec<i32>| -> usize {
        scratch.iter_mut().for_each(|d| *d = -1);
        let mut q = std::collections::VecDeque::new();
        scratch[start] = 0;
        q.push_back(start);
        let mut last_level: Vec<usize> = vec![start];
        let mut max_d = 0;
        while let Some(v) = q.pop_front() {
            let d = scratch[v];
            if d > max_d {
                max_d = d;
                last_level.clear();
            }
            if d == max_d {
                last_level.push(v);
            }
            for &w in a.row(v).0 {
                if w != v && scratch[w] < 0 {
                    scratch[w] = d + 1;
                    q.push_back(w);
                }
            }
        }
        *last_level
            .iter()
            .min_by_key(|&&v| degree(v))
            .expect("bfs visited at least the start vertex")
    };

    let mut scratch = vec![-1i32; n];
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        // Pseudo-peripheral start: two BFS sweeps from the seed.
        let far = bfs_far(seed, &mut scratch);
        let start = bfs_far(far, &mut scratch);

        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            neighbors.extend(
                a.row(v)
                    .0
                    .iter()
                    .copied()
                    .filter(|&w| w != v && !visited[w]),
            );
            neighbors.sort_unstable_by_key(|&w| degree(w));
            for &w in &neighbors {
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order.reverse();
    Permutation::new(order).expect("RCM produced a valid permutation")
}

/// Pieces smaller than this are ordered directly (RCM-style BFS) instead
/// of being dissected further.
const ND_LEAF: usize = 48;

/// Computes a separator-based nested-dissection ordering of a square sparse
/// matrix treated as an undirected graph.
///
/// Each piece is split by a BFS level structure rooted at a
/// pseudo-peripheral vertex: the level whose removal best balances the two
/// halves (smallest level near the size-weighted middle) becomes the vertex
/// separator. Both halves are ordered recursively, then the separator is
/// appended — so every separator is eliminated *after* the subgraphs it
/// decouples, which bounds fill to interactions within pieces plus their
/// separator borders. On structured lattices this asymptotically beats the
/// banded RCM ordering and, as a bonus for the supernodal factorization,
/// concentrates fill into large dense trailing supernodes.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn nested_dissection(a: &CsrMatrix) -> Permutation {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "nested dissection: matrix must be square"
    );
    let n = a.nrows();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // `level[v]` doubles as the visited marker of the current BFS
    // (generation-stamped so pieces never need a clear pass).
    let mut level = vec![0u32; n];
    let mut stamp = vec![0u32; n];
    let mut generation = 0u32;
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    // Work stack of pieces still to order. `emit_after` holds a separator to
    // append once the two halves above it on the stack are done; pieces are
    // Vec<usize> vertex lists.
    enum Work {
        Piece(Vec<usize>),
        Emit(Vec<usize>),
    }
    let mut stack: Vec<Work> = Vec::new();

    // Split the full graph into connected components first, then dissect
    // each component independently.
    {
        let mut seen = vec![false; n];
        for seed in 0..n {
            if seen[seed] {
                continue;
            }
            let mut comp = Vec::new();
            queue.clear();
            queue.push_back(seed);
            seen[seed] = true;
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &w in a.row(v).0 {
                    if w != v && !seen[w] {
                        seen[w] = true;
                        queue.push_back(w);
                    }
                }
            }
            stack.push(Work::Piece(comp));
        }
        // Components were pushed in discovery order; popping reverses them,
        // which is fine — any component order is valid.
    }

    // BFS over a piece from `start`, stamping levels; returns the number of
    // levels and the vertex count per level.
    while let Some(work) = stack.pop() {
        let piece = match work {
            Work::Emit(sep) => {
                order.extend_from_slice(&sep);
                continue;
            }
            Work::Piece(piece) => piece,
        };
        let split = if piece.len() <= ND_LEAF {
            None
        } else {
            split_piece(
                a,
                &piece,
                &mut stamp,
                &mut level,
                &mut generation,
                &mut queue,
            )
        };
        let Some(PieceSplit { below, sep, above }) = split else {
            // Leaf (small, or no useful separator): BFS order from a
            // pseudo-peripheral vertex, reversed — a cheap RCM-flavored
            // band ordering, good enough at this size.
            let mut local = bfs_order(
                a,
                &piece,
                &mut stamp,
                &mut level,
                &mut generation,
                &mut queue,
            );
            local.reverse();
            order.extend_from_slice(&local);
            continue;
        };
        // Halves may be internally disconnected; the recursion handles each
        // piece's components through the component split below.
        stack.push(Work::Emit(sep));
        for half in [below, above] {
            // Split a half into its connected components (removal of the
            // separator can fragment it).
            generation += 1;
            let gen = generation;
            for &v in &half {
                level[v] = 0;
                stamp[v] = gen;
            }
            let in_half = gen;
            generation += 1;
            let done = generation;
            for &v in &half {
                if stamp[v] != in_half {
                    continue; // already claimed by an earlier component
                }
                let mut comp = Vec::new();
                queue.clear();
                queue.push_back(v);
                stamp[v] = done;
                while let Some(u) = queue.pop_front() {
                    comp.push(u);
                    for &w in a.row(u).0 {
                        if w != u && stamp[w] == in_half {
                            stamp[w] = done;
                            queue.push_back(w);
                        }
                    }
                }
                stack.push(Work::Piece(comp));
            }
        }
    }

    Permutation::new(order).expect("nested dissection produced a valid permutation")
}

/// One BFS level-structure bisection of a connected piece: the vertices
/// strictly below the separator level, the separator itself, and the
/// vertices above it.
pub(crate) struct PieceSplit {
    /// Vertices on levels below the separator level.
    pub below: Vec<usize>,
    /// The vertex separator (one whole BFS level): removing it disconnects
    /// `below` from `above`.
    pub sep: Vec<usize>,
    /// Vertices on levels above the separator level.
    pub above: Vec<usize>,
}

/// Splits a connected `piece` by the BFS level-structure separator both
/// [`nested_dissection`] and the shard planner
/// ([`ShardPlan`](crate::ShardPlan)) use: levels are grown from a
/// pseudo-peripheral vertex, and the smallest level near the size-weighted
/// middle becomes the separator (never an end level, which would leave one
/// side empty). Returns `None` when the piece has fewer than three levels —
/// a (near-)complete subgraph with no useful separator.
///
/// `stamp`/`level`/`generation`/`queue` are the caller's generation-stamped
/// BFS scratch (full matrix dimension), so repeated splits never pay a
/// clear pass.
pub(crate) fn split_piece(
    a: &CsrMatrix,
    piece: &[usize],
    stamp: &mut [u32],
    level: &mut [u32],
    generation: &mut u32,
    queue: &mut std::collections::VecDeque<usize>,
) -> Option<PieceSplit> {
    // Level structure from a pseudo-peripheral vertex of the piece.
    let root = pseudo_peripheral(a, piece, stamp, level, generation, queue);
    *generation += 1;
    let member = *generation;
    for &v in piece {
        stamp[v] = member;
    }
    *generation += 1;
    let gen = *generation;
    queue.clear();
    stamp[root] = gen;
    level[root] = 0;
    queue.push_back(root);
    let mut level_counts: Vec<usize> = vec![0];
    let mut reached = 0usize;
    while let Some(v) = queue.pop_front() {
        reached += 1;
        let d = level[v];
        if d as usize >= level_counts.len() {
            level_counts.push(0);
        }
        level_counts[d as usize] += 1;
        for &w in a.row(v).0 {
            if w != v && stamp[w] == member {
                stamp[w] = gen;
                level[w] = d + 1;
                queue.push_back(w);
            }
        }
    }
    debug_assert_eq!(reached, piece.len(), "piece must be connected");
    let num_levels = level_counts.len();
    if num_levels < 3 {
        return None;
    }

    // Pick the separator level: the smallest level among the middle half of
    // the level structure.
    let lo = (num_levels / 4).max(1);
    let hi = (3 * num_levels / 4).min(num_levels - 2).max(lo);
    let sep_level = (lo..=hi)
        .min_by_key(|&l| level_counts[l])
        .expect("non-empty middle range");
    let sep_level = sep_level as u32;

    let mut below = Vec::new();
    let mut above = Vec::new();
    let mut sep = Vec::new();
    for &v in piece {
        match level[v].cmp(&sep_level) {
            std::cmp::Ordering::Less => below.push(v),
            std::cmp::Ordering::Equal => sep.push(v),
            std::cmp::Ordering::Greater => above.push(v),
        }
    }
    Some(PieceSplit { below, sep, above })
}

/// Recursively bisects the `nbx × nby` weight grid into up to `k`
/// axis-aligned rectangles `[x0, x1, y0, y1]` (inclusive bounds) of
/// near-proportional total weight, for the geometric shard planner
/// ([`ShardPlan::build_hinted`](crate::ShardPlan::build_hinted)).
///
/// Fully deterministic: each region splits along its longer side (ties
/// prefer x), at the cut minimizing the deviation from the
/// weight-proportional target (ties prefer the smaller index), and the
/// lower sub-region — which receives `⌊k/2⌋` of the region's share — is
/// emitted first. May return fewer than `k` rectangles when a region runs
/// out of blocks to cut.
pub(crate) fn bisect_weighted_grid(
    weights: &[u64],
    nbx: usize,
    nby: usize,
    k: usize,
) -> Vec<[usize; 4]> {
    assert_eq!(weights.len(), nbx * nby, "weight grid dimension mismatch");
    let mut out = Vec::with_capacity(k);
    if nbx == 0 || nby == 0 || k == 0 {
        return out;
    }
    bisect_rect(weights, nbx, [0, nbx - 1, 0, nby - 1], k, &mut out);
    out
}

/// Recursion step of [`bisect_weighted_grid`] over one inclusive rectangle.
fn bisect_rect(weights: &[u64], nbx: usize, rect: [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
    let [x0, x1, y0, y1] = rect;
    let (w, h) = (x1 - x0 + 1, y1 - y0 + 1);
    let k = k.min(w * h);
    if k <= 1 {
        out.push(rect);
        return;
    }
    let k1 = k / 2;
    // Longer side first; a side of one block cannot be cut.
    let along_x = if h == 1 {
        true
    } else if w == 1 {
        false
    } else {
        w >= h
    };
    let lines: Vec<u64> = if along_x {
        (x0..=x1)
            .map(|x| (y0..=y1).map(|y| weights[y * nbx + x]).sum())
            .collect()
    } else {
        (y0..=y1)
            .map(|y| (x0..=x1).map(|x| weights[y * nbx + x]).sum())
            .collect()
    };
    let total: u64 = lines.iter().sum();
    let target = total as f64 * k1 as f64 / k as f64;
    let mut best = (f64::INFINITY, 0usize);
    let mut prefix = 0u64;
    for (c, &line) in lines.iter().take(lines.len() - 1).enumerate() {
        prefix += line;
        let dev = (prefix as f64 - target).abs();
        if dev < best.0 {
            best = (dev, c);
        }
    }
    let cut = best.1;
    let (low, high) = if along_x {
        ([x0, x0 + cut, y0, y1], [x0 + cut + 1, x1, y0, y1])
    } else {
        ([x0, x1, y0, y0 + cut], [x0, x1, y0 + cut + 1, y1])
    };
    bisect_rect(weights, nbx, low, k1, out);
    bisect_rect(weights, nbx, high, k - k1, out);
}

/// BFS order of a (connected) piece, rooted at a pseudo-peripheral vertex
/// so the reversed order approximates a local RCM band reduction.
fn bfs_order(
    a: &CsrMatrix,
    piece: &[usize],
    stamp: &mut [u32],
    level: &mut [u32],
    generation: &mut u32,
    queue: &mut std::collections::VecDeque<usize>,
) -> Vec<usize> {
    if piece.is_empty() {
        return Vec::new();
    }
    let start = pseudo_peripheral(a, piece, stamp, level, generation, queue);
    // Membership stamp for the piece.
    *generation += 1;
    let member = *generation;
    for &v in piece {
        stamp[v] = member;
    }
    *generation += 1;
    let gen = *generation;
    let mut out = Vec::with_capacity(piece.len());
    queue.clear();
    queue.push_back(start);
    stamp[start] = gen;
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for &w in a.row(v).0 {
            if w != v && stamp[w] == member {
                stamp[w] = gen;
                queue.push_back(w);
            }
        }
    }
    // The piece is connected by construction of the callers.
    debug_assert_eq!(out.len(), piece.len(), "bfs_order piece must be connected");
    out
}

/// Pseudo-peripheral vertex of a connected piece: the endpoint of two BFS
/// sweeps (the classic Gibbs–Poole–Stockmeyer heuristic).
fn pseudo_peripheral(
    a: &CsrMatrix,
    piece: &[usize],
    stamp: &mut [u32],
    level: &mut [u32],
    generation: &mut u32,
    queue: &mut std::collections::VecDeque<usize>,
) -> usize {
    let mut start = piece[0];
    for _ in 0..2 {
        *generation += 1;
        let member = *generation;
        for &v in piece {
            stamp[v] = member;
        }
        *generation += 1;
        let gen = *generation;
        queue.clear();
        queue.push_back(start);
        stamp[start] = gen;
        level[start] = 0;
        let mut far = start;
        let mut far_level = 0u32;
        let mut far_degree = usize::MAX;
        while let Some(v) = queue.pop_front() {
            let d = level[v];
            let deg = a.row(v).0.len();
            if d > far_level || (d == far_level && deg < far_degree) {
                far = v;
                far_level = d;
                far_degree = deg;
            }
            for &w in a.row(v).0 {
                if w != v && stamp[w] == member {
                    stamp[w] = gen;
                    level[w] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        start = far;
    }
    start
}

/// Shape metrics of a weighted forest, used by the supernodal task
/// schedule (subtree weights become [`TaskDag`](crate::TaskDag) claim
/// priorities) and by `SupernodeStats`.
#[derive(Debug, Clone)]
pub(crate) struct TreeMetrics {
    /// Total weight of each node's subtree (itself included).
    pub subtree_weight: Vec<u64>,
    /// Nodes on the longest root-to-leaf path (0 for an empty forest).
    pub height: usize,
    /// Max/mean subtree weight over the forest's *parallel units*: the
    /// subtrees rooted at children of branch nodes (nodes with ≥ 2
    /// children), which are exactly the pieces a tree schedule can run
    /// concurrently. A pure chain has no branch nodes; its units are the
    /// roots themselves (max = total ⇒ no tree parallelism).
    pub max_parallel_subtree: u64,
    /// See [`TreeMetrics::max_parallel_subtree`].
    pub mean_parallel_subtree: f64,
}

/// Computes [`TreeMetrics`] over a parent-indexed forest in one ascending
/// pass. Requires the heap property `parent[i] > i` (roots marked by
/// `parent[i] >= len`), which elimination trees satisfy by construction.
pub(crate) fn tree_metrics(parent: &[usize], weight: &[u64]) -> TreeMetrics {
    let n = parent.len();
    debug_assert_eq!(weight.len(), n);
    let mut subtree_weight = weight.to_vec();
    let mut children = vec![0usize; n];
    // Tallest child subtree (nodes) per node.
    let mut child_height = vec![0usize; n];
    let mut height = 0usize;
    for i in 0..n {
        let p = parent[i];
        debug_assert!(p >= n || p > i, "tree_metrics needs parent[i] > i");
        let h = child_height[i] + 1;
        if p < n {
            subtree_weight[p] += subtree_weight[i];
            children[p] += 1;
            child_height[p] = child_height[p].max(h);
        } else {
            height = height.max(h);
        }
    }
    let mut units: Vec<u64> = (0..n)
        .filter(|&i| parent[i] < n && children[parent[i]] >= 2)
        .map(|i| subtree_weight[i])
        .collect();
    if units.is_empty() {
        units = (0..n)
            .filter(|&i| parent[i] >= n)
            .map(|i| subtree_weight[i])
            .collect();
    }
    let max_parallel_subtree = units.iter().copied().max().unwrap_or(0);
    let mean_parallel_subtree = if units.is_empty() {
        0.0
    } else {
        units.iter().sum::<u64>() as f64 / units.len() as f64
    };
    TreeMetrics {
        subtree_weight,
        height,
        max_parallel_subtree,
        mean_parallel_subtree,
    }
}

/// Half-bandwidth of a square sparse matrix: `max |i - j|` over stored
/// entries. Used to quantify what RCM buys us (see the ordering ablation
/// benchmark).
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut b = 0usize;
    for i in 0..a.nrows() {
        for &j in a.row(i).0 {
            b = b.max(i.abs_diff(j));
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn weighted_grid_bisection_covers_and_balances() {
        // Uniform 4×4 grid, k=4: exact quadrants.
        let rects = bisect_weighted_grid(&[1u64; 16], 4, 4, 4);
        assert_eq!(
            rects,
            vec![[0, 1, 0, 1], [0, 1, 2, 3], [2, 3, 0, 1], [2, 3, 2, 3]]
        );
        // Any (grid, k): the rectangles tile the grid exactly.
        for (nbx, nby, k) in [(6, 6, 4), (5, 3, 7), (1, 8, 3), (3, 1, 2), (2, 2, 9)] {
            let weights: Vec<u64> = (0..nbx * nby).map(|i| 1 + (i as u64 % 3)).collect();
            let rects = bisect_weighted_grid(&weights, nbx, nby, k);
            assert!(!rects.is_empty() && rects.len() <= k);
            let mut covered = vec![0usize; nbx * nby];
            for &[x0, x1, y0, y1] in &rects {
                assert!(x0 <= x1 && x1 < nbx && y0 <= y1 && y1 < nby);
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        covered[y * nbx + x] += 1;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "rectangles must tile");
        }
    }

    #[test]
    fn weighted_grid_bisection_follows_the_weights() {
        // All weight in the left column: the k=2 cut isolates it.
        let mut weights = vec![0u64; 16];
        for y in 0..4 {
            weights[y * 4] = 100;
        }
        weights[5] = 1;
        let rects = bisect_weighted_grid(&weights, 4, 4, 2);
        assert_eq!(rects, vec![[0, 0, 0, 3], [1, 3, 0, 3]]);
        // Determinism.
        assert_eq!(rects, bisect_weighted_grid(&weights, 4, 4, 2));
    }

    #[test]
    fn permutation_validation() {
        assert!(Permutation::new(vec![0, 1, 2]).is_some());
        assert!(Permutation::new(vec![0, 0, 2]).is_none());
        assert!(Permutation::new(vec![0, 3]).is_none());
    }

    #[test]
    fn apply_and_inverse_are_inverses() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let x = [10.0, 20.0, 30.0, 40.0];
        let y = p.apply(&x);
        assert_eq!(y, vec![30.0, 10.0, 40.0, 20.0]);
        assert_eq!(p.apply_inverse(&y), x.to_vec());
    }

    /// RCM on a randomly-permuted 1-D chain should recover bandwidth 1.
    #[test]
    fn rcm_recovers_chain_bandwidth() {
        let n = 50;
        // Build a chain with scrambled labels: vertex i <-> sigma(i).
        let sigma: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            // Deterministic scramble.
            for i in 0..n {
                let j = (i * 17 + 5) % n;
                v.swap(i, j);
            }
            v
        };
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(sigma[i], sigma[i], 2.0);
            if i + 1 < n {
                coo.push(sigma[i], sigma[i + 1], -1.0);
                coo.push(sigma[i + 1], sigma[i], -1.0);
            }
        }
        let a = coo.to_csr();
        assert!(bandwidth(&a) > 1);
        let p = reverse_cuthill_mckee(&a);
        let b = a.permuted_symmetric(&p);
        assert_eq!(bandwidth(&b), 1);
    }

    use crate::test_operators::laplacian_2d as lattice;

    /// A banded operator with dense rows, the shape of the global stage's
    /// Galerkin-reduced operators (every row couples to every interpolation
    /// DoF of the neighboring blocks — hundreds of entries).
    fn dense_row_band(n: usize, halfwidth: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let lo = i.saturating_sub(halfwidth);
            let hi = (i + halfwidth + 1).min(n);
            for j in lo..hi {
                let v = if i == j {
                    2.0 * halfwidth as f64 + 1.0
                } else {
                    -0.5
                };
                coo.push(i, j, v);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn auto_probe_picks_nd_for_large_sparse_lattices() {
        let a = lattice(80, 80); // 6400 DoFs, ~5 entries/row, bandwidth 80
        let probe = StructureProbe::of(&a);
        assert!(probe.mean_row_nnz < 6.0, "5-point stencil: {probe:?}");
        assert!(probe.bandwidth_estimate >= 80, "{probe:?}");
        assert!(probe.prefers_nested_dissection(), "{probe:?}");
        assert_eq!(
            FillOrdering::Auto.resolve(&a),
            FillOrdering::NestedDissection
        );
    }

    #[test]
    fn auto_probe_picks_rcm_for_dense_row_operators() {
        // Well above the size floor, but rows are far too dense for useful
        // separators — the global-stage reduced-operator shape.
        let a = dense_row_band(4500, 12);
        let probe = StructureProbe::of(&a);
        assert!(probe.mean_row_nnz > ND_MAX_MEAN_ROW_NNZ, "{probe:?}");
        assert!(!probe.prefers_nested_dissection(), "{probe:?}");
        assert_eq!(FillOrdering::Auto.resolve(&a), FillOrdering::Rcm);
    }

    #[test]
    fn auto_probe_picks_rcm_for_small_operators() {
        let a = lattice(20, 20); // sparse, but ordering cost dominates
        assert!(!StructureProbe::of(&a).prefers_nested_dissection());
        assert_eq!(FillOrdering::Auto.resolve(&a), FillOrdering::Rcm);
    }

    #[test]
    fn auto_permutation_is_valid_and_matches_resolution() {
        for a in [lattice(80, 80), lattice(6, 6)] {
            let resolved = FillOrdering::Auto.resolve(&a);
            assert_ne!(resolved, FillOrdering::Auto);
            let p = FillOrdering::Auto.permutation(&a);
            assert_eq!(p.as_slice(), resolved.permutation(&a).as_slice());
        }
    }

    #[test]
    fn tree_metrics_on_a_chain_and_a_fork() {
        const NONE: usize = usize::MAX;
        // Chain 0 → 1 → 2: no branch nodes, the unit is the whole tree.
        let chain = tree_metrics(&[1, 2, NONE], &[5, 7, 11]);
        assert_eq!(chain.subtree_weight, vec![5, 12, 23]);
        assert_eq!(chain.height, 3);
        assert_eq!(chain.max_parallel_subtree, 23);
        // Fork: 0 and 1 are children of 2 (a branch node), 3 chains above.
        let fork = tree_metrics(&[2, 2, 3, NONE], &[10, 4, 2, 1]);
        assert_eq!(fork.subtree_weight, vec![10, 4, 16, 17]);
        assert_eq!(fork.height, 3);
        assert_eq!(fork.max_parallel_subtree, 10);
        assert!((fork.mean_parallel_subtree - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 2, 1.0);
        coo.push(2, 2, 1.0);
        coo.push(3, 3, 1.0);
        let a = coo.to_csr();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 4);
    }
}
