//! Analytic heap accounting.
//!
//! The paper's Tables 1 and 2 report peak memory usage of each simulator. We
//! account for memory analytically: every major data structure knows the size
//! of its heap allocations, and each pipeline stage reports the sum of the
//! structures that are live simultaneously. This is deterministic and
//! portable; the `repro` binary additionally reports the OS-level `VmHWM` on
//! Linux for a sanity cross-check.

/// Types that can report the bytes they currently hold on the heap.
///
/// # Example
///
/// ```
/// use morestress_linalg::{CooMatrix, MemoryFootprint};
///
/// let mut coo = CooMatrix::new(10, 10);
/// coo.push(0, 0, 1.0);
/// let csr = coo.to_csr();
/// assert!(csr.heap_bytes() > 0);
/// ```
pub trait MemoryFootprint {
    /// Number of heap bytes held by this value (capacity, not length).
    fn heap_bytes(&self) -> usize;
}

impl<T> MemoryFootprint for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: MemoryFootprint> MemoryFootprint for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, MemoryFootprint::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_footprint_counts_capacity() {
        let v: Vec<f64> = Vec::with_capacity(100);
        assert_eq!(v.heap_bytes(), 800);
        let none: Option<Vec<f64>> = None;
        assert_eq!(none.heap_bytes(), 0);
    }
}
