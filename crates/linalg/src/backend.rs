//! The unified solver backend layer.
//!
//! Every linear solve in the MORE-Stress workspace — the full-FEM reference
//! driver, the ROM global stage, the coarse chiplet model — routes through
//! the [`SolverBackend`] trait defined here instead of hand-wiring
//! [`SparseCholesky`], [`solve_cg`](crate::solve_cg) or
//! [`solve_gmres`](crate::solve_gmres) calls. The layer separates the two
//! phases every sparse solver has:
//!
//! 1. **prepare** — the expensive, per-matrix work (symbolic + numeric
//!    Cholesky factorization, or preconditioner construction), producing a
//!    [`PreparedSolver`];
//! 2. **solve** — the cheap, per-right-hand-side work, which can be repeated
//!    (`solve`) or batched task-parallel over many loads (`solve_many`).
//!
//! This split is the paper's own economics (§4.2: *"the time-consuming
//! decomposition needs to be performed only once and the intermediate
//! results can be reused"*) promoted to an architectural boundary, so the
//! global stage inherits it too: a [`FactorCache`] memoizes prepared solvers
//! by matrix fingerprint, turning the paper's Table 1/2 workloads — one
//! lattice, many thermal loads — into one factorization plus k cheap solves.
//!
//! Every solve returns a [`SolveReport`] carrying iterations, residual,
//! setup/solve wall time and an analytic memory estimate, so cost accounting
//! is uniform across backends and layers.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::schur::SchurSolver;
use crate::{
    solve_cg, solve_gmres, CgOptions, CsrMatrix, DenseMatrix, FillOrdering, GmresOptions,
    IdentityPreconditioner, JacobiPreconditioner, LinalgError, MemoryFootprint, PartitionHint,
    Preconditioner, ShardPlanStats, SparseCholesky, SsorPreconditioner, SupernodalCholesky,
    SupernodalOptions, SupernodeStats, WorkPool,
};

// ---------------------------------------------------------------------------
// LinearOperator
// ---------------------------------------------------------------------------

/// A matrix-free linear operator `y = A x`.
///
/// The iterative solvers ([`solve_cg`], [`solve_gmres`]) are generic over
/// this trait, so they work on any operator that can apply itself — a stored
/// [`CsrMatrix`], a dense reduced operator, or a composite that never
/// materializes its entries.
pub trait LinearOperator {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// Computes `y = A x` into `y` (`y.len() == nrows`, `x.len() == ncols`).
    fn apply_into(&self, x: &[f64], y: &mut [f64]);

    /// Computes `A x` into a fresh vector.
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows()];
        self.apply_into(x, &mut y);
        y
    }

    /// Relative residual `‖b − A x‖₂ / ‖b‖₂` (absolute if `‖b‖₂ = 0`).
    fn rel_residual(&self, x: &[f64], b: &[f64]) -> f64 {
        let ax = self.apply(x);
        let r = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        let nb = crate::norm2(b);
        if nb > 0.0 {
            r / nb
        } else {
            r
        }
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_into(x, y);
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.spmv(x)
    }

    fn rel_residual(&self, x: &[f64], b: &[f64]) -> f64 {
        self.residual(x, b)
    }
}

impl LinearOperator for DenseMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x));
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.matvec(x)
    }
}

// ---------------------------------------------------------------------------
// Preconditioner selection
// ---------------------------------------------------------------------------

/// Declarative preconditioner choice for the iterative backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondSpec {
    /// No preconditioning.
    Identity,
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// Symmetric successive over-relaxation with relaxation factor `omega`.
    Ssor {
        /// Relaxation factor in `(0, 2)`.
        omega: f64,
    },
}

impl PrecondSpec {
    /// Builds the preconditioner for `a`, returning it with an analytic
    /// heap estimate of what the build allocated.
    pub fn build(&self, a: &CsrMatrix) -> (Box<dyn Preconditioner + Send + Sync>, usize) {
        let n = a.nrows();
        match *self {
            PrecondSpec::Identity => (Box::new(IdentityPreconditioner), 0),
            PrecondSpec::Jacobi => (
                Box::new(JacobiPreconditioner::new(a)),
                n * std::mem::size_of::<f64>(),
            ),
            PrecondSpec::Ssor { omega } => (
                Box::new(SsorPreconditioner::new(a, omega)),
                // SSOR clones the operator and stores the diagonal.
                a.heap_bytes() + n * std::mem::size_of::<f64>(),
            ),
        }
    }

    fn fingerprint(&self) -> u64 {
        match *self {
            PrecondSpec::Identity => 1,
            PrecondSpec::Jacobi => 2,
            PrecondSpec::Ssor { omega } => 3 ^ omega.to_bits().rotate_left(8),
        }
    }
}

// ---------------------------------------------------------------------------
// Verification + degradation ladder types
// ---------------------------------------------------------------------------

/// Residual-verification policy for prepared solves.
///
/// Verification computes the true relative residual `‖b − Ax‖/‖b‖` against
/// the *original* operator after every solve — an O(nnz) SpMV, negligible
/// next to a factorization — and records it in
/// [`SolveReport::verified_residual`]. It never mutates the solution, so
/// turning it on cannot change solve results bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum VerifyPolicy {
    /// No residual verification (the default).
    #[default]
    Off,
    /// Compute and record the residual; never fail the solve.
    Report,
    /// Compute and record the residual; a residual above `tol` (or a
    /// non-finite one) fails the solve with
    /// [`LinalgError::DidNotConverge`] — or, under the resilient ladder,
    /// triggers the next rung.
    Enforce {
        /// Largest acceptable relative residual.
        tol: f64,
    },
}

impl VerifyPolicy {
    pub(crate) fn fingerprint(&self) -> u64 {
        match *self {
            VerifyPolicy::Off => 0,
            VerifyPolicy::Report => 0x5,
            VerifyPolicy::Enforce { tol } => 0xA ^ tol.to_bits().rotate_left(8),
        }
    }
}

/// Rungs of the resilience degradation ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Iterative refinement reusing the existing (possibly shifted) factor.
    Refined,
    /// Diagonal-shift regularized re-factorization.
    Regularized,
    /// GMRES on the raw operator action.
    Gmres,
    /// A suspect cached factor was invalidated and re-prepared from
    /// scratch (the [`FactorCache`] stale-entry self-heal).
    Rebuilt,
}

/// One recorded escalation of the degradation ladder: the rung the solve
/// moved to, and the typed error that forced the move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationStep {
    /// Rung the ladder escalated to.
    pub rung: Rung,
    /// The failure that triggered the escalation.
    pub error: LinalgError,
}

/// Maximum [`DegradationStep`]s a trail retains.
pub const MAX_DEGRADATION_STEPS: usize = 4;

/// A fixed-capacity, `Copy` trail of [`DegradationStep`]s — the structured
/// history of every recovery a prepare/solve performed, carried in
/// [`SolveReport::degradation`] instead of being discarded. At most
/// [`MAX_DEGRADATION_STEPS`] steps are kept (the ladder has fewer rungs, so
/// saturation only loses repeats).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegradationTrail {
    steps: [Option<DegradationStep>; MAX_DEGRADATION_STEPS],
}

impl DegradationTrail {
    /// An empty trail.
    pub const fn new() -> Self {
        Self {
            steps: [None; MAX_DEGRADATION_STEPS],
        }
    }

    /// Records a step (saturating: steps past the capacity are dropped).
    pub fn push(&mut self, step: DegradationStep) {
        if let Some(slot) = self.steps.iter_mut().find(|s| s.is_none()) {
            *slot = Some(step);
        }
    }

    /// The recorded steps, in escalation order.
    pub fn steps(&self) -> impl Iterator<Item = &DegradationStep> {
        self.steps.iter().flatten()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.iter().flatten().count()
    }

    /// Whether no degradation was recorded (the clean path).
    pub fn is_empty(&self) -> bool {
        self.steps[0].is_none()
    }

    /// The deepest rung reached, if any degradation was recorded.
    pub fn last(&self) -> Option<&DegradationStep> {
        self.steps.iter().flatten().last()
    }
}

/// Fails with [`LinalgError::NonFinite`] if `values` holds a NaN/Inf.
pub(crate) fn check_finite(values: &[f64], context: &'static str) -> Result<(), LinalgError> {
    match values.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(LinalgError::NonFinite { context, index }),
        None => Ok(()),
    }
}

/// Scans the stored operator values for NaN/Inf (O(nnz)).
pub(crate) fn check_finite_matrix(a: &CsrMatrix) -> Result<(), LinalgError> {
    check_finite(a.values(), "operator")
}

// ---------------------------------------------------------------------------
// SolveReport
// ---------------------------------------------------------------------------

/// Uniform cost/quality accounting of one (possibly batched) solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Name of the backend that ran (`"cholesky"`, `"cg"`, `"gmres"`).
    pub backend: &'static str,
    /// Wall time of the one-time preparation (factorization or
    /// preconditioner build) behind this solve.
    pub setup_time: Duration,
    /// Wall time of the solve itself (summed over the batch for
    /// [`PreparedSolver::solve_many`]).
    pub solve_time: Duration,
    /// Iterations performed (summed over the batch); `None` for direct
    /// solves.
    pub iterations: Option<usize>,
    /// Relative residual estimate (worst over the batch); `None` for direct
    /// solves, which do not compute it.
    pub residual: Option<f64>,
    /// Analytic heap estimate (bytes) of the solver state: factor or
    /// preconditioner plus iteration workspace.
    pub solver_bytes: usize,
    /// Number of right-hand sides this report covers.
    pub rhs_count: usize,
    /// [`WorkPool`] worker slots that solved at least one right-hand side
    /// (1 for single-RHS and serial solves). Honest telemetry of what ran,
    /// bounded by the `threads` request and the pool cap — but the exact
    /// value is scheduling-dependent, so don't gate regressions on it.
    pub workers: usize,
    /// [`WorkPool`] worker slots the numeric *factorization* behind this
    /// solve used (1 for serial factorization, the scalar kernel and the
    /// iterative engines). Same scheduling-dependent-telemetry caveat as
    /// [`workers`](SolveReport::workers).
    pub factor_workers: usize,
    /// Shape statistics of the supernodal factor behind this solve —
    /// supernode count, etree height, weighted critical path, subtree
    /// balance; `None` for iterative engines and for the scalar reference
    /// kernel.
    pub supernode_stats: Option<SupernodeStats>,
    /// Resolved [`DenseKernel`](crate::DenseKernel) name (`"scalar"`,
    /// `"blocked"`, `"avx2"`) behind the supernodal factorization this
    /// solve ran on — after runtime CPU-feature dispatch, so it reports
    /// what actually executed. `None` for the iterative engines and the
    /// scalar up-looking reference factorization, which do not route
    /// through the microkernel layer; for the sharded engine, the kernel
    /// of the interior block factors.
    pub kernel: Option<&'static str>,
    /// Interior shards of the [`Sharded`](crate::Sharded) backend behind
    /// this solve (1 for every monolithic backend).
    pub shards: usize,
    /// Interface DoFs coupling the shards in the Schur-complement solve
    /// (0 for monolithic backends).
    pub interface_dofs: usize,
    /// Largest single-shard solver footprint in bytes — the peak factor
    /// memory any one shard needs, which is what sharding bounds (0 for
    /// monolithic backends, whose whole factor is one block).
    pub shard_factor_bytes: usize,
    /// Interior shards whose factor + clique were (re)computed by the
    /// preparation behind this solve. A from-scratch sharded prepare
    /// refactors every shard (`shards_refactored == shards`); the
    /// incremental re-preparation after a value-only perturbation
    /// refactors only the touched shards. 0 for monolithic backends.
    pub shards_refactored: usize,
    /// Interior shards whose factor and stored clique were reused intact
    /// from the previous preparation by the incremental sharded path
    /// (`shards_refactored + shards_reused == shards` for the sharded
    /// engine; 0 for monolithic backends and from-scratch prepares).
    pub shards_reused: usize,
    /// True relative residual `‖b − Ax‖/‖b‖` against the original operator
    /// (worst over the batch), when a [`VerifyPolicy`] other than `Off` is
    /// active or the resilient ladder ran; `None` when verification is off.
    pub verified_residual: Option<f64>,
    /// Structured trail of every degradation-ladder escalation behind this
    /// solve — preparation-time steps (regularized re-factor, GMRES
    /// fallback) followed by solve-time steps (refinement, GMRES rung).
    /// Empty on the clean path. For batched solves, the deepest per-RHS
    /// trail is reported.
    pub degradation: DegradationTrail,
    /// Blocks of the sharded engine running on a degraded (regularized or
    /// iterative) solver instead of a clean direct factor — interior shards
    /// plus, when the interface system itself fell down the ladder, one
    /// more. 0 for monolithic backends and fully-clean sharded solves.
    pub shards_degraded: usize,
    /// Quality accounting of the [`ShardPlan`](crate::ShardPlan) behind a
    /// sharded solve — per-shard rows/estimated factor work, balance
    /// ratio, interface fraction, and which planner route produced it.
    /// `None` for monolithic backends.
    pub plan_stats: Option<ShardPlanStats>,
}

/// One solved right-hand side with its report.
#[derive(Debug, Clone)]
pub struct BackendSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Cost/quality accounting.
    pub report: SolveReport,
}

/// A batch of solved right-hand sides with one aggregate report.
#[derive(Debug, Clone)]
pub struct BatchSolution {
    /// Solutions, in right-hand-side order.
    pub xs: Vec<Vec<f64>>,
    /// Aggregate cost/quality accounting.
    pub report: SolveReport,
}

// ---------------------------------------------------------------------------
// SolverBackend + PreparedSolver
// ---------------------------------------------------------------------------

/// A linear solver strategy: factorization- or iteration-based.
///
/// A backend is cheap configuration; [`SolverBackend::prepare`] does the
/// per-matrix work once and returns a [`PreparedSolver`] that can solve any
/// number of right-hand sides (also batched and task-parallel).
pub trait SolverBackend: fmt::Debug + Send + Sync {
    /// Short stable name for reports and cache keys.
    fn name(&self) -> &'static str;

    /// Performs the one-time per-matrix setup.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] from direct factorization of an
    /// indefinite operator; dimension errors for non-square input.
    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError>;

    /// Fingerprint of the backend *configuration* (tolerances,
    /// preconditioner, restart length, …), mixed into [`FactorCache`] keys
    /// so differently-configured backends never share an entry.
    fn config_fingerprint(&self) -> u64;

    /// Whether a cached solver prepared under a *different* configuration
    /// fingerprint is still interchangeable with what `prepare(a)` would
    /// produce for this configuration.
    ///
    /// [`FactorCache::prepare`] consults this after an exact-key miss, for
    /// entries whose cached operator is value-identical to `a`: returning
    /// `true` dedupes configurations that are spelled differently but
    /// degenerate to the same prepared object (e.g. two requested shard
    /// counts whose [`ShardPlan`](crate::ShardPlan)s collapse to the same
    /// partition on a small operator). The default is conservative:
    /// configurations never share entries.
    fn accepts_cached(&self, _prepared: &PreparedSolver, _a: &CsrMatrix) -> bool {
        false
    }

    /// Supplies (or clears) the geometry [`PartitionHint`] the next
    /// [`prepare`](SolverBackend::prepare) should partition under.
    ///
    /// Only the [`Sharded`](crate::Sharded) backend acts on it — the
    /// default is a no-op, so callers that know the operator's block-grid
    /// provenance (the ROM global stage) can hand it to whatever backend
    /// they were configured with without downcasting.
    fn set_partition_hint(&self, _hint: Option<Arc<PartitionHint>>) {}
}

/// A prepared direct factorization: the supernodal blocked kernel (the
/// default) or the scalar up-looking reference kernel.
#[derive(Debug)]
enum DirectFactor {
    Scalar(SparseCholesky),
    Supernodal(SupernodalCholesky),
}

impl DirectFactor {
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        match self {
            DirectFactor::Scalar(chol) => chol.solve(b),
            DirectFactor::Supernodal(chol) => chol.solve(b),
        }
    }

    /// In-place panel solve with caller scratch (see [`DirectFactor::
    /// tmp_len`] for its required length).
    fn solve_panel_with(&self, rhs: &mut [f64], nrhs: usize, tmp: &mut [f64]) {
        match self {
            DirectFactor::Scalar(chol) => chol.solve_panel_with(rhs, nrhs, tmp),
            DirectFactor::Supernodal(chol) => chol.solve_panel_with(rhs, nrhs, tmp),
        }
    }

    /// Scratch length the panel solve needs.
    fn tmp_len(&self) -> usize {
        match self {
            DirectFactor::Scalar(chol) => chol.dim(),
            DirectFactor::Supernodal(chol) => chol.scratch_len(),
        }
    }

    fn factor_nnz(&self) -> usize {
        match self {
            DirectFactor::Scalar(chol) => chol.factor_nnz(),
            DirectFactor::Supernodal(chol) => chol.factor_nnz(),
        }
    }

    fn supernode_stats(&self) -> Option<SupernodeStats> {
        match self {
            DirectFactor::Scalar(_) => None,
            DirectFactor::Supernodal(chol) => Some(chol.stats()),
        }
    }

    /// Resolved microkernel name (`None` for the scalar up-looking
    /// reference factorization, which predates the kernel layer).
    fn kernel_name(&self) -> Option<&'static str> {
        match self {
            DirectFactor::Scalar(_) => None,
            DirectFactor::Supernodal(chol) => Some(chol.kernel_name()),
        }
    }

    /// Worker slots the numeric factorization used (1 for the scalar
    /// kernel's serial up-looking sweep).
    fn factor_workers(&self) -> usize {
        match self {
            DirectFactor::Scalar(_) => 1,
            DirectFactor::Supernodal(chol) => chol.factor_workers(),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            DirectFactor::Scalar(chol) => chol.heap_bytes(),
            DirectFactor::Supernodal(chol) => chol.heap_bytes(),
        }
    }
}

enum Engine {
    /// Boxed: a supernodal factor is by far the largest variant, and
    /// `PreparedSolver`s travel through caches and `Arc`s by value.
    Direct(Box<DirectFactor>),
    /// The domain-decomposition engine of the [`Sharded`](crate::Sharded)
    /// backend: per-shard interior factors + a factored interface Schur
    /// complement. `Arc`-shared so the backend can retain the previous
    /// preparation as the base of the incremental re-factorization path.
    Sharded(Arc<SchurSolver>),
    Cg {
        precond: Box<dyn Preconditioner + Send + Sync>,
        opts: CgOptions,
    },
    Gmres {
        precond: Box<dyn Preconditioner + Send + Sync>,
        opts: GmresOptions,
    },
    /// The degradation-ladder engine of the [`Resilient`] backend: a direct
    /// factor (possibly of a diagonally-shifted operator) plus the
    /// refinement and lazily-built GMRES rungs below it.
    Resilient(ResilientEngine),
}

impl Engine {
    fn label(&self) -> &'static str {
        match self {
            Engine::Direct(_) => "cholesky",
            Engine::Sharded(_) => "sharded",
            Engine::Cg { .. } => "cg",
            Engine::Gmres { .. } => "gmres",
            Engine::Resilient(_) => "resilient",
        }
    }
}

/// Runtime state of the [`Resilient`] ladder: the direct rung and the
/// machinery to fall below it per solve.
pub(crate) struct ResilientEngine {
    /// The prepared direct rung — a factor of `A` itself (`shift == 0`) or
    /// of the regularized `A + shift·I`.
    direct: Arc<PreparedSolver>,
    /// Diagonal shift of the factored operator (0 for a clean factor).
    shift: f64,
    /// Enforced relative-residual tolerance of the ladder.
    tol: f64,
    /// Refinement budget of the refinement rung.
    refine: crate::RefineOptions,
    /// Options of the GMRES bottom rung.
    gmres_opts: GmresOptions,
    /// The GMRES rung, built on first use (most solves never reach it).
    gmres: Mutex<Option<Arc<PreparedSolver>>>,
}

impl ResilientEngine {
    /// Walks the solve-time rungs for one right-hand side: direct solve →
    /// verified residual → iterative refinement reusing the factor → GMRES.
    fn solve(&self, a: &Arc<CsrMatrix>, b: &[f64]) -> EngineResult {
        let mut trail = DegradationTrail::new();
        let mut x = match self.direct.solve(b) {
            Ok(sol) => sol.x,
            // A non-finite direct solution (severely ill-conditioned
            // factor) cannot be refined — fall straight to GMRES.
            Err(err) => return self.gmres_rung(a, b, err, 0, &mut trail),
        };
        let rr = a.residual(&x, b);
        if rr <= self.tol {
            return Ok(EngineSolve {
                x,
                iterations: None,
                residual: None,
                verified: Some(rr),
                trail,
            });
        }
        // Refinement rung: reuse the (possibly shifted) factor to solve the
        // correction equation. Stall detection keeps the best iterate.
        trail.push(DegradationStep {
            rung: Rung::Refined,
            error: LinalgError::DidNotConverge {
                iterations: 0,
                residual: rr,
                restarts: 0,
            },
        });
        let factor = &self.direct;
        let (sweeps, refined) = crate::refine(
            a.as_ref(),
            b,
            &mut x,
            |r| match factor.solve(r) {
                Ok(sol) => sol.x,
                // A non-finite correction stalls the sweep, which rolls
                // back to the best iterate and stops.
                Err(_) => vec![f64::NAN; r.len()],
            },
            crate::RefineOptions {
                tol: self.tol,
                ..self.refine
            },
        );
        if refined <= self.tol {
            return Ok(EngineSolve {
                x,
                iterations: Some(sweeps),
                residual: Some(refined),
                verified: Some(refined),
                trail,
            });
        }
        self.gmres_rung(
            a,
            b,
            LinalgError::DidNotConverge {
                iterations: sweeps,
                residual: refined,
                restarts: 0,
            },
            sweeps,
            &mut trail,
        )
    }

    /// The bottom rung: GMRES on the original operator action, prepared
    /// lazily and shared across right-hand sides.
    fn gmres_rung(
        &self,
        a: &Arc<CsrMatrix>,
        b: &[f64],
        cause: LinalgError,
        sweeps: usize,
        trail: &mut DegradationTrail,
    ) -> EngineResult {
        trail.push(DegradationStep {
            rung: Rung::Gmres,
            error: cause,
        });
        let gmres = {
            let mut slot = self.gmres.lock().expect("gmres rung poisoned");
            match &*slot {
                Some(prepared) => Arc::clone(prepared),
                None => {
                    let prepared = Arc::new(
                        Gmres {
                            opts: GmresOptions {
                                tol: self.tol,
                                ..self.gmres_opts
                            },
                            precond: PrecondSpec::Jacobi,
                        }
                        .prepare(Arc::clone(a))?,
                    );
                    *slot = Some(Arc::clone(&prepared));
                    prepared
                }
            }
        };
        let sol = gmres.solve(b)?;
        let rr = a.residual(&sol.x, b);
        Ok(EngineSolve {
            x: sol.x,
            iterations: sol.report.iterations.map(|it| it + sweeps),
            residual: sol.report.residual,
            verified: Some(rr),
            trail: *trail,
        })
    }
}

/// The reusable product of [`SolverBackend::prepare`]: a factorization or a
/// built preconditioner, ready to solve many right-hand sides.
///
/// All state is immutable after preparation, so a `PreparedSolver` is
/// `Send + Sync` and [`solve`](Self::solve) takes `&self` — many loads can
/// be solved concurrently from one shared factor, which is exactly how the
/// paper's one-shot local stage (and our batched global stage) works.
pub struct PreparedSolver {
    matrix: Arc<CsrMatrix>,
    engine: Engine,
    setup_time: Duration,
    /// Bytes of the shared, reusable state (factor or preconditioner).
    shared_bytes: usize,
    /// Bytes of the per-solve workspace (work/Krylov vectors, or one panel
    /// scratch for the direct engines) — allocated once per *concurrent*
    /// worker in the batched path.
    workspace_bytes: usize,
    /// Right-hand sides per panel of the batched direct path (1 collapses
    /// it to task-per-RHS; ignored by the iterative engines).
    panel_width: usize,
    /// Residual-verification policy every solve through this solver runs
    /// under (the resilient engine self-verifies and ignores this).
    verify: VerifyPolicy,
    /// Degradation steps recorded while *preparing* this solver (regularized
    /// re-factor, prepare-time GMRES fallback) — the prefix of every
    /// [`SolveReport::degradation`] trail it emits.
    prep_trail: DegradationTrail,
}

impl fmt::Debug for PreparedSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedSolver")
            .field("backend", &self.engine.label())
            .field("dim", &self.dim())
            .field("setup_time", &self.setup_time)
            .field("solver_bytes", &self.solver_bytes())
            .finish()
    }
}

/// One engine solve: the solution plus its accounting.
struct EngineSolve {
    x: Vec<f64>,
    iterations: Option<usize>,
    residual: Option<f64>,
    /// True relative residual, when the engine verified it itself (the
    /// resilient ladder always does).
    verified: Option<f64>,
    /// Solve-time degradation steps (empty for every non-resilient engine).
    trail: DegradationTrail,
}

type EngineResult = Result<EngineSolve, LinalgError>;

impl PreparedSolver {
    /// Wraps an assembled [`SchurSolver`] — the constructor
    /// `Sharded::prepare` uses.
    pub(crate) fn from_sharded(
        matrix: Arc<CsrMatrix>,
        schur: Arc<SchurSolver>,
        setup_time: Duration,
        verify: VerifyPolicy,
    ) -> Self {
        let shared_bytes = schur.shared_bytes();
        let workspace_bytes = schur.workspace_bytes();
        // A preparation that contained per-shard breakdowns carries the
        // first contained shard's ladder trail as its own.
        let prep_trail = schur.degradation_trail();
        Self {
            matrix,
            engine: Engine::Sharded(schur),
            setup_time,
            shared_bytes,
            workspace_bytes,
            panel_width: 1,
            verify,
            prep_trail,
        }
    }

    /// Degradation steps recorded while preparing this solver (empty on the
    /// clean path) — the prefix of every report trail it emits.
    pub fn prep_degradation(&self) -> &DegradationTrail {
        &self.prep_trail
    }

    /// The verification policy solves through this solver run under.
    pub fn verify_policy(&self) -> VerifyPolicy {
        self.verify
    }

    /// Test-support: rebinds the prepared engine to a different operator
    /// handle, deliberately making the factor inconsistent with the matrix
    /// it claims to solve — the fault-injection cache corruption.
    pub(crate) fn rebind_matrix(mut self, matrix: Arc<CsrMatrix>) -> Self {
        self.matrix = matrix;
        self
    }

    /// This solver with its verification policy replaced — the way to turn
    /// residual verification on for backends whose configuration does not
    /// expose it (the iterative engines), or to tighten/loosen it after
    /// preparation. Verification never mutates the solution, so changing
    /// the policy never changes solve results, only their checking.
    pub fn with_verify(mut self, verify: VerifyPolicy) -> Self {
        self.verify = verify;
        self
    }

    /// Name of the backend that prepared this solver.
    pub fn backend(&self) -> &'static str {
        self.engine.label()
    }

    /// Dimension of the prepared operator.
    pub fn dim(&self) -> usize {
        self.matrix.nrows()
    }

    /// The prepared operator.
    pub fn matrix(&self) -> &Arc<CsrMatrix> {
        &self.matrix
    }

    /// Wall time the preparation took.
    pub fn setup_time(&self) -> Duration {
        self.setup_time
    }

    /// Analytic heap estimate (bytes) of factor/preconditioner plus one
    /// solve's iteration workspace. A batched solve with `t` concurrent
    /// workers holds `t` workspaces; [`SolveReport::solver_bytes`] accounts
    /// for that.
    pub fn solver_bytes(&self) -> usize {
        self.shared_bytes + self.workspace_bytes
    }

    /// Stored nonzeros of the direct factor (`None` for iterative
    /// engines; summed over all blocks for the sharded engine) — the fill
    /// measure the ordering ablation reports.
    pub fn factor_nnz(&self) -> Option<usize> {
        match &self.engine {
            Engine::Direct(factor) => Some(factor.factor_nnz()),
            Engine::Sharded(schur) => schur.factor_nnz(),
            _ => None,
        }
    }

    /// `(shards, interface DoFs, peak per-shard factor bytes)` of the
    /// sharded engine; the monolithic identity `(1, 0, 0)` otherwise.
    fn shard_info(&self) -> (usize, usize, usize) {
        match &self.engine {
            Engine::Sharded(schur) => (
                schur.num_shards(),
                schur.interface_dofs(),
                schur.shard_factor_bytes(),
            ),
            _ => (1, 0, 0),
        }
    }

    /// The sharded engine behind this solver, if any — the handle
    /// `Sharded::prepare` retains as the base of the next incremental
    /// re-preparation.
    pub(crate) fn schur(&self) -> Option<&Arc<SchurSolver>> {
        match &self.engine {
            Engine::Sharded(schur) => Some(schur),
            _ => None,
        }
    }

    /// `(shards refactored, shards reused)` by the preparation behind this
    /// solver; `(0, 0)` for monolithic backends.
    fn reuse_info(&self) -> (usize, usize) {
        match &self.engine {
            Engine::Sharded(schur) => (schur.shards_refactored(), schur.shards_reused()),
            _ => (0, 0),
        }
    }

    /// Quality accounting of the sharded engine's partition — balance,
    /// interface share, planner route; `None` for monolithic backends.
    pub fn plan_stats(&self) -> Option<ShardPlanStats> {
        self.schur().map(|schur| schur.plan_stats())
    }

    /// Interior shards behind this solver (1 for monolithic backends).
    pub fn shards(&self) -> usize {
        self.shard_info().0
    }

    /// Interface DoFs of the sharded engine (0 for monolithic backends).
    pub fn interface_dofs(&self) -> usize {
        self.shard_info().1
    }

    /// Supernode shape statistics of the direct factor (`None` for the
    /// iterative engines and the scalar reference kernel).
    pub fn supernode_stats(&self) -> Option<SupernodeStats> {
        match &self.engine {
            Engine::Direct(factor) => factor.supernode_stats(),
            _ => None,
        }
    }

    /// Worker slots the one-time numeric factorization used (1 for the
    /// scalar kernel, serial factorization and the iterative engines; the
    /// peak over all block factorizations for the sharded engine).
    pub fn factor_workers(&self) -> usize {
        match &self.engine {
            Engine::Direct(factor) => factor.factor_workers(),
            Engine::Sharded(schur) => schur.factor_workers(),
            _ => 1,
        }
    }

    /// Resolved dense-microkernel name (`"scalar"`, `"blocked"`, `"avx2"`)
    /// behind the supernodal factorization — after runtime CPU-feature
    /// dispatch. `None` for the iterative engines and the scalar
    /// up-looking reference factorization; the interior-block kernel for
    /// the sharded engine.
    pub fn kernel_name(&self) -> Option<&'static str> {
        match &self.engine {
            Engine::Direct(factor) => factor.kernel_name(),
            Engine::Sharded(schur) => schur.kernel_name(),
            _ => None,
        }
    }

    /// Degraded blocks of the sharded engine behind this solver (0 for
    /// monolithic backends).
    fn shards_degraded(&self) -> usize {
        match &self.engine {
            Engine::Sharded(schur) => schur.shards_degraded(),
            _ => 0,
        }
    }

    fn solve_one(&self, b: &[f64]) -> EngineResult {
        let clean = |(x, iterations, residual)| EngineSolve {
            x,
            iterations,
            residual,
            verified: None,
            trail: DegradationTrail::new(),
        };
        match &self.engine {
            Engine::Direct(factor) => Ok(clean((factor.solve(b), None, None))),
            Engine::Sharded(schur) => {
                let (mut xs, iterations, residual, _workers) =
                    schur.solve_many(std::slice::from_ref(&b.to_vec()), 1)?;
                Ok(clean((
                    xs.pop().expect("one right-hand side in, one solution out"),
                    iterations,
                    residual,
                )))
            }
            Engine::Cg { precond, opts } => {
                let sol = solve_cg(&*self.matrix, b, &**precond, *opts)?;
                Ok(clean((sol.x, Some(sol.iterations), Some(sol.residual))))
            }
            Engine::Gmres { precond, opts } => {
                let sol = solve_gmres(&*self.matrix, b, &**precond, *opts)?;
                Ok(clean((sol.x, Some(sol.iterations), Some(sol.residual))))
            }
            Engine::Resilient(res) => res.solve(&self.matrix, b),
        }
    }

    /// Runs the [`VerifyPolicy`] over one solved right-hand side. The
    /// resilient engine verifies itself (`already`), so only the policy
    /// bookkeeping applies there.
    fn verify_one(
        &self,
        b: &[f64],
        x: &[f64],
        iterations: Option<usize>,
        already: Option<f64>,
    ) -> Result<Option<f64>, LinalgError> {
        let rr = match (already, self.verify) {
            (Some(rr), _) => rr,
            (None, VerifyPolicy::Off) => return Ok(None),
            (None, _) => self.matrix.residual(x, b),
        };
        if let VerifyPolicy::Enforce { tol } = self.verify {
            // NaN residuals must fail enforcement too.
            if rr.is_nan() || rr > tol {
                return Err(LinalgError::DidNotConverge {
                    iterations: iterations.unwrap_or(0),
                    residual: rr,
                    restarts: 0,
                });
            }
        }
        Ok(Some(rr))
    }

    /// Merges the preparation trail with the deepest solve-time trail.
    fn full_trail(&self, solve_trail: DegradationTrail) -> DegradationTrail {
        let mut trail = self.prep_trail;
        for step in solve_trail.steps() {
            trail.push(*step);
        }
        trail
    }

    /// Solves `A x = b` for one right-hand side.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DidNotConverge`] from the iterative engines or a
    /// failed [`VerifyPolicy::Enforce`] check;
    /// [`LinalgError::NonFinite`] for a NaN/Inf in `b` or the solution;
    /// [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<BackendSolution, LinalgError> {
        if b.len() != self.dim() {
            return Err(LinalgError::DimensionMismatch {
                context: "prepared solve",
                expected: self.dim(),
                found: b.len(),
            });
        }
        check_finite(b, "rhs")?;
        let t0 = Instant::now();
        let EngineSolve {
            x,
            iterations,
            residual,
            verified,
            trail,
        } = self.solve_one(b)?;
        check_finite(&x, "solution")?;
        let verified_residual = self.verify_one(b, &x, iterations, verified)?;
        let (shards, interface_dofs, shard_factor_bytes) = self.shard_info();
        let (shards_refactored, shards_reused) = self.reuse_info();
        Ok(BackendSolution {
            x,
            report: SolveReport {
                backend: self.engine.label(),
                setup_time: self.setup_time,
                solve_time: t0.elapsed(),
                iterations,
                residual,
                solver_bytes: self.solver_bytes(),
                rhs_count: 1,
                workers: 1,
                factor_workers: self.factor_workers(),
                supernode_stats: self.supernode_stats(),
                kernel: self.kernel_name(),
                shards,
                interface_dofs,
                shard_factor_bytes,
                shards_refactored,
                shards_reused,
                verified_residual,
                degradation: self.full_trail(trail),
                shards_degraded: self.shards_degraded(),
                plan_stats: self.plan_stats(),
            },
        })
    }

    /// Solves `A X = B` for many right-hand sides on the current
    /// [`WorkPool`], using up to `threads` worker slots (the cap override
    /// clamps to the pool's own cap), all sharing this one prepared factor.
    ///
    /// The direct engines take the **panel path**: the batch is cut into
    /// panels of [`DirectCholesky::panel_width`] right-hand sides, each
    /// worker claims whole panels (with one reused panel scratch per
    /// worker), and a single blocked triangular sweep serves every column
    /// of a panel — the factor is streamed once per panel instead of once
    /// per right-hand side. Panel partitioning depends only on the batch
    /// size, never on the worker count, and per column the operation order
    /// equals the single-RHS solve, so batched results are bitwise
    /// identical to looped solves at every pool cap. Iterative engines keep
    /// the task-per-RHS distribution.
    ///
    /// This is the batched path the paper's Table 1/2 workloads want: one
    /// factorization (or preconditioner build) serving every thermal load.
    ///
    /// # Errors
    ///
    /// The first *solver* failure is propagated; dimension mismatches are
    /// reported before any work starts.
    pub fn solve_many(
        &self,
        rhs: &[Vec<f64>],
        threads: usize,
    ) -> Result<BatchSolution, LinalgError> {
        for b in rhs {
            if b.len() != self.dim() {
                return Err(LinalgError::DimensionMismatch {
                    context: "prepared batched solve",
                    expected: self.dim(),
                    found: b.len(),
                });
            }
            check_finite(b, "rhs")?;
        }
        let t0 = Instant::now();
        if let Engine::Direct(factor) = &self.engine {
            let mut batch = self.solve_many_panels(factor, rhs, threads, t0);
            for x in &batch.xs {
                check_finite(x, "solution")?;
            }
            batch.report.verified_residual = self.verify_batch(rhs, &batch.xs)?;
            return Ok(batch);
        }
        if let Engine::Sharded(schur) = &self.engine {
            let (xs, iterations, residual, workers) = schur.solve_many(rhs, threads)?;
            for x in &xs {
                check_finite(x, "solution")?;
            }
            let verified_residual = self.verify_batch(rhs, &xs)?;
            return Ok(BatchSolution {
                report: SolveReport {
                    backend: self.engine.label(),
                    setup_time: self.setup_time,
                    solve_time: t0.elapsed(),
                    iterations,
                    residual,
                    // The sharded staging vectors (gathered right-hand
                    // sides, pre-solves, interface reductions) are held per
                    // right-hand side across the interface stage, so the
                    // workspace scales with the batch, not the workers.
                    solver_bytes: self.shared_bytes + rhs.len().max(1) * self.workspace_bytes,
                    rhs_count: xs.len(),
                    workers,
                    factor_workers: schur.factor_workers(),
                    supernode_stats: None,
                    kernel: schur.kernel_name(),
                    shards: schur.num_shards(),
                    interface_dofs: schur.interface_dofs(),
                    shard_factor_bytes: schur.shard_factor_bytes(),
                    shards_refactored: schur.shards_refactored(),
                    shards_reused: schur.shards_reused(),
                    verified_residual,
                    degradation: self.prep_trail,
                    shards_degraded: schur.shards_degraded(),
                    plan_stats: Some(schur.plan_stats()),
                },
                xs,
            });
        }
        if let Engine::Resilient(res) = &self.engine {
            // Clean fast path (unshifted factor only): the whole batch
            // through the inner factor's panel-blocked solve — bitwise
            // identical to the plain direct backend — then one verification
            // sweep. Any tolerance miss, or a broken panel solve, sends the
            // batch down the task-per-RHS ladder path below instead.
            if res.shift == 0.0 {
                if let Ok(mut batch) = res.direct.solve_many(rhs, threads) {
                    let worst = rhs
                        .iter()
                        .zip(&batch.xs)
                        .map(|(b, x)| self.matrix.residual(x, b))
                        .fold(0.0f64, f64::max);
                    if worst <= res.tol {
                        batch.report.backend = self.engine.label();
                        batch.report.setup_time = self.setup_time;
                        batch.report.verified_residual = Some(worst);
                        batch.report.degradation = self.prep_trail;
                        return Ok(batch);
                    }
                }
            }
        }
        let pool = WorkPool::current();
        let concurrency = threads.max(1).min(rhs.len().max(1)).min(pool.cap());
        let mut workers = 1;
        let results: Vec<EngineResult> = if concurrency == 1 {
            // No point paying queue traffic + per-slot locks for a serial
            // batch (the common single-RHS case routed through here).
            rhs.iter().map(|b| self.solve_one(b)).collect()
        } else {
            let slots: Vec<Mutex<Option<EngineResult>>> =
                rhs.iter().map(|_| Mutex::new(None)).collect();
            workers = pool.scope_chunks(concurrency, rhs.len(), |i| {
                let result = self.solve_one(&rhs[i]);
                *slots[i].lock().expect("solve slot poisoned") = Some(result);
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("solve slot poisoned")
                        .expect("every slot visited")
                })
                .collect()
        };

        let mut xs = Vec::with_capacity(rhs.len());
        let mut iterations: Option<usize> = None;
        let mut residual: Option<f64> = None;
        let mut verified_worst: Option<f64> = None;
        let mut deepest = DegradationTrail::new();
        for (i, result) in results.into_iter().enumerate() {
            let es = result?;
            check_finite(&es.x, "solution")?;
            if let Some(rr) = self.verify_one(&rhs[i], &es.x, es.iterations, es.verified)? {
                verified_worst = Some(verified_worst.map_or(rr, |worst: f64| worst.max(rr)));
            }
            if es.trail.len() > deepest.len() {
                deepest = es.trail;
            }
            if let Some(it) = es.iterations {
                iterations = Some(iterations.unwrap_or(0) + it);
            }
            if let Some(res) = es.residual {
                residual = Some(residual.map_or(res, |worst: f64| worst.max(res)));
            }
            xs.push(es.x);
        }
        Ok(BatchSolution {
            xs,
            report: SolveReport {
                backend: self.engine.label(),
                setup_time: self.setup_time,
                solve_time: t0.elapsed(),
                iterations,
                residual,
                // Each concurrent worker holds its own iteration workspace.
                solver_bytes: self.shared_bytes + workers * self.workspace_bytes,
                rhs_count: rhs.len(),
                workers,
                factor_workers: self.factor_workers(),
                supernode_stats: None,
                kernel: None,
                shards: 1,
                interface_dofs: 0,
                shard_factor_bytes: 0,
                shards_refactored: 0,
                shards_reused: 0,
                verified_residual: verified_worst,
                degradation: self.full_trail(deepest),
                shards_degraded: 0,
                plan_stats: None,
            },
        })
    }

    /// Runs the [`VerifyPolicy`] over a solved batch, recording the worst
    /// relative residual.
    fn verify_batch(&self, rhs: &[Vec<f64>], xs: &[Vec<f64>]) -> Result<Option<f64>, LinalgError> {
        if matches!(self.verify, VerifyPolicy::Off) {
            return Ok(None);
        }
        let mut worst: f64 = 0.0;
        for (b, x) in rhs.iter().zip(xs) {
            let rr = self.matrix.residual(x, b);
            // `f64::max` would silently drop a NaN residual; pin it to ∞ so
            // it survives the fold and fails enforcement.
            worst = if rr.is_nan() {
                f64::INFINITY
            } else {
                worst.max(rr)
            };
        }
        if let VerifyPolicy::Enforce { tol } = self.verify {
            if worst > tol {
                return Err(LinalgError::DidNotConverge {
                    iterations: 0,
                    residual: worst,
                    restarts: 0,
                });
            }
        }
        Ok(Some(worst))
    }

    /// The batched direct path: pool-distributed panels with per-worker
    /// panel scratch (see [`solve_many`](Self::solve_many)).
    fn solve_many_panels(
        &self,
        factor: &DirectFactor,
        rhs: &[Vec<f64>],
        threads: usize,
        t0: Instant,
    ) -> BatchSolution {
        let n = self.dim();
        let k = rhs.len();
        let width = self.panel_width.max(1);
        let num_panels = k.div_ceil(width);
        let pool = WorkPool::current();
        let concurrency = threads.max(1).min(num_panels.max(1)).min(pool.cap());

        let slots: Vec<Mutex<Vec<f64>>> = rhs.iter().map(|_| Mutex::new(Vec::new())).collect();
        let workers = pool
            .scope_chunks_with(
                concurrency,
                num_panels,
                || (vec![0.0f64; n * width], vec![0.0f64; factor.tmp_len()]),
                |(panel, tmp), p| {
                    let lo = p * width;
                    let hi = (lo + width).min(k);
                    let nrhs = hi - lo;
                    let panel = &mut panel[..n * nrhs];
                    for (c, b) in rhs[lo..hi].iter().enumerate() {
                        panel[c * n..(c + 1) * n].copy_from_slice(b);
                    }
                    factor.solve_panel_with(panel, nrhs, tmp);
                    for (c, i) in (lo..hi).enumerate() {
                        *slots[i].lock().expect("panel slot poisoned") =
                            panel[c * n..(c + 1) * n].to_vec();
                    }
                },
            )
            .max(1);

        let xs: Vec<Vec<f64>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("panel slot poisoned"))
            .collect();
        let stats = factor.supernode_stats();
        BatchSolution {
            xs,
            report: SolveReport {
                backend: self.engine.label(),
                setup_time: self.setup_time,
                solve_time: t0.elapsed(),
                iterations: None,
                residual: None,
                // Each concurrent worker holds one panel scratch.
                solver_bytes: self.shared_bytes + workers * self.workspace_bytes,
                rhs_count: k,
                workers,
                factor_workers: factor.factor_workers(),
                supernode_stats: stats,
                kernel: factor.kernel_name(),
                shards: 1,
                interface_dofs: 0,
                shard_factor_bytes: 0,
                shards_refactored: 0,
                shards_reused: 0,
                // Filled by the `solve_many` wrapper after the panels land.
                verified_residual: None,
                degradation: self.prep_trail,
                shards_degraded: 0,
                plan_stats: None,
            },
        }
    }
}

/// Default worker cap for batched solves: the cap of the current
/// [`WorkPool`].
///
/// Before the pool existed this read `available_parallelism` on its own,
/// independently of [`LocalStageOptions::default`]-style call sites doing
/// the same — so nested stages could each spawn a full complement of
/// threads (cap² in the worst case). Deriving every default from the one
/// shared pool (and executing on it) removes that failure mode: requests
/// are clamped to the pool cap, and the pool never runs more than `cap`
/// threads total, however deeply stages nest.
///
/// [`LocalStageOptions::default`]: https://docs.rs/morestress-core
pub fn default_solve_threads() -> usize {
    WorkPool::current().cap()
}

// ---------------------------------------------------------------------------
// Backend implementations
// ---------------------------------------------------------------------------

/// Which factorization kernel [`DirectCholesky`] runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CholeskyKernel {
    /// The supernodal blocked kernel (`crate::supernodal`): dense column
    /// panels, rank-k updates, blocked triangular sweeps. The default.
    #[default]
    Supernodal,
    /// The scalar up-looking reference kernel (`crate::cholesky`). Kept
    /// selectable as the differential-testing oracle and for operators too
    /// small to amortize panel bookkeeping.
    Scalar,
}

/// Direct sparse Cholesky backend: supernodal blocked kernel with
/// structure-probed ([`FillOrdering::Auto`]) ordering and
/// elimination-tree-parallel factorization by default; the scalar kernel,
/// concrete orderings and the serial sweep stay selectable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectCholesky {
    /// Factorization kernel (default: supernodal).
    pub kernel: CholeskyKernel,
    /// Fill-reducing ordering (default: [`FillOrdering::Auto`], which
    /// probes the operator and picks RCM for dense-row reduced operators
    /// and nested dissection for large sparse lattices).
    pub ordering: FillOrdering,
    /// Right-hand sides per panel of the batched
    /// [`PreparedSolver::solve_many`] path. Each worker solves whole
    /// panels with one blocked sweep; 1 degenerates to task-per-RHS.
    pub panel_width: usize,
    /// Runs the supernodal numeric factorization as an elimination-tree
    /// task DAG on the current [`WorkPool`] (default: `true`). The factor
    /// is bitwise identical to the serial sweep at every pool cap, so this
    /// is purely a wall-clock knob — which is also why it is *not* part of
    /// the [`FactorCache`] fingerprint. Ignored by the scalar kernel. The
    /// parallel path runs only when both this and
    /// [`SupernodalOptions::parallel`] are `true` (either switch selects
    /// the serial sweep).
    pub parallel_factor: bool,
    /// Supernode detection tuning (width cap, relaxed-amalgamation
    /// budget). Ignored by the scalar kernel.
    pub supernodal: SupernodalOptions,
    /// Residual-verification policy for every solve through the prepared
    /// solver (default: [`VerifyPolicy::Off`]). Verification never mutates
    /// the solution, so `Report` is bitwise-free telemetry.
    pub verify: VerifyPolicy,
}

impl Default for DirectCholesky {
    fn default() -> Self {
        Self {
            kernel: CholeskyKernel::default(),
            ordering: FillOrdering::default(),
            panel_width: 8,
            parallel_factor: true,
            supernodal: SupernodalOptions::default(),
            verify: VerifyPolicy::Off,
        }
    }
}

impl DirectCholesky {
    /// The scalar up-looking kernel with RCM ordering — the differential
    /// oracle configuration.
    pub fn scalar() -> Self {
        Self {
            kernel: CholeskyKernel::Scalar,
            ordering: FillOrdering::Rcm,
            ..Self::default()
        }
    }

    /// The supernodal kernel with nested-dissection ordering — the fastest
    /// configuration for large structured lattices.
    pub fn nested_dissection() -> Self {
        Self {
            ordering: FillOrdering::NestedDissection,
            ..Self::default()
        }
    }

    /// The supernodal kernel with the serial left-looking numeric sweep —
    /// the parallel path's differential baseline (bitwise identical, just
    /// slower).
    pub fn serial_factor() -> Self {
        Self {
            parallel_factor: false,
            ..Self::default()
        }
    }
}

impl SolverBackend for DirectCholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError> {
        let t0 = Instant::now();
        check_finite_matrix(&a)?;
        let perm = self.ordering.permutation(&a);
        let factor = match self.kernel {
            CholeskyKernel::Supernodal => {
                // Honor both switches: the backend-level `parallel_factor`
                // and a caller-narrowed `supernodal.parallel` each disable
                // the DAG path.
                let opts = SupernodalOptions {
                    parallel: self.parallel_factor && self.supernodal.parallel,
                    ..self.supernodal
                };
                DirectFactor::Supernodal(SupernodalCholesky::factor_with_permutation(
                    &a, perm, &opts,
                )?)
            }
            CholeskyKernel::Scalar => {
                DirectFactor::Scalar(SparseCholesky::factor_with_permutation(&a, perm)?)
            }
        };
        let shared_bytes = factor.heap_bytes();
        // One panel scratch plus the solve scratch, per concurrent worker.
        let workspace_bytes =
            (self.panel_width.max(1) * a.nrows() + factor.tmp_len()) * std::mem::size_of::<f64>();
        Ok(PreparedSolver {
            matrix: a,
            engine: Engine::Direct(Box::new(factor)),
            setup_time: t0.elapsed(),
            shared_bytes,
            workspace_bytes,
            panel_width: self.panel_width.max(1),
            verify: self.verify,
            prep_trail: DegradationTrail::new(),
        })
    }

    fn config_fingerprint(&self) -> u64 {
        let kernel = match self.kernel {
            CholeskyKernel::Supernodal => 0u64,
            CholeskyKernel::Scalar => 1,
        };
        // The panel width and supernode tuning only shape *how* a solve
        // runs, not its factor-basis semantics — but they change the
        // prepared object, so they stay in the cache key. `parallel_factor`
        // is deliberately absent: serial and parallel factorization produce
        // bitwise-identical factors, so the two configs can share one cache
        // entry.
        // The dense microkernel *is* part of the key: kernels differ in
        // rounding (fused vs separate multiply-add), so two kernel configs
        // produce different factor bits and must not share a cache entry.
        // Fingerprinted by *resolved* kernel, so `Simd` on a non-AVX2 host
        // shares the entry of the kernel it actually falls back to.
        0x10 ^ kernel.rotate_left(8)
            ^ self.ordering.fingerprint().rotate_left(12)
            ^ (self.panel_width as u64).rotate_left(24)
            ^ (self.supernodal.max_width as u64).rotate_left(40)
            ^ self.supernodal.relax.to_bits().rotate_left(48)
            ^ (self.supernodal.small_width as u64).rotate_left(56)
            ^ self.supernodal.chunk_work.rotate_left(16)
            ^ self.supernodal.kernel.fingerprint().rotate_left(4)
            ^ self.verify.fingerprint().rotate_left(36)
    }
}

/// Preconditioned conjugate-gradient backend (SPD operators).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cg {
    /// Iteration options.
    pub opts: CgOptions,
    /// Preconditioner choice.
    pub precond: PrecondSpec,
}

impl Cg {
    /// CG at tolerance `tol` with Jacobi preconditioning.
    pub fn with_tol(tol: f64) -> Self {
        Self {
            opts: CgOptions {
                tol,
                ..CgOptions::default()
            },
            precond: PrecondSpec::Jacobi,
        }
    }
}

impl Default for Cg {
    fn default() -> Self {
        Self::with_tol(CgOptions::default().tol)
    }
}

impl SolverBackend for Cg {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError> {
        let t0 = Instant::now();
        check_finite_matrix(&a)?;
        let n = a.nrows();
        let (precond, precond_bytes) = self.precond.build(&a);
        Ok(PreparedSolver {
            matrix: a,
            engine: Engine::Cg {
                precond,
                opts: self.opts,
            },
            setup_time: t0.elapsed(),
            shared_bytes: precond_bytes,
            // The 5 CG work vectors, per concurrent solve.
            workspace_bytes: 5 * n * std::mem::size_of::<f64>(),
            panel_width: 1,
            verify: VerifyPolicy::Off,
            prep_trail: DegradationTrail::new(),
        })
    }

    fn config_fingerprint(&self) -> u64 {
        0x20 ^ self.opts.tol.to_bits()
            ^ (self.opts.max_iter as u64).rotate_left(16)
            ^ self.precond.fingerprint().rotate_left(32)
    }
}

/// Preconditioned restarted-GMRES backend (general operators; the paper's
/// global-stage prescription).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gmres {
    /// Iteration options.
    pub opts: GmresOptions,
    /// Preconditioner choice.
    pub precond: PrecondSpec,
}

impl Gmres {
    /// GMRES at tolerance `tol` with Jacobi preconditioning.
    pub fn with_tol(tol: f64) -> Self {
        Self {
            opts: GmresOptions {
                tol,
                ..GmresOptions::default()
            },
            precond: PrecondSpec::Jacobi,
        }
    }
}

impl Default for Gmres {
    fn default() -> Self {
        Self::with_tol(GmresOptions::default().tol)
    }
}

impl SolverBackend for Gmres {
    fn name(&self) -> &'static str {
        "gmres"
    }

    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError> {
        let t0 = Instant::now();
        check_finite_matrix(&a)?;
        let n = a.nrows();
        let (precond, precond_bytes) = self.precond.build(&a);
        Ok(PreparedSolver {
            matrix: a,
            engine: Engine::Gmres {
                precond,
                opts: self.opts,
            },
            setup_time: t0.elapsed(),
            shared_bytes: precond_bytes,
            // `restart + 1` Krylov vectors, per concurrent solve.
            workspace_bytes: (self.opts.restart + 1) * n * std::mem::size_of::<f64>(),
            panel_width: 1,
            verify: VerifyPolicy::Off,
            prep_trail: DegradationTrail::new(),
        })
    }

    fn config_fingerprint(&self) -> u64 {
        0x30 ^ self.opts.tol.to_bits()
            ^ (self.opts.restart as u64).rotate_left(16)
            ^ (self.opts.max_restarts as u64).rotate_left(24)
            ^ self.precond.fingerprint().rotate_left(32)
    }
}

/// The degradation-ladder backend: direct Cholesky hardened with verified
/// residuals, iterative refinement, diagonal-shift regularization and a
/// GMRES bottom rung.
///
/// The ladder escalates in order and records every transition as a
/// [`DegradationStep`] in [`SolveReport::degradation`]:
///
/// 1. **direct factor** of the operator ([`DirectCholesky`] — the clean
///    path, bitwise identical to the plain direct backend);
/// 2. **iterative refinement** reusing that factor when the verified
///    residual misses `tol`;
/// 3. **diagonal-shift regularized re-factor** (`A + δ·I`, escalating δ)
///    when factorization rejects the operator as not positive definite —
///    its solves refine against the *original* operator;
/// 4. **GMRES** on the raw operator action.
///
/// A solve through this backend either meets `tol`, succeeds with the
/// degradation recorded, or returns a typed [`LinalgError`] — it never
/// panics on ill-conditioned, indefinite, singular or NaN-poisoned input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resilient {
    /// Configuration of the direct first rung.
    pub inner: DirectCholesky,
    /// Relative-residual tolerance the ladder enforces (and the iterative
    /// rungs target).
    pub tol: f64,
    /// Refinement sweeps budget of the refinement rung.
    pub max_refine_sweeps: usize,
    /// Initial diagonal shift of the regularization rung, relative to the
    /// largest absolute diagonal entry.
    pub shift_rel: f64,
    /// Multiplicative escalation between shift attempts.
    pub shift_growth: f64,
    /// Regularized re-factor attempts before falling to GMRES.
    pub shift_attempts: usize,
}

impl Default for Resilient {
    fn default() -> Self {
        Self {
            inner: DirectCholesky::default(),
            tol: 1e-8,
            max_refine_sweeps: 8,
            shift_rel: 1e-8,
            shift_growth: 1e4,
            shift_attempts: 3,
        }
    }
}

impl Resilient {
    /// The ladder at enforcement tolerance `tol`.
    pub fn with_tol(tol: f64) -> Self {
        Self {
            tol,
            ..Self::default()
        }
    }
}

/// A value-copy of `a` with `shift` added to every diagonal entry
/// (inserting diagonal entries absent from the pattern, so regularization
/// never hits an off-pattern panic). Shared with the fault-injection
/// machinery, which uses large shifts to build deliberately-wrong factors.
pub(crate) fn shifted_copy(a: &CsrMatrix, shift: f64) -> CsrMatrix {
    let mut coo = crate::CooMatrix::new(a.nrows(), a.ncols());
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            coo.push(i, j, v);
        }
    }
    for i in 0..a.nrows().min(a.ncols()) {
        coo.push(i, i, shift);
    }
    coo.to_csr()
}

impl SolverBackend for Resilient {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError> {
        let t0 = Instant::now();
        check_finite_matrix(&a)?;
        let inner = DirectCholesky {
            verify: VerifyPolicy::Off,
            ..self.inner
        };
        let mut trail = DegradationTrail::new();
        let direct = match inner.prepare(Arc::clone(&a)) {
            Ok(prepared) => Some((Arc::new(prepared), 0.0)),
            Err(err @ LinalgError::NotPositiveDefinite { .. }) => {
                // Regularization rung: re-factor A + δ·I with escalating δ.
                trail.push(DegradationStep {
                    rung: Rung::Regularized,
                    error: err,
                });
                let max_diag = a
                    .diagonal()
                    .iter()
                    .fold(0.0f64, |m, d| m.max(d.abs()))
                    .max(1.0);
                let mut shift = self.shift_rel.max(f64::MIN_POSITIVE) * max_diag;
                let mut last_err = err;
                let mut found = None;
                for _ in 0..self.shift_attempts {
                    match inner.prepare(Arc::new(shifted_copy(&a, shift))) {
                        Ok(prepared) => {
                            found = Some((Arc::new(prepared), shift));
                            break;
                        }
                        Err(e @ LinalgError::NotPositiveDefinite { .. }) => {
                            last_err = e;
                            shift *= self.shift_growth;
                        }
                        Err(other) => return Err(other),
                    }
                }
                if found.is_none() {
                    // Bottom rung at prepare time: hand back a GMRES solver
                    // carrying the full trail (the old `Auto` fallback
                    // discarded the Cholesky failure; the trail keeps it).
                    trail.push(DegradationStep {
                        rung: Rung::Gmres,
                        error: last_err,
                    });
                    let mut prepared = Gmres::with_tol(self.tol).prepare(a)?;
                    prepared.prep_trail = trail;
                    prepared.setup_time = t0.elapsed();
                    return Ok(prepared);
                }
                found
            }
            Err(other) => return Err(other),
        };
        let (direct, shift) = direct.expect("direct rung resolved above");
        let shared_bytes = direct.solver_bytes();
        // Refinement workspace: residual + correction vectors.
        let workspace_bytes = 2 * a.nrows() * std::mem::size_of::<f64>();
        Ok(PreparedSolver {
            matrix: a,
            engine: Engine::Resilient(ResilientEngine {
                direct,
                shift,
                tol: self.tol,
                refine: crate::RefineOptions {
                    tol: self.tol,
                    max_sweeps: self.max_refine_sweeps,
                },
                gmres_opts: GmresOptions {
                    tol: self.tol,
                    ..GmresOptions::default()
                },
                gmres: Mutex::new(None),
            }),
            setup_time: t0.elapsed(),
            shared_bytes,
            workspace_bytes,
            panel_width: self.inner.panel_width.max(1),
            verify: VerifyPolicy::Off, // the ladder self-verifies at `tol`
            prep_trail: trail,
        })
    }

    fn config_fingerprint(&self) -> u64 {
        0x60 ^ self.inner.config_fingerprint().rotate_left(2)
            ^ self.tol.to_bits().rotate_left(16)
            ^ (self.max_refine_sweeps as u64).rotate_left(32)
            ^ self.shift_rel.to_bits().rotate_left(40)
            ^ self.shift_growth.to_bits().rotate_left(48)
            ^ (self.shift_attempts as u64).rotate_left(56)
    }
}

/// Policy backend: direct Cholesky below a size threshold, SSOR-CG above
/// it, with a GMRES fallback when factorization rejects the operator.
///
/// This mirrors common practice (and the paper's ANSYS setup, which
/// switches to the iterative solver for large models) while staying robust:
/// every SPD operator ends up with a converging backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Auto {
    /// Largest dimension still handed to the direct solver.
    pub direct_limit: usize,
    /// Tolerance for the iterative engines.
    pub tol: f64,
}

impl Default for Auto {
    fn default() -> Self {
        Self {
            direct_limit: 120_000,
            tol: 1e-9,
        }
    }
}

impl SolverBackend for Auto {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn prepare(&self, a: Arc<CsrMatrix>) -> Result<PreparedSolver, LinalgError> {
        if a.nrows() <= self.direct_limit {
            // Route through the degradation ladder: on a clean SPD operator
            // this is exactly the direct factor (bitwise-identical solves),
            // and when factorization rejects the operator the ladder records
            // the triggering Cholesky error as the first `DegradationStep`
            // instead of silently swapping in GMRES.
            Resilient {
                tol: self.tol,
                ..Resilient::default()
            }
            .prepare(a)
        } else {
            Cg {
                opts: CgOptions {
                    tol: self.tol,
                    max_iter: 20_000,
                },
                precond: PrecondSpec::Ssor { omega: 1.2 },
            }
            .prepare(a)
        }
    }

    fn config_fingerprint(&self) -> u64 {
        0x40 ^ self.tol.to_bits() ^ (self.direct_limit as u64).rotate_left(20)
    }
}

// ---------------------------------------------------------------------------
// FactorCache
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    backend_config: u64,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    matrix_fingerprint: u64,
}

#[derive(Debug)]
struct CacheEntry {
    key: CacheKey,
    solver: Arc<PreparedSolver>,
}

/// Content-addressed memo of [`PreparedSolver`]s.
///
/// Keyed by a fingerprint of the matrix (dimensions, sparsity pattern and
/// values) and of the backend configuration, so a simulator solving many
/// layouts/loads over the same lattice reuses one symbolic + numeric
/// factorization instead of re-factoring per call. A small LRU list (default
/// capacity 4) keeps alternating layouts from thrashing a single slot.
#[derive(Debug)]
pub struct FactorCache {
    capacity: usize,
    entries: Mutex<Vec<CacheEntry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for FactorCache {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a-style hash over the CSR arrays (structure and values), mixed one
/// 64-bit word at a time. Word-wise mixing is ~8× cheaper than the
/// byte-wise variant on the multi-million-entry operators the global stage
/// assembles per call, and any lost avalanche quality is covered by the
/// exact matrix comparison every cache hit performs anyway.
///
/// Public as the content-address every block-level reuse decision shares:
/// [`FactorCache`] keys, and the per-block dirty detection of the
/// [`Sharded`](crate::Sharded) incremental re-preparation (a fingerprint
/// mismatch proves a block changed; equal fingerprints are confirmed by
/// exact comparison before anything is reused).
pub fn matrix_fingerprint(a: &CsrMatrix) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    };
    for &p in a.row_ptr() {
        mix(p as u64);
    }
    for &c in a.col_idx() {
        mix(c as u64);
    }
    for &v in a.values() {
        mix(v.to_bits());
    }
    h
}

impl FactorCache {
    /// A cache holding up to 4 prepared solvers.
    pub fn new() -> Self {
        Self::with_capacity(4)
    }

    /// A cache holding up to `capacity` prepared solvers.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Returns the cached prepared solver for `(backend, a)`, preparing and
    /// inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`SolverBackend::prepare`] failures (nothing is cached on
    /// error).
    pub fn prepare(
        &self,
        backend: &dyn SolverBackend,
        a: &Arc<CsrMatrix>,
    ) -> Result<Arc<PreparedSolver>, LinalgError> {
        self.prepare_with_status(backend, a)
            .map(|(solver, _)| solver)
    }

    /// Like [`Self::prepare`], additionally reporting whether the solver
    /// was served from the cache (`true`) or freshly prepared (`false`).
    /// The self-heal path uses the flag to decide whether a failing solve
    /// can blame a stale cache entry.
    pub fn prepare_with_status(
        &self,
        backend: &dyn SolverBackend,
        a: &Arc<CsrMatrix>,
    ) -> Result<(Arc<PreparedSolver>, bool), LinalgError> {
        let key = CacheKey {
            backend_config: backend.config_fingerprint(),
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            matrix_fingerprint: matrix_fingerprint(a),
        };
        // A key match is only trusted after an exact comparison with the
        // cached operator: the O(nnz) check costs no more than the hash we
        // already computed and closes the fingerprint-collision hole.
        //
        // On an exact-key miss, entries holding the *same operator* under a
        // different configuration fingerprint get a second chance through
        // `SolverBackend::accepts_cached` — the dedupe for configurations
        // that are spelled differently but prepare identically (e.g. shard
        // counts that degenerate to one plan). Such a hit is served in
        // place; no alias entry is inserted.
        let lookup = |entries: &mut Vec<CacheEntry>| -> Option<Arc<PreparedSolver>> {
            let pos = entries
                .iter()
                .position(|e| e.key == key && e.solver.matrix().as_ref() == a.as_ref())
                .or_else(|| {
                    entries.iter().position(|e| {
                        e.key.backend_config != key.backend_config
                            && e.key.nrows == key.nrows
                            && e.key.ncols == key.ncols
                            && e.key.nnz == key.nnz
                            && e.key.matrix_fingerprint == key.matrix_fingerprint
                            && e.solver.matrix().as_ref() == a.as_ref()
                            && backend.accepts_cached(&e.solver, a)
                    })
                })?;
            let entry = entries.remove(pos);
            let solver = Arc::clone(&entry.solver);
            entries.insert(0, entry); // LRU: move to front
            Some(solver)
        };
        {
            let mut entries = self.entries.lock().expect("factor cache poisoned");
            if let Some(solver) = lookup(&mut entries) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((solver, true));
            }
        }
        // Prepare outside the lock: factorization is the expensive part.
        let solver = Arc::new(backend.prepare(Arc::clone(a))?);
        let mut entries = self.entries.lock().expect("factor cache poisoned");
        // Re-check: a concurrent caller may have prepared the same system
        // while we did; keep one entry and drop the duplicate work.
        if let Some(existing) = lookup(&mut entries) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((existing, true));
        }
        entries.insert(
            0,
            CacheEntry {
                key,
                solver: Arc::clone(&solver),
            },
        );
        entries.truncate(self.capacity);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((solver, false))
    }

    /// Batched solve through the cache with a one-shot stale-entry
    /// self-heal.
    ///
    /// Prepares (or reuses) the solver for `(backend, a)` and runs the
    /// batch. If a *cached* factor fails the solve — a typed error, or
    /// degradation beyond what its own preparation recorded, i.e. a factor
    /// that was healthy when cached but no longer solves its operator —
    /// the entry is invalidated, the operator re-prepared from scratch,
    /// and the batch retried exactly once. The heal is recorded as a
    /// [`Rung::Rebuilt`] step in the returned report's degradation trail,
    /// and the boolean flag reports whether it happened. A fresh prepare
    /// that fails is never retried (nothing stale to heal) and, as always,
    /// never enters the cache.
    pub fn solve_many_healing(
        &self,
        backend: &dyn SolverBackend,
        a: &Arc<CsrMatrix>,
        rhs: &[Vec<f64>],
        threads: usize,
    ) -> Result<(BatchSolution, bool), LinalgError> {
        let (solver, hit) = self.prepare_with_status(backend, a)?;
        let first = solver.solve_many(rhs, threads);
        let cause = match &first {
            Err(err) => Some(*err),
            // A cached factor that needs *more* recovery than its own
            // preparation recorded has gone bad since it was cached.
            Ok(batch) if batch.report.degradation.len() > solver.prep_degradation().len() => {
                batch.report.degradation.last().map(|step| step.error)
            }
            Ok(_) => None,
        };
        let (Some(cause), true) = (cause, hit) else {
            return first.map(|batch| (batch, false));
        };
        // Suspect cached entry: drop it, rebuild once, retry the batch.
        self.invalidate(a);
        let rebuilt = Arc::new(backend.prepare(Arc::clone(a))?);
        let mut batch = rebuilt.solve_many(rhs, threads)?;
        let mut trail = DegradationTrail::new();
        trail.push(DegradationStep {
            rung: Rung::Rebuilt,
            error: cause,
        });
        for step in batch.report.degradation.steps() {
            trail.push(*step);
        }
        batch.report.degradation = trail;
        let mut entries = self.entries.lock().expect("factor cache poisoned");
        let key = CacheKey {
            backend_config: backend.config_fingerprint(),
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            matrix_fingerprint: matrix_fingerprint(a),
        };
        entries.insert(
            0,
            CacheEntry {
                key,
                solver: rebuilt,
            },
        );
        entries.truncate(self.capacity);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((batch, true))
    }

    /// Test-support: inserts `solver` keyed as the prepared factor of
    /// `(backend, a)`, bypassing preparation. The fault-injection harness
    /// uses this to plant a corrupted factor under a healthy operator's
    /// key; production code never calls it.
    #[doc(hidden)]
    pub fn inject(
        &self,
        backend: &dyn SolverBackend,
        a: &Arc<CsrMatrix>,
        solver: Arc<PreparedSolver>,
    ) {
        let key = CacheKey {
            backend_config: backend.config_fingerprint(),
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            matrix_fingerprint: matrix_fingerprint(a),
        };
        let mut entries = self.entries.lock().expect("factor cache poisoned");
        entries.retain(|e| e.key != key);
        entries.insert(0, CacheEntry { key, solver });
        entries.truncate(self.capacity);
    }

    /// Looks up the cached prepared solver for `(backend, a)` without
    /// preparing anything on a miss — the block-level probe the sharded
    /// incremental path and diagnostics use. A successful lookup counts as
    /// a hit and refreshes the entry's LRU position; a miss counts nothing
    /// (the miss counter tracks preparations performed).
    pub fn get(
        &self,
        backend: &dyn SolverBackend,
        a: &Arc<CsrMatrix>,
    ) -> Option<Arc<PreparedSolver>> {
        let key = CacheKey {
            backend_config: backend.config_fingerprint(),
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            matrix_fingerprint: matrix_fingerprint(a),
        };
        let mut entries = self.entries.lock().expect("factor cache poisoned");
        let pos = entries
            .iter()
            .position(|e| e.key == key && e.solver.matrix().as_ref() == a.as_ref())?;
        let entry = entries.remove(pos);
        let solver = Arc::clone(&entry.solver);
        entries.insert(0, entry);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(solver)
    }

    /// Drops every cached solver prepared for an operator value-identical
    /// to `a` (any backend configuration), returning how many entries were
    /// removed. The sharded incremental path calls this on the superseded
    /// interior blocks and interface system of a perturbed prepare, so
    /// stale factors never crowd live ones out of the LRU list.
    pub fn invalidate(&self, a: &CsrMatrix) -> usize {
        let fp = matrix_fingerprint(a);
        let mut entries = self.entries.lock().expect("factor cache poisoned");
        let before = entries.len();
        entries.retain(|e| {
            e.key.matrix_fingerprint != fp
                || e.key.nrows != a.nrows()
                || e.key.ncols != a.ncols()
                || e.key.nnz != a.nnz()
                || e.solver.matrix().as_ref() != a
        });
        before - entries.len()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (i.e. preparations performed) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of currently cached solvers.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("factor cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached solver (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("factor cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn spd(n: usize) -> Arc<CsrMatrix> {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        Arc::new(coo.to_csr())
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect()
    }

    #[test]
    fn backends_agree_on_the_same_system() {
        let a = spd(64);
        let b = rhs(64);
        let backends: Vec<Box<dyn SolverBackend>> = vec![
            Box::new(DirectCholesky::default()),
            Box::new(Cg::with_tol(1e-12)),
            Box::new(Gmres::with_tol(1e-12)),
            Box::new(Auto::default()),
            Box::new(Auto {
                direct_limit: 8, // force the iterative arm
                tol: 1e-12,
            }),
        ];
        let reference = backends[0]
            .prepare(Arc::clone(&a))
            .unwrap()
            .solve(&b)
            .unwrap()
            .x;
        for backend in &backends {
            let prepared = backend.prepare(Arc::clone(&a)).unwrap();
            let sol = prepared.solve(&b).unwrap();
            assert!(
                a.residual(&sol.x, &b) < 1e-9,
                "{} residual too large",
                backend.name()
            );
            for (p, q) in sol.x.iter().zip(&reference) {
                assert!(
                    (p - q).abs() < 1e-7,
                    "{} disagrees with direct",
                    backend.name()
                );
            }
            assert_eq!(sol.report.rhs_count, 1);
            assert!(sol.report.solver_bytes > 0);
        }
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = spd(48);
        let prepared = DirectCholesky::default().prepare(Arc::clone(&a)).unwrap();
        let loads: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..48).map(|i| ((i + 3 * k) % 7) as f64 - 3.0).collect())
            .collect();
        let batch = prepared.solve_many(&loads, 4).unwrap();
        assert_eq!(batch.report.rhs_count, 5);
        assert_eq!(batch.xs.len(), 5);
        for (b, x) in loads.iter().zip(&batch.xs) {
            let single = prepared.solve(b).unwrap();
            assert_eq!(&single.x, x, "batched and individual solves must agree");
        }
    }

    #[test]
    fn solve_many_aggregates_iterative_reports() {
        let a = spd(32);
        let prepared = Cg::with_tol(1e-11).prepare(Arc::clone(&a)).unwrap();
        let loads: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..32).map(|i| ((i * (k + 2)) % 5) as f64).collect())
            .collect();
        let batch = prepared.solve_many(&loads, 2).unwrap();
        assert!(batch.report.iterations.unwrap() > 0);
        assert!(batch.report.residual.unwrap() <= 1e-11);
        for (b, x) in loads.iter().zip(&batch.xs) {
            assert!(a.residual(x, b) < 1e-9);
        }
    }

    fn indefinite_2x2() -> Arc<CsrMatrix> {
        // Symmetric but indefinite (eigenvalues -2 and 4): every Cholesky
        // attempt — shifted or not — fails until the ladder reaches GMRES.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        Arc::new(coo.to_csr())
    }

    #[test]
    fn auto_falls_back_on_indefinite_operators() {
        // Symmetric but indefinite: Cholesky must fail, Auto must still
        // produce a working (GMRES) solver — and, unlike the old silent
        // fallback, the triggering Cholesky error must be the first
        // recorded degradation step.
        let a = indefinite_2x2();
        let prepared = Auto::default().prepare(Arc::clone(&a)).unwrap();
        assert_eq!(prepared.backend(), "gmres");
        let trail = prepared.prep_degradation();
        let first = trail.steps().next().expect("fallback must be recorded");
        assert_eq!(first.rung, Rung::Regularized);
        assert!(matches!(
            first.error,
            LinalgError::NotPositiveDefinite { .. }
        ));
        assert_eq!(trail.last().unwrap().rung, Rung::Gmres);
        let sol = prepared.solve(&[1.0, 2.0]).unwrap();
        assert!(a.residual(&sol.x, &[1.0, 2.0]) < 1e-8);
        // The solve report carries the preparation trail too.
        assert_eq!(sol.report.degradation.len(), trail.len());
    }

    #[test]
    fn resilient_matches_direct_bitwise_on_clean_operators() {
        let a = spd(48);
        let direct = DirectCholesky::default().prepare(Arc::clone(&a)).unwrap();
        let res = Resilient::default().prepare(Arc::clone(&a)).unwrap();
        assert_eq!(res.backend(), "resilient");
        let loads: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..48).map(|i| ((i + 5 * k) % 9) as f64 - 4.0).collect())
            .collect();
        for b in &loads {
            let xd = direct.solve(b).unwrap().x;
            let sol = res.solve(b).unwrap();
            let bits_d: Vec<u64> = xd.iter().map(|v| v.to_bits()).collect();
            let bits_r: Vec<u64> = sol.x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_d, bits_r, "clean ladder solve must be bitwise direct");
            assert!(sol.report.degradation.is_empty());
            assert!(sol.report.verified_residual.unwrap() <= 1e-8);
        }
        let batch = res.solve_many(&loads, 4).unwrap();
        let direct_batch = direct.solve_many(&loads, 4).unwrap();
        for (x, xd) in batch.xs.iter().zip(&direct_batch.xs) {
            assert_eq!(x, xd, "batched ladder solve must match the panel path");
        }
        assert!(batch.report.degradation.is_empty());
        assert!(batch.report.verified_residual.is_some());
    }

    #[test]
    fn verify_enforce_rejects_a_sloppy_solve() {
        let a = spd(32);
        let b = rhs(32);
        // A loose CG solve passes report-only verification but fails
        // enforcement at a tolerance it never reached.
        let loose = Cg::with_tol(1e-3).prepare(Arc::clone(&a)).unwrap();
        let reported = loose.solve(&b).unwrap();
        assert!(reported.report.verified_residual.is_none());

        let mut enforced = Cg::with_tol(1e-3).prepare(Arc::clone(&a)).unwrap();
        enforced.verify = VerifyPolicy::Enforce { tol: 1e-12 };
        assert!(matches!(
            enforced.solve(&b),
            Err(LinalgError::DidNotConverge { .. })
        ));
        enforced.verify = VerifyPolicy::Report;
        let sol = enforced.solve(&b).unwrap();
        let rr = sol.report.verified_residual.unwrap();
        assert!(rr.is_finite() && rr > 1e-12);
    }

    #[test]
    fn nonfinite_inputs_are_rejected_with_typed_errors() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 4.0);
        }
        let mut poisoned = coo.to_csr();
        poisoned.values_mut()[2] = f64::NAN;
        let err = DirectCholesky::default()
            .prepare(Arc::new(poisoned))
            .unwrap_err();
        assert_eq!(
            err,
            LinalgError::NonFinite {
                context: "operator",
                index: 2
            }
        );

        let a = spd(8);
        let prepared = DirectCholesky::default().prepare(a).unwrap();
        let mut b = rhs(8);
        b[5] = f64::INFINITY;
        assert_eq!(
            prepared.solve(&b).unwrap_err(),
            LinalgError::NonFinite {
                context: "rhs",
                index: 5
            }
        );
    }

    #[test]
    fn failed_prepare_never_enters_the_cache() {
        let cache = FactorCache::new();
        let a = indefinite_2x2();
        let err = cache
            .prepare(&DirectCholesky::default(), &a)
            .expect_err("indefinite operator must fail the direct prepare");
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        assert!(cache.is_empty(), "failed prepares must never be cached");
        assert_eq!(cache.misses(), 0, "a failed prepare is not a cached miss");
    }

    #[test]
    fn cache_self_heals_a_corrupted_entry() {
        let cache = FactorCache::new();
        let backend = Resilient::default();
        let a = spd(24);
        let loads: Vec<Vec<f64>> = vec![rhs(24)];

        // Plant a factor of a *different* operator under `a`'s cache key —
        // a cached entry that has silently gone bad.
        let perturbed = Arc::new(shifted_copy(&a, 10.0));
        let mut corrupt = backend.prepare(perturbed).unwrap();
        corrupt.matrix = Arc::clone(&a);
        cache.inject(&backend, &a, Arc::new(corrupt));
        assert_eq!(cache.len(), 1);

        let (batch, healed) = cache.solve_many_healing(&backend, &a, &loads, 2).unwrap();
        assert!(healed, "a corrupted cached factor must trigger the heal");
        assert_eq!(
            batch.report.degradation.steps().next().unwrap().rung,
            Rung::Rebuilt
        );
        assert!(a.residual(&batch.xs[0], &loads[0]) < 1e-8);

        // The rebuilt entry replaced the corrupted one: the next call is a
        // clean hit with no degradation.
        let (batch, healed) = cache.solve_many_healing(&backend, &a, &loads, 2).unwrap();
        assert!(!healed);
        assert!(batch.report.degradation.is_empty());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prepare_with_status_reports_cache_provenance() {
        let cache = FactorCache::new();
        let backend = DirectCholesky::default();
        let a = spd(12);
        let (_, hit) = cache.prepare_with_status(&backend, &a).unwrap();
        assert!(!hit);
        let (_, hit) = cache.prepare_with_status(&backend, &a).unwrap();
        assert!(hit);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = spd(8);
        let prepared = DirectCholesky::default().prepare(a).unwrap();
        assert!(matches!(
            prepared.solve(&[1.0; 7]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            prepared.solve_many(&[vec![1.0; 8], vec![1.0; 9]], 2),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn factor_cache_hits_on_identical_systems() {
        let cache = FactorCache::new();
        let backend = DirectCholesky::default();
        let a = spd(24);
        let b = rhs(24);
        let first = cache.prepare(&backend, &a).unwrap();
        let x1 = first.solve(&b).unwrap().x;
        for _ in 0..3 {
            let again = cache.prepare(&backend, &a).unwrap();
            assert!(Arc::ptr_eq(&first, &again), "same factor must be reused");
            assert_eq!(again.solve(&b).unwrap().x, x1);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);

        // A matrix with identical pattern but different values must miss.
        let mut coo = CooMatrix::new(24, 24);
        for i in 0..24 {
            coo.push(i, i, 5.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < 24 {
                coo.push(i, i + 1, -1.0);
            }
        }
        let a2 = Arc::new(coo.to_csr());
        let other = cache.prepare(&backend, &a2).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn factor_cache_distinguishes_backend_configs() {
        let cache = FactorCache::new();
        let a = spd(16);
        cache.prepare(&Cg::with_tol(1e-6), &a).unwrap();
        cache.prepare(&Cg::with_tol(1e-12), &a).unwrap();
        assert_eq!(
            cache.misses(),
            2,
            "different tolerances must not share an entry"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn factor_cache_evicts_lru() {
        let cache = FactorCache::with_capacity(2);
        let backend = DirectCholesky::default();
        let (a, b, c) = (spd(4), spd(5), spd(6));
        cache.prepare(&backend, &a).unwrap();
        cache.prepare(&backend, &b).unwrap();
        cache.prepare(&backend, &a).unwrap(); // refresh a
        cache.prepare(&backend, &c).unwrap(); // evicts b
        assert_eq!(cache.len(), 2);
        cache.prepare(&backend, &a).unwrap(); // still cached
        assert_eq!(cache.hits(), 2);
        cache.prepare(&backend, &b).unwrap(); // was evicted → miss
        assert_eq!(cache.misses(), 4);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn dense_matrix_is_a_linear_operator() {
        let m = DenseMatrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        assert_eq!(LinearOperator::apply(&m, &[1.0, 1.0]), vec![2.0, 4.0]);
        assert!(m.rel_residual(&[1.0, 1.0], &[2.0, 4.0]) < 1e-15);
    }
}
