//! Dense and sparse linear algebra substrate for the MORE-Stress simulator.
//!
//! The MORE-Stress paper implements its numerics on top of PETSc; this crate
//! re-implements the subset actually needed by the algorithm, from scratch:
//!
//! * [`DenseMatrix`] — small dense matrices with LU solves (element matrices,
//!   Galerkin-projected reduced operators).
//! * [`CooMatrix`] / [`CsrMatrix`] — sparse matrix assembly and kernels
//!   (SpMV, sub-matrix extraction, transpose).
//! * [`SparseCholesky`] — an up-looking sparse Cholesky factorization with
//!   elimination-tree symbolic analysis and reverse Cuthill–McKee ordering,
//!   used by the one-shot local stage (factor once, many right-hand sides).
//! * [`solve_cg`] / [`solve_gmres`] — preconditioned iterative solvers used
//!   by the global stage (the paper solves the global system with GMRES).
//! * [`MemoryFootprint`] — analytic heap accounting used to report the memory
//!   columns of Tables 1 and 2.
//! * [`SolverBackend`] / [`PreparedSolver`] — the unified solver backend
//!   layer every solve site in the workspace routes through: prepare once
//!   (factor or build a preconditioner), then solve any number of
//!   right-hand sides, batched task-parallel via
//!   [`PreparedSolver::solve_many`].
//! * [`FactorCache`] — content-addressed memo of prepared solvers, so
//!   repeated solves over the same operator (many thermal loads on one
//!   lattice) pay for one factorization.
//!
//! # Example
//!
//! ```
//! use morestress_linalg::{CooMatrix, SparseCholesky};
//!
//! # fn main() -> Result<(), morestress_linalg::LinalgError> {
//! // A small SPD system: 2x2 finite-difference Laplacian + identity.
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 3.0); coo.push(0, 1, -1.0);
//! coo.push(1, 0, -1.0); coo.push(1, 1, 3.0); coo.push(1, 2, -1.0);
//! coo.push(2, 1, -1.0); coo.push(2, 2, 3.0);
//! let a = coo.to_csr();
//! let chol = SparseCholesky::factor(&a)?;
//! let x = chol.solve(&[1.0, 2.0, 3.0]);
//! let r = a.residual(&x, &[1.0, 2.0, 3.0]);
//! assert!(r < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

mod backend;
mod cholesky;
mod dense;
mod error;
mod iterative;
mod memory;
mod ordering;
mod sparse;
mod vecops;

pub use backend::{
    default_solve_threads, Auto, BackendSolution, BatchSolution, Cg, DirectCholesky, FactorCache,
    Gmres, LinearOperator, PrecondSpec, PreparedSolver, SolveReport, SolverBackend,
};
pub use cholesky::SparseCholesky;
pub use dense::{DenseLu, DenseMatrix};
pub use error::LinalgError;
pub use iterative::{
    solve_cg, solve_gmres, CgOptions, GmresOptions, IdentityPreconditioner, IterativeSolution,
    JacobiPreconditioner, Preconditioner, SsorPreconditioner,
};
pub use memory::MemoryFootprint;
pub use ordering::{bandwidth, reverse_cuthill_mckee, Permutation};
pub use sparse::{CooMatrix, CsrMatrix};
pub use vecops::{axpy, dot, norm2, norm_inf, scale, sub};
