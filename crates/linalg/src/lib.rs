//! Dense and sparse linear algebra substrate for the MORE-Stress simulator.
//!
//! The MORE-Stress paper implements its numerics on top of PETSc; this crate
//! re-implements the subset actually needed by the algorithm, from scratch:
//!
//! * [`DenseMatrix`] — small dense matrices with LU solves (element matrices,
//!   Galerkin-projected reduced operators).
//! * [`CooMatrix`] / [`CsrMatrix`] — sparse matrix assembly and kernels
//!   (SpMV, sub-matrix extraction, transpose).
//! * [`SparseCholesky`] — the scalar up-looking sparse Cholesky
//!   factorization with elimination-tree symbolic analysis; kept as the
//!   differential-testing oracle behind the blocked kernel.
//! * [`DenseKernel`] / [`KernelChoice`] — the swappable dense microkernel
//!   layer (`kernel.rs`) every flop-bearing loop routes through: the
//!   supernodal rank-k updates, panel Cholesky, triangular sweeps, the
//!   Schur clique condensation and the Krylov dot/axpy primitives. Three
//!   implementations: [`ScalarKernel`] (the original loops, the
//!   differential oracle), [`BlockedKernel`] (unrolled `mul_add` tiles
//!   with runtime FMA dispatch — the default), and an optional AVX2
//!   intrinsics kernel behind the `simd` cargo feature.
//! * [`SupernodalCholesky`] — the supernodal blocked Cholesky the
//!   `DirectCholesky` backend runs by default: dense column panels from
//!   relaxed supernode amalgamation, rank-k panel updates, and blocked
//!   multi-RHS triangular sweeps (`solve_panel`), so the paper's
//!   factor-once/solve-many economics (§4.2) run on dense contiguous
//!   kernels. The numeric factorization runs as an elimination-tree task
//!   DAG on the [`WorkPool`] ([`WorkPool::scope_dag`]), bitwise identical
//!   to the serial sweep at every pool cap. Orderings: RCM, separator
//!   based nested dissection, or [`FillOrdering::Auto`] (structure-probed
//!   per operator, the default).
//! * [`solve_cg`] / [`solve_gmres`] — preconditioned iterative solvers used
//!   by the global stage (the paper solves the global system with GMRES).
//! * [`MemoryFootprint`] — analytic heap accounting used to report the memory
//!   columns of Tables 1 and 2.
//! * [`SolverBackend`] / [`PreparedSolver`] — the unified solver backend
//!   layer every solve site in the workspace routes through: prepare once
//!   (factor or build a preconditioner), then solve any number of
//!   right-hand sides, batched task-parallel via
//!   [`PreparedSolver::solve_many`].
//! * [`FactorCache`] — content-addressed memo of prepared solvers, so
//!   repeated solves over the same operator (many thermal loads on one
//!   lattice) pay for one factorization.
//! * [`ShardPlan`] / [`Sharded`] — domain-decomposition sharding of the
//!   operator: a K-way interior/interface partition built from the
//!   nested-dissection separator machinery, and a Schur-complement backend
//!   that factors every interior block independently (concurrently, each
//!   cached under its own fingerprint) and couples them through one small
//!   factored interface system — so no single factorization ever spans the
//!   whole operator.
//! * [`WorkPool`] — the shared worker-pool runtime behind every parallel
//!   stage in the workspace (the n+1 local solves, batched multi-RHS global
//!   solves, block-wise stress reconstruction). One lazily-started set of
//!   resident workers replaces the per-call scoped thread spawns the
//!   stages used to pay for individually.
//!
//! # Threading model
//!
//! All parallelism routes through [`WorkPool::current`]: the process-wide
//! [`WorkPool::global`] pool by default (capped by the `MORESTRESS_THREADS`
//! environment variable, else `available_parallelism` clamped to 16), or an
//! explicitly-capped pool within a [`WorkPool::install`] scope. The
//! `threads` knobs across the workspace (`solve_many`'s `threads`
//! parameter, `LocalStageOptions::threads`, `GlobalStage::with_threads`)
//! are *cap overrides*: they can narrow a call below the pool cap but never
//! widen it, and they no longer spawn anything themselves. Nested stages
//! share the one pool, so within one call tree live threads never exceed
//! the cap however stages compose (independent application threads calling
//! in concurrently each add their own caller slot on top of the resident
//! workers — see the [`WorkPool`] module docs); [`SolveReport::workers`]
//! records the worker count a solve actually used.
//!
//! # Example
//!
//! ```
//! use morestress_linalg::{CooMatrix, SparseCholesky};
//!
//! # fn main() -> Result<(), morestress_linalg::LinalgError> {
//! // A small SPD system: 2x2 finite-difference Laplacian + identity.
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 3.0); coo.push(0, 1, -1.0);
//! coo.push(1, 0, -1.0); coo.push(1, 1, 3.0); coo.push(1, 2, -1.0);
//! coo.push(2, 1, -1.0); coo.push(2, 2, 3.0);
//! let a = coo.to_csr();
//! let chol = SparseCholesky::factor(&a)?;
//! let x = chol.solve(&[1.0, 2.0, 3.0]);
//! let r = a.residual(&x, &[1.0, 2.0, 3.0]);
//! assert!(r < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

mod backend;
mod cholesky;
mod dense;
mod error;
pub mod fault;
mod iterative;
mod kernel;
mod memory;
mod ordering;
mod pool;
mod schur;
mod shard;
mod sparse;
mod supernodal;
mod vecops;

pub use backend::{
    default_solve_threads, matrix_fingerprint, Auto, BackendSolution, BatchSolution, Cg,
    CholeskyKernel, DegradationStep, DegradationTrail, DirectCholesky, FactorCache, Gmres,
    LinearOperator, PrecondSpec, PreparedSolver, Resilient, Rung, SolveReport, SolverBackend,
    VerifyPolicy, MAX_DEGRADATION_STEPS,
};
pub use cholesky::SparseCholesky;
pub use dense::{DenseLu, DenseMatrix};
pub use error::LinalgError;
pub use fault::FaultPlan;
pub use iterative::{
    refine, solve_cg, solve_gmres, CgOptions, GmresOptions, IdentityPreconditioner,
    IterativeSolution, JacobiPreconditioner, Preconditioner, RefineOptions, SsorPreconditioner,
};
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub use kernel::SimdKernel;
pub use kernel::{BlockedKernel, DenseKernel, KernelChoice, ScalarKernel};
pub use memory::MemoryFootprint;
pub use ordering::{
    bandwidth, nested_dissection, reverse_cuthill_mckee, FillOrdering, Permutation, StructureProbe,
};
pub use pool::{TaskDag, WorkPool};
pub use schur::Sharded;
pub use shard::{PartitionHint, ShardPlan, ShardPlanStats};
pub use sparse::{CooMatrix, CsrMatrix};
pub use supernodal::{SupernodalCholesky, SupernodalOptions, SupernodeStats};
pub use vecops::{axpy, dot, norm2, norm_inf, scale, sub};

/// Shared unit-test operators (the direct-solver modules all exercise the
/// same 5-point lattice).
#[cfg(test)]
pub(crate) mod test_operators {
    use crate::{CooMatrix, CsrMatrix};

    /// A 2-D 5-point Laplacian with a +0.1-shifted diagonal (SPD also with
    /// Neumann-ish edges): `nx · ny` DoFs.
    pub(crate) fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let id = |i: usize, j: usize| j * nx + i;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let me = id(i, j);
                coo.push(me, me, 4.1);
                let mut link = |other: usize| coo.push(me, other, -1.0);
                if i > 0 {
                    link(id(i - 1, j));
                }
                if i + 1 < nx {
                    link(id(i + 1, j));
                }
                if j > 0 {
                    link(id(i, j - 1));
                }
                if j + 1 < ny {
                    link(id(i, j + 1));
                }
            }
        }
        coo.to_csr()
    }
}
