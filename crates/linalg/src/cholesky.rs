//! Sparse Cholesky factorization `A = L Lᵀ`.
//!
//! This is an up-looking factorization in the style of CSparse's `cs_chol`:
//! a symbolic pass builds the elimination tree and computes the pattern of
//! each row of `L` via `ereach`, then the numeric pass fills a
//! column-compressed `L`. A reverse Cuthill–McKee ordering is applied first
//! to limit fill on the structured-mesh operators this crate is used for.
//!
//! The paper's one-shot local stage relies on exactly this usage pattern:
//! *"the time-consuming LU or Cholesky decomposition needs to be performed
//! only once and the intermediate results can be reused for all of the local
//! problems"* (§4.2). [`SparseCholesky::solve`] takes `&self`, so the n+1
//! local right-hand sides can be solved from parallel threads sharing one
//! factor.

use crate::ordering::{reverse_cuthill_mckee, Permutation};
use crate::{CsrMatrix, LinalgError, MemoryFootprint};

const NONE: usize = usize::MAX;

/// A sparse Cholesky factorization of a symmetric positive definite matrix.
///
/// # Example
///
/// ```
/// use morestress_linalg::{CooMatrix, SparseCholesky};
///
/// # fn main() -> Result<(), morestress_linalg::LinalgError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0); coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0); coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let chol = SparseCholesky::factor(&a)?;
/// let x = chol.solve(&[1.0, 2.0]);
/// assert!(a.residual(&x, &[1.0, 2.0]) < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    perm: Permutation,
    /// `L` in compressed-sparse-column form; the diagonal entry is the first
    /// entry of every column.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseCholesky {
    /// Factors a symmetric positive definite matrix with RCM ordering.
    ///
    /// Only the lower triangle of `a` is read (the upper triangle is assumed
    /// to mirror it); symmetry is the caller's responsibility and is cheap to
    /// check with [`CsrMatrix::asymmetry`].
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears;
    /// [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LinalgError> {
        let perm = reverse_cuthill_mckee(a);
        Self::factor_with_permutation(a, perm)
    }

    /// Factors with the natural (identity) ordering. Exposed for the
    /// ordering ablation benchmark.
    ///
    /// # Errors
    ///
    /// Same as [`SparseCholesky::factor`].
    pub fn factor_natural(a: &CsrMatrix) -> Result<Self, LinalgError> {
        Self::factor_with_permutation(a, Permutation::identity(a.nrows()))
    }

    /// Factors with a caller-supplied fill-reducing permutation.
    ///
    /// # Errors
    ///
    /// Same as [`SparseCholesky::factor`].
    pub fn factor_with_permutation(a: &CsrMatrix, perm: Permutation) -> Result<Self, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                context: "sparse Cholesky (matrix must be square)",
                expected: a.nrows(),
                found: a.ncols(),
            });
        }
        let n = a.nrows();
        let ap = a.permuted_symmetric(&perm);

        // --- Symbolic analysis -------------------------------------------
        let parent = etree(&ap);
        // Count entries per column of L: one diagonal each, plus one entry in
        // column i for every row k whose ereach contains i.
        let mut counts = vec![1usize; n];
        {
            let mut w = vec![NONE; n];
            let mut stack = vec![0usize; n];
            for k in 0..n {
                let top = ereach(&ap, k, &parent, &mut w, &mut stack);
                for &i in &stack[top..n] {
                    counts[i] += 1;
                }
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for i in 0..n {
            col_ptr[i + 1] = col_ptr[i] + counts[i];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];

        // --- Numeric factorization (up-looking) --------------------------
        // `next[i]` is the next free slot in column i (slot col_ptr[i] is the
        // diagonal, filled when row i itself is factored).
        let mut next: Vec<usize> = (0..n).map(|i| col_ptr[i] + 1).collect();
        let mut x = vec![0.0f64; n];
        let mut w = vec![NONE; n];
        let mut stack = vec![0usize; n];
        for k in 0..n {
            let top = ereach(&ap, k, &parent, &mut w, &mut stack);
            // Scatter row k of A (columns <= k; by symmetry this is the upper
            // part of column k).
            let mut d = 0.0;
            {
                let (cols, vals) = ap.row(k);
                for (&j, &v) in cols.iter().zip(vals) {
                    match j.cmp(&k) {
                        std::cmp::Ordering::Less => x[j] = v,
                        std::cmp::Ordering::Equal => d = v,
                        std::cmp::Ordering::Greater => {}
                    }
                }
            }
            // Sparse triangular solve L[0..k,0..k] xᵀ = A[k,0..k]ᵀ over the
            // ereach pattern, in topological order.
            for t in top..n {
                let i = stack[t];
                let lii = values[col_ptr[i]];
                let lki = x[i] / lii;
                x[i] = 0.0;
                for p in (col_ptr[i] + 1)..next[i] {
                    x[row_idx[p]] -= values[p] * lki;
                }
                d -= lki * lki;
                let p = next[i];
                next[i] += 1;
                row_idx[p] = k;
                values[p] = lki;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { row: k, pivot: d });
            }
            row_idx[col_ptr[k]] = k;
            values[col_ptr[k]] = d.sqrt();
        }

        Ok(Self {
            n,
            perm,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries in the factor `L` (a fill measure; see the
    /// ordering ablation).
    pub fn factor_nnz(&self) -> usize {
        self.values.len()
    }

    /// Solves `A x = b` by two triangular solves.
    ///
    /// Takes `&self`: many right-hand sides can be solved in parallel from a
    /// shared factor, which is how the one-shot local stage processes its
    /// n+1 local problems.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut scratch = vec![0.0; self.n];
        self.solve_with(b, &mut x, &mut scratch);
        x
    }

    /// Allocation-free solve: `x = A⁻¹ b` with a caller-provided scratch
    /// buffer (holds the solution in the permuted basis). Batched callers
    /// reuse one scratch per worker instead of paying two `Vec` allocations
    /// per solve, which is what [`SparseCholesky::solve`] used to do.
    ///
    /// # Panics
    ///
    /// Panics if `b`, `x` or `scratch` are not of length `self.dim()`.
    pub fn solve_with(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(b.len(), self.n, "cholesky solve: rhs length");
        self.perm.apply_into(b, scratch);
        self.solve_permuted_in_place(scratch);
        self.perm.apply_inverse_into(scratch, x);
    }

    /// Solves `A X = B` for a whole panel of right-hand sides in place.
    ///
    /// `rhs` is an `n × nrhs` column-major matrix (each right-hand side is
    /// one contiguous column); on return each column holds its solution.
    /// The triangular sweeps are *blocked over the panel*: one pass over
    /// the factor's columns serves every right-hand side, so the factor's
    /// values and indices are read once per sweep instead of once per
    /// right-hand side. Per column, the floating-point operation sequence
    /// is identical to [`SparseCholesky::solve`] — panel solutions are
    /// bitwise equal to looped single solves.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.dim() * nrhs`.
    pub fn solve_panel(&self, rhs: &mut [f64], nrhs: usize) {
        let mut scratch = vec![0.0; self.n];
        self.solve_panel_with(rhs, nrhs, &mut scratch);
    }

    /// Allocation-free variant of [`SparseCholesky::solve_panel`] with a
    /// caller-provided scratch of length `self.dim()`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.dim() * nrhs` or
    /// `scratch.len() != self.dim()`.
    pub fn solve_panel_with(&self, rhs: &mut [f64], nrhs: usize, scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n * nrhs, "cholesky panel solve: rhs size");
        // Permute every column into the factor basis.
        for r in 0..nrhs {
            let col = &mut rhs[r * n..(r + 1) * n];
            self.perm.apply_into(col, scratch);
            col.copy_from_slice(scratch);
        }
        // Forward: L Y = B (column-oriented, all right-hand sides per
        // factor column).
        for j in 0..n {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            let diag = self.values[lo];
            let idx = &self.row_idx[(lo + 1)..hi];
            let val = &self.values[(lo + 1)..hi];
            for r in 0..nrhs {
                let x = &mut rhs[r * n..(r + 1) * n];
                let yj = x[j] / diag;
                x[j] = yj;
                for (&i, &v) in idx.iter().zip(val) {
                    x[i] -= v * yj;
                }
            }
        }
        // Backward: Lᵀ X = Y.
        for j in (0..n).rev() {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            let diag = self.values[lo];
            let idx = &self.row_idx[(lo + 1)..hi];
            let val = &self.values[(lo + 1)..hi];
            for r in 0..nrhs {
                let x = &mut rhs[r * n..(r + 1) * n];
                let mut s = x[j];
                for (&i, &v) in idx.iter().zip(val) {
                    s -= v * x[i];
                }
                x[j] = s / diag;
            }
        }
        // Back to the natural basis.
        for r in 0..nrhs {
            let col = &mut rhs[r * n..(r + 1) * n];
            self.perm.apply_inverse_into(col, scratch);
            col.copy_from_slice(scratch);
        }
    }

    /// In-place solve in the *permuted* basis (both triangular sweeps).
    fn solve_permuted_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        // Forward: L y = x (column-oriented).
        for j in 0..n {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            let yj = x[j] / self.values[lo];
            x[j] = yj;
            for p in (lo + 1)..hi {
                x[self.row_idx[p]] -= self.values[p] * yj;
            }
        }
        // Backward: Lᵀ x = y.
        for j in (0..n).rev() {
            let lo = self.col_ptr[j];
            let hi = self.col_ptr[j + 1];
            let mut s = x[j];
            for p in (lo + 1)..hi {
                s -= self.values[p] * x[self.row_idx[p]];
            }
            x[j] = s / self.values[lo];
        }
    }
}

impl MemoryFootprint for SparseCholesky {
    fn heap_bytes(&self) -> usize {
        self.col_ptr.heap_bytes() + self.row_idx.heap_bytes() + self.values.heap_bytes()
    }
}

/// Elimination tree of the pattern of a symmetric matrix (lower triangle of
/// each row is read). `parent[i] == NONE` marks a root.
///
/// Shared with the supernodal factorization (`crate::supernodal`), whose
/// symbolic analysis runs the same etree + `ereach` machinery.
pub(crate) fn etree(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        for &j in a.row(k).0 {
            if j >= k {
                break; // columns sorted: rest of the row is upper triangle
            }
            let mut i = j;
            while i != NONE && i < k {
                let inext = ancestor[i];
                ancestor[i] = k;
                if inext == NONE {
                    parent[i] = k;
                    break;
                }
                i = inext;
            }
        }
    }
    parent
}

/// Computes the pattern of row `k` of `L`: the nodes reachable from the
/// below-diagonal entries of row `k` of `A` through the elimination tree.
/// On return, `stack[top..n]` holds the pattern in topological order.
pub(crate) fn ereach(
    a: &CsrMatrix,
    k: usize,
    parent: &[usize],
    w: &mut [usize],
    stack: &mut [usize],
) -> usize {
    let n = a.nrows();
    let mut top = n;
    w[k] = k; // mark k itself
    let mut path = [0usize; 64];
    for &j in a.row(k).0 {
        if j >= k {
            break;
        }
        // Walk up the etree until we hit a marked node, recording the path.
        let mut i = j;
        let mut len = 0usize;
        let mut overflow: Vec<usize> = Vec::new();
        while i != NONE && w[i] != k {
            if len < path.len() {
                path[len] = i;
            } else {
                overflow.push(i);
            }
            len += 1;
            w[i] = k;
            i = parent[i];
        }
        // Push the path onto the output stack (deepest node ends nearest the
        // top so that `stack[top..]` is in topological order).
        while len > 0 {
            len -= 1;
            let node = if len < path.len() {
                path[len]
            } else {
                overflow[len - path.len()]
            };
            top -= 1;
            stack[top] = node;
        }
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_operators::laplacian_2d;
    use crate::CooMatrix;

    #[test]
    fn factor_and_solve_laplacian() {
        let a = laplacian_2d(7, 5);
        let chol = SparseCholesky::factor(&a).unwrap();
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.spmv(&x_true);
        let x = chol.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn natural_ordering_agrees_with_rcm() {
        let a = laplacian_2d(6, 6);
        let b: Vec<f64> = (0..36).map(|i| (i % 7) as f64 - 3.0).collect();
        let x1 = SparseCholesky::factor(&a).unwrap().solve(&b);
        let x2 = SparseCholesky::factor_natural(&a).unwrap().solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn rcm_reduces_fill_on_scrambled_grid() {
        let a = laplacian_2d(15, 15);
        // Scramble with a symmetric permutation to destroy the natural band.
        let n = a.nrows();
        let scramble: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            for i in 0..n {
                v.swap(i, (i * 101 + 3) % n);
            }
            v
        };
        let p = Permutation::new(scramble).unwrap();
        let scrambled = a.permuted_symmetric(&p);
        let fill_rcm = SparseCholesky::factor(&scrambled).unwrap().factor_nnz();
        let fill_nat = SparseCholesky::factor_natural(&scrambled)
            .unwrap()
            .factor_nnz();
        assert!(
            fill_rcm < fill_nat,
            "RCM fill {fill_rcm} should beat natural fill {fill_nat} on a scrambled grid"
        );
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert!(matches!(
            SparseCholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn dense_spd_matches_dense_lu() {
        // A dense-ish SPD matrix: A = M Mᵀ + I assembled sparsely.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    let mik = ((i * 7 + k * 3) % 5) as f64 - 2.0;
                    let mjk = ((j * 7 + k * 3) % 5) as f64 - 2.0;
                    v += mik * mjk;
                }
                if i == j {
                    v += n as f64;
                }
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = SparseCholesky::factor(&a).unwrap().solve(&b);
        assert!(a.residual(&x, &b) < 1e-12);
    }

    #[test]
    fn parallel_solves_share_one_factor() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let a = laplacian_2d(10, 10);
        let chol = SparseCholesky::factor(&a).unwrap();
        let n = a.nrows();
        // Rendezvous (bounded, so never a deadlock) before solving: without
        // it a fast caller could drain the whole task set before the pool's
        // resident workers wake, and the solves would never overlap — the
        // very thing this regression test exists to exercise.
        let arrived = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        crate::WorkPool::new(4).scope_workers(4, |_| {
            arrived.fetch_add(1, Ordering::SeqCst);
            let t0 = std::time::Instant::now();
            while arrived.load(Ordering::SeqCst) < 2 && t0.elapsed().as_millis() < 200 {
                std::thread::yield_now();
            }
            loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= 16 {
                    return;
                }
                let b: Vec<f64> = (0..n).map(|i| ((i + t) % 9) as f64).collect();
                let x = chol.solve(&b);
                assert!(a.residual(&x, &b) < 1e-10);
            }
        });
        assert!(next.load(Ordering::Relaxed) >= 16, "all tasks claimed");
    }
}
