//! Supernodal blocked sparse Cholesky factorization `A = L Lᵀ`, with an
//! elimination-tree-parallel numeric phase.
//!
//! The scalar kernel in [`crate::cholesky`] touches one nonzero at a time:
//! every floating-point operation pays an index load, and every right-hand
//! side re-streams the whole factor. This module rebuilds the factorization
//! around **supernodes** — runs of adjacent columns whose below-diagonal
//! sparsity patterns coincide (exactly, or nearly, under *relaxed
//! amalgamation*). Each supernode is stored as one dense column panel, so
//! both the factorization and the triangular solves run as dense rank-k
//! updates over contiguous `f64` slices (`dsyrk`/`dgemm`-shaped loops the
//! compiler autovectorizes), with the sparse indices consulted once per
//! panel instead of once per entry.
//!
//! # Why this matters for MORE-Stress
//!
//! The paper's whole cost model (§4.2) is *factor once, solve many*: the
//! local stage reuses one decomposition for all n+1 local problems, and the
//! batched global stage re-solves one cached factor for every thermal load.
//! Both stages are therefore bounded by exactly the two things supernodes
//! accelerate: the one-time factorization (dense rank-k updates instead of
//! scalar scatter, and since PR 4 scheduled task-parallel over the
//! elimination tree) and the per-right-hand-side triangular sweeps
//! ([`SupernodalCholesky::solve_panel`] streams each panel once for a whole
//! block of right-hand sides). The scalar kernel stays available as the
//! reference oracle — `CholeskyKernel::Scalar` in the backend layer — and
//! differential tests pin agreement between the two to ≤1e-12.
//!
//! # Algorithm
//!
//! 1. **Symbolic** ([`Symbolic::analyze`], shared by both numeric paths):
//!    the elimination tree is computed **once** and reused everywhere — the
//!    `ereach` column-count sweep, the amalgamation test, the supernodal
//!    etree, and the task schedule. Columns are grouped greedily
//!    left-to-right: column `j` joins the supernode ending at `j-1` when
//!    `parent[j-1] == j` and either the patterns match exactly (a
//!    *fundamental* supernode) or the padding introduced by storing the
//!    union pattern stays under the relaxation budget. The phase also
//!    precomputes the **update schedule**: for every supernode, the exact
//!    ordered list of descendant contributions the serial left-looking
//!    sweep would apply (see *Determinism* below), plus subtree weights of
//!    the supernodal etree for schedule balance.
//! 2. **Numeric**: two task kinds cover the work.
//!
//!    * A **panel task** per supernode: assemble the panel from `A`;
//!      if the panel's whole descendant-update load fits the work budget,
//!      stream the updates `C = G·G₁ᵀ` (contiguous axpy loops scattered
//!      through precomputed relative indices) directly into the panel,
//!      otherwise subtract the finished update chunks (below)
//!      element-wise in fixed chunk order; then factor the panel in place
//!      by a dense blocked column Cholesky.
//!    * An **update-chunk task** per work-bounded slice of the remaining
//!      descendant updates of a heavy panel, accumulating its slice into a
//!      private panel-shaped buffer. Without these, a left-looking
//!      schedule serializes *all* update flops into a separator on the
//!      separator's own task — on a 2-D nested-dissection lattice that
//!      chains ~70% of total work onto the root path, capping tree
//!      parallelism at ~1.4×; with them the bulk of the update work rides
//!      independent tasks and the critical path collapses to the dense
//!      panel chain.
//!
//!    The serial path runs the tasks left-to-right (each panel's chunks,
//!    then the panel); the parallel path runs the *same task bodies* as a
//!    dependency DAG on the shared [`WorkPool`]
//!    ([`WorkPool::scope_dag`]): a chunk is ready when the descendants it
//!    reads are factored, a panel when its chunks and streamed-prefix
//!    descendants finished. Ready tasks are claimed heaviest-subtree
//!    first, and every worker reuses one dense scratch across its tasks.
//! 3. **Solve**: forward/backward substitution walks supernodes; per
//!    supernode the diagonal block is a dense triangular solve and the
//!    below-diagonal block a dense mat-vec into a contiguous gather/scatter
//!    buffer. [`SupernodalCholesky::solve_panel`] keeps the per-column
//!    operation order identical to the single-RHS path, so panel solves are
//!    bitwise equal to looped solves.
//!
//! # Determinism contract
//!
//! The parallel factorization is **bitwise identical** to the serial sweep
//! at every pool cap — the same invariance the rest of the pipeline honors
//! (`crates/core/tests/thread_invariance.rs`). Floating-point addition is
//! not associative, so this only holds because nothing about the numeric
//! phase depends on scheduling:
//!
//! * every task writes disjoint, index-addressed memory (a panel task its
//!   panel, a chunk task its private accumulator);
//! * the update partition — which descendants are streamed, how the rest
//!   are sliced into chunks — and every application order are *structural*:
//!   the symbolic phase simulates the serial pending queues, freezes the
//!   resulting descendant order per supernode, and cuts chunks by a fixed
//!   work budget, all independent of worker count or scheduling;
//! * a task reads only panels the DAG ordered before it (the scope's
//!   ready-queue mutex provides the happens-before edge), and chunk
//!   accumulators are combined by the panel task in fixed chunk order.
//!
//! Which supernodes *fail* first on a non-SPD operator is
//! scheduling-dependent, so only the success path is bitwise-pinned; the
//! error path still deterministically reports the smallest failing pivot
//! row among the tasks that ran.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::cholesky::{ereach, etree};
use crate::kernel::{DenseKernel, KernelChoice};
use crate::ordering::{tree_metrics, FillOrdering, Permutation, TreeMetrics};
use crate::pool::TaskDag;
use crate::{CsrMatrix, LinalgError, MemoryFootprint, WorkPool};

const NONE: usize = usize::MAX;

/// Tuning knobs of the supernode detection and factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupernodalOptions {
    /// Hard cap on supernode width (columns per panel). Wider panels give
    /// longer dense inner loops but cubically growing dense work on the
    /// trailing (dense-ish) supernodes; 32 is a good CPU default.
    pub max_width: usize,
    /// Relaxed-amalgamation budget: a merge is accepted while the padding
    /// (stored zeros) of the merged panel stays below this fraction of its
    /// true nonzeros. `0.0` yields exactly the fundamental supernodes.
    pub relax: f64,
    /// Small supernodes are merged more aggressively: below this width the
    /// padding budget is doubled (panel overhead dominates true flops
    /// there).
    pub small_width: usize,
    /// Runs the numeric phase as an elimination-tree task DAG on the
    /// current [`WorkPool`] (serial when the pool cap is 1). Results are
    /// bitwise identical either way — see the module docs — so this is
    /// purely a wall-clock knob.
    pub parallel: bool,
    /// Minimum estimated-flop budget per update-chunk task of the parallel
    /// schedule (see the module docs; the effective budget also scales
    /// with the factorization size so chunk-accumulator overhead stays
    /// bounded). Changing it changes how descendant updates are grouped —
    /// and therefore the factor's low-order bits — so like `max_width` it
    /// is part of the structural configuration, *not* a per-run knob: the
    /// serial and parallel paths always share one partition. Mostly for
    /// tests, which shrink it to force chunking on small operators.
    pub chunk_work: u64,
    /// Which [`DenseKernel`] runs the flop-bearing loops (rank-k updates,
    /// panel Cholesky, triangular sweeps). Each kernel is individually
    /// deterministic — serial and parallel factors stay bitwise identical
    /// at every pool cap *per kernel* — but different kernels associate
    /// sums differently, so like `chunk_work` the choice is part of the
    /// structural configuration and of the cache fingerprint.
    pub kernel: KernelChoice,
}

impl Default for SupernodalOptions {
    fn default() -> Self {
        Self {
            max_width: 32,
            relax: 0.2,
            small_width: 8,
            parallel: true,
            chunk_work: CHUNK_WORK_BUDGET,
            kernel: KernelChoice::default(),
        }
    }
}

/// Shape statistics of a supernodal factor (reported through
/// [`SolveReport`](crate::SolveReport) and the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupernodeStats {
    /// Number of supernodes (column panels).
    pub supernodes: usize,
    /// Widest panel (columns).
    pub max_width: usize,
    /// Stored factor entries including relaxation padding.
    pub stored_nnz: usize,
    /// True factor nonzeros (what the scalar kernel would store).
    pub true_nnz: usize,
    /// Height of the supernodal elimination tree: panels on the longest
    /// root-to-leaf chain, i.e. the unweighted depth of the task DAG.
    pub etree_height: usize,
    /// Weighted critical path of the numeric task DAG (panel + update-chunk
    /// tasks, estimated work units along the heaviest dependency chain):
    /// the work no schedule can overlap. `total_work / critical_path`
    /// bounds the parallel speedup of the numeric phase.
    pub critical_path: usize,
    /// Estimated work of the whole factorization, same units as
    /// [`critical_path`](SupernodeStats::critical_path).
    pub total_work: usize,
    /// Heaviest *parallel unit* of the etree (subtree rooted at a child of
    /// a branch node — the pieces the schedule can overlap). Close to
    /// [`total_work`](SupernodeStats::total_work) means one branch
    /// dominates and tree parallelism is poor.
    pub max_subtree_weight: usize,
    /// Mean weight of the parallel units (see
    /// [`max_subtree_weight`](SupernodeStats::max_subtree_weight)).
    pub mean_subtree_weight: f64,
    /// Resolved name of the [`DenseKernel`] that ran the numeric phase
    /// (`"scalar"`, `"blocked"`, or `"avx2"`).
    pub kernel: &'static str,
}

/// The symbolic analysis of one factorization: supernode partition, row
/// structure, panel layout, and the deterministic update schedule shared by
/// the serial and parallel numeric paths.
struct Symbolic {
    n: usize,
    /// Supernode `s` covers permuted columns `sn_ptr[s]..sn_ptr[s+1]`.
    sn_ptr: Vec<usize>,
    /// Row lists: supernode `s` owns `rows[row_ptr[s]..row_ptr[s+1]]`,
    /// sorted ascending; the first `width(s)` entries are the diagonal
    /// block columns themselves.
    row_ptr: Vec<usize>,
    rows: Vec<usize>,
    /// Dense panel layout: supernode `s` owns
    /// `values[val_ptr[s]..val_ptr[s+1]]`.
    val_ptr: Vec<usize>,
    true_nnz: usize,
    max_width: usize,
    /// Update schedule in CSR form: factoring supernode `s` applies the
    /// descendant contributions `upd[upd_ptr[s]..upd_ptr[s+1]]` — pairs of
    /// (descendant, row cursor) — in exactly this order, which is the order
    /// the serial left-looking sweep's pending queues would produce.
    upd_ptr: Vec<usize>,
    upd: Vec<(usize, usize)>,
    /// The prefix `upd[upd_ptr[s]..stream_hi[s]]` is streamed directly into
    /// the panel by panel task `s`; the rest is sliced into update-chunk
    /// tasks.
    stream_hi: Vec<usize>,
    /// Update-chunk tasks, grouped per panel: panel `s` owns chunks
    /// `chk_ptr[s]..chk_ptr[s+1]`; chunk `t` covers updates
    /// `upd[chunk_lo[t]..chunk_hi[t]]` of panel `chunk_panel[t]` and
    /// accumulates into `acc[acc_ptr[t]..acc_ptr[t] + w·m]`.
    chk_ptr: Vec<usize>,
    chunk_lo: Vec<usize>,
    chunk_hi: Vec<usize>,
    chunk_panel: Vec<usize>,
    acc_ptr: Vec<usize>,
    /// Total accumulator storage (f64 entries) the chunk tasks need.
    acc_len: usize,
    /// Chunk-accumulator reduction trees, grouped per panel: panel `s`
    /// owns combines `cmb_ptr[s]..cmb_ptr[s+1]`; combine `u` folds
    /// accumulator `cmb_src[u]` into `cmb_dst[u]` element-wise (both are
    /// global chunk indices). Within a panel the combines form a fixed
    /// stride-doubling pairwise tree rooted at the panel's first chunk —
    /// pure structure, independent of worker count — so on wide
    /// separators the O(chunks) accumulator folds ride log-depth parallel
    /// tasks instead of the panel task's critical path. Listed in
    /// stride order, which is the order the serial sweep runs them.
    cmb_ptr: Vec<usize>,
    cmb_dst: Vec<usize>,
    cmb_src: Vec<usize>,
    /// Longest weighted path through the task DAG — the schedule's span.
    critical_path: u64,
    /// Summed task weights.
    total_work: u64,
    /// Etree shape metrics over whole-supernode work (panel + chunks);
    /// subtree weights double as DAG claim priorities.
    metrics: TreeMetrics,
}

/// Minimum estimated-flop budget per update-chunk task: big enough that
/// task overhead (one DAG pop, one accumulator zero/apply pass) vanishes,
/// small enough that a root separator's update load splits into dozens of
/// parallel chunks. The effective budget grows with the factorization
/// (see [`Symbolic::analyze`]) so the chunk count — and with it the
/// accumulator traffic the serial path pays — stays bounded on huge
/// operators.
const CHUNK_WORK_BUDGET: u64 = 1 << 18;

/// Cap on the number of update chunks the adaptive budget aims for.
const CHUNK_COUNT_TARGET: u64 = 256;

impl Symbolic {
    fn num_sn(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// Runs the full symbolic phase on the permuted operator. The
    /// elimination tree is computed once, up front, and reused by the
    /// column-count sweep, the amalgamation test, the row-structure sweep,
    /// and the supernodal task schedule.
    fn analyze(ap: &CsrMatrix, opts: &SupernodalOptions) -> Self {
        let n = ap.nrows();

        // --- Column counts of L via the etree row sweep -------------------
        let parent = etree(ap);
        let mut counts = vec![1usize; n]; // diagonal entries
        {
            let mut w = vec![NONE; n];
            let mut stack = vec![0usize; n];
            for k in 0..n {
                let top = ereach(ap, k, &parent, &mut w, &mut stack);
                for &i in &stack[top..n] {
                    counts[i] += 1;
                }
            }
        }
        let true_nnz: usize = counts.iter().sum();

        // --- Supernode detection with relaxed amalgamation ----------------
        // Greedy left-to-right: extend the current supernode [c0..j) with
        // column j iff the etree links j-1 → j (which guarantees the merged
        // row structure is {c0..j} ∪ pattern(j) \ {j}) and the padding
        // stays within budget. For a supernode [c0..c) the row structure
        // is {c0..c-1} ∪ (pattern(c-1) \ {c-1}), so the panel height is
        // (c - c0) + counts[c-1] - 1 in closed form.
        let max_width_cap = opts.max_width.max(1);
        let mut sn_ptr: Vec<usize> = vec![0];
        if n > 0 {
            let mut c0 = 0usize;
            let mut true_in_sn = counts[0];
            for j in 1..n {
                let w = j - c0;
                let mut accept = false;
                if parent[j - 1] == j && w < max_width_cap {
                    if counts[j - 1] == counts[j] + 1 {
                        // Fundamental: identical below-diagonal patterns,
                        // zero padding added.
                        accept = true;
                    } else {
                        // Relaxed: accept while padding stays in budget.
                        let m = (w + 1) + counts[j] - 1;
                        let stored = (w + 1) * m - w * (w + 1) / 2;
                        let true_new = true_in_sn + counts[j];
                        let budget = if w < opts.small_width {
                            2.0 * opts.relax
                        } else {
                            opts.relax
                        };
                        accept = (stored - true_new) as f64 <= budget * true_new as f64;
                    }
                }
                if accept {
                    true_in_sn += counts[j];
                } else {
                    sn_ptr.push(j);
                    c0 = j;
                    true_in_sn = counts[j];
                }
            }
            sn_ptr.push(n);
        }
        let num_sn = sn_ptr.len() - 1;
        let mut col_to_sn = vec![0usize; n];
        for s in 0..num_sn {
            for c in sn_ptr[s]..sn_ptr[s + 1] {
                col_to_sn[c] = s;
            }
        }
        let max_width = (0..num_sn)
            .map(|s| sn_ptr[s + 1] - sn_ptr[s])
            .max()
            .unwrap_or(0);

        // --- Row lists: diagonal block plus pattern of the last column ----
        // pattern(last col) \ {last col} is collected with a second ereach
        // sweep over the same etree: row k of L has an entry in column i
        // iff i ∈ ereach(k).
        let mut row_ptr = vec![0usize; num_sn + 1];
        for s in 0..num_sn {
            let last = sn_ptr[s + 1] - 1;
            let w = sn_ptr[s + 1] - sn_ptr[s];
            row_ptr[s + 1] = row_ptr[s] + w + counts[last] - 1;
        }
        let mut rows = vec![0usize; row_ptr[num_sn]];
        {
            // Diagonal block rows first.
            for s in 0..num_sn {
                for (i, c) in (sn_ptr[s]..sn_ptr[s + 1]).enumerate() {
                    rows[row_ptr[s] + i] = c;
                }
            }
            // Below rows in ascending order (k increases monotonically).
            let mut next: Vec<usize> = (0..num_sn)
                .map(|s| row_ptr[s] + (sn_ptr[s + 1] - sn_ptr[s]))
                .collect();
            let mut w = vec![NONE; n];
            let mut stack = vec![0usize; n];
            for k in 0..n {
                let top = ereach(ap, k, &parent, &mut w, &mut stack);
                for &i in &stack[top..n] {
                    let s = col_to_sn[i];
                    if i == sn_ptr[s + 1] - 1 {
                        rows[next[s]] = k;
                        next[s] += 1;
                    }
                }
            }
            debug_assert!((0..num_sn).all(|s| next[s] == row_ptr[s + 1]));
        }

        // --- Panel storage layout -----------------------------------------
        let mut val_ptr = vec![0usize; num_sn + 1];
        for s in 0..num_sn {
            let w = sn_ptr[s + 1] - sn_ptr[s];
            let m = row_ptr[s + 1] - row_ptr[s];
            val_ptr[s + 1] = val_ptr[s] + w * m;
        }

        // --- Supernodal etree + deterministic update schedule -------------
        // The supernodal etree contracts the column etree: the parent of s
        // is the supernode owning s's first below-diagonal row (= the etree
        // parent of s's last column). The update schedule replays the
        // serial left-looking sweep's pending queues symbolically, freezing
        // per supernode the exact descendant order the serial numeric loop
        // would consume — the parallel path then applies updates in this
        // order, which is what makes it bitwise identical to serial.
        let mut sn_parent = vec![NONE; num_sn];
        for s in 0..num_sn {
            let w = sn_ptr[s + 1] - sn_ptr[s];
            let m = row_ptr[s + 1] - row_ptr[s];
            if m > w {
                sn_parent[s] = col_to_sn[rows[row_ptr[s] + w]];
            }
        }
        let mut upd_ptr = vec![0usize; num_sn + 1];
        let mut upd: Vec<(usize, usize)> = Vec::new();
        let mut upd_work: Vec<u64> = Vec::new();
        {
            let mut pending: Vec<Vec<usize>> = vec![Vec::new(); num_sn];
            let mut cursor = vec![0usize; num_sn];
            for s in 0..num_sn {
                let c1 = sn_ptr[s + 1];
                for d in std::mem::take(&mut pending[s]) {
                    let rows_d = &rows[row_ptr[d]..row_ptr[d + 1]];
                    let wd = sn_ptr[d + 1] - sn_ptr[d];
                    let md = rows_d.len();
                    let p = cursor[d];
                    let p2 = p + rows_d[p..].partition_point(|&r| r < c1);
                    upd.push((d, p));
                    upd_work.push((wd * (md - p) * (p2 - p)) as u64);
                    if p2 < md {
                        cursor[d] = p2;
                        pending[col_to_sn[rows_d[p2]]].push(d);
                    }
                }
                upd_ptr[s + 1] = upd.len();
                let w = sn_ptr[s + 1] - sn_ptr[s];
                let m = row_ptr[s + 1] - row_ptr[s];
                if m > w {
                    cursor[s] = w;
                    pending[col_to_sn[rows[row_ptr[s] + w]]].push(s);
                }
            }
        }

        // --- Update partition: streamed or work-bounded chunks ------------
        // Structural (worker-count-independent) by construction: a panel
        // whose whole update load fits the budget streams it directly
        // (keeping the PR-3 single-stream behavior exactly — no
        // accumulator overhead where panels are small); a heavier panel
        // streams *nothing* and slices everything into accumulator chunks,
        // so no serial update prefix rides the critical path.
        let mut stream_hi = vec![0usize; num_sn];
        let mut chk_ptr = vec![0usize; num_sn + 1];
        let mut chunk_lo: Vec<usize> = Vec::new();
        let mut chunk_hi: Vec<usize> = Vec::new();
        let mut chunk_panel: Vec<usize> = Vec::new();
        let mut acc_ptr: Vec<usize> = Vec::new();
        let mut chunk_weight: Vec<u64> = Vec::new();
        let mut cmb_ptr = vec![0usize; num_sn + 1];
        let mut cmb_dst: Vec<usize> = Vec::new();
        let mut cmb_src: Vec<usize> = Vec::new();
        let mut panel_weight = vec![0u64; num_sn];
        let mut acc_len = 0usize;
        // Structure-only adaptive budget: at least the configured floor,
        // and at most ~CHUNK_COUNT_TARGET chunks across the whole
        // factorization.
        let budget = opts
            .chunk_work
            .max(1)
            .max(upd_work.iter().sum::<u64>() / CHUNK_COUNT_TARGET);
        for s in 0..num_sn {
            let w = sn_ptr[s + 1] - sn_ptr[s];
            let m = row_ptr[s + 1] - row_ptr[s];
            let hi = upd_ptr[s + 1];
            let mut i = upd_ptr[s];
            let total: u64 = upd_work[i..hi].iter().sum();
            let mut streamed = 0u64;
            if total < budget {
                streamed = total;
                i = hi;
            }
            stream_hi[s] = i;
            while i < hi {
                let lo = i;
                let mut work = 0u64;
                while i < hi && work < budget {
                    work += upd_work[i];
                    i += 1;
                }
                chunk_lo.push(lo);
                chunk_hi.push(i);
                chunk_panel.push(s);
                acc_ptr.push(acc_len);
                acc_len += w * m;
                chunk_weight.push(work.max(1));
            }
            chk_ptr[s + 1] = chunk_lo.len();
            // Fixed stride-doubling pairwise reduction tree over this
            // panel's chunks, rooted at the first chunk: the panel task
            // then subtracts the root accumulator only.
            let lo_t = chk_ptr[s];
            let q = chk_ptr[s + 1] - lo_t;
            let mut stride = 1usize;
            while stride < q {
                let mut i = 0;
                while i + stride < q {
                    cmb_dst.push(lo_t + i);
                    cmb_src.push(lo_t + i + stride);
                    i += 2 * stride;
                }
                stride *= 2;
            }
            cmb_ptr[s + 1] = cmb_dst.len();
            let nchunks = (chk_ptr[s + 1] - chk_ptr[s]) as u64;
            // Assembly + streamed updates + one element-wise root-chunk
            // subtraction + dense in-panel Cholesky (the per-chunk folds
            // are combine tasks with their own weights).
            let root_apply = if nchunks > 0 { (w * m) as u64 } else { 0 };
            panel_weight[s] = ((w * m) as u64 + streamed + root_apply + (w * w * m) as u64).max(1);
        }

        // --- Schedule span: longest weighted path through the task DAG ----
        // Panels are visited in serial (topological) order, so a single
        // pass suffices: a chunk's predecessors are the panels it reads, a
        // combine's the chunk/combine that last wrote each side, and a
        // panel's its streamed descendants plus the root of its combine
        // tree.
        let mut critical_path = 0u64;
        let mut total_work = 0u64;
        {
            let mut lp = vec![0u64; num_sn]; // longest path ending at panel s
            let mut clp: Vec<u64> = Vec::new(); // per-chunk, reused per panel
            for s in 0..num_sn {
                let w = sn_ptr[s + 1] - sn_ptr[s];
                let m = row_ptr[s + 1] - row_ptr[s];
                let mut best = 0u64;
                for i in upd_ptr[s]..stream_hi[s] {
                    best = best.max(lp[upd[i].0]);
                }
                let lo_t = chk_ptr[s];
                clp.clear();
                for t in lo_t..chk_ptr[s + 1] {
                    let mut chunk_best = 0u64;
                    for i in chunk_lo[t]..chunk_hi[t] {
                        chunk_best = chunk_best.max(lp[upd[i].0]);
                    }
                    clp.push(chunk_best + chunk_weight[t]);
                    total_work += chunk_weight[t];
                }
                // Fold the combine tree: each combine waits for both its
                // accumulators' last writers and costs one w·m pass.
                let cmb_weight = (w * m) as u64;
                for u in cmb_ptr[s]..cmb_ptr[s + 1] {
                    let (d, c) = (cmb_dst[u] - lo_t, cmb_src[u] - lo_t);
                    clp[d] = clp[d].max(clp[c]) + cmb_weight;
                    total_work += cmb_weight;
                }
                if !clp.is_empty() {
                    best = best.max(clp[0]);
                }
                lp[s] = best + panel_weight[s];
                total_work += panel_weight[s];
                critical_path = critical_path.max(lp[s]);
            }
        }

        // Whole-supernode work (panel + its chunks + its combine folds)
        // drives the tree-shape metrics and the claim priorities.
        let sn_weight: Vec<u64> = (0..num_sn)
            .map(|s| {
                let w = sn_ptr[s + 1] - sn_ptr[s];
                let m = row_ptr[s + 1] - row_ptr[s];
                let folds = (cmb_ptr[s + 1] - cmb_ptr[s]) as u64 * (w * m) as u64;
                panel_weight[s]
                    + folds
                    + chunk_weight[chk_ptr[s]..chk_ptr[s + 1]].iter().sum::<u64>()
            })
            .collect();
        let metrics = tree_metrics(&sn_parent, &sn_weight);

        Self {
            n,
            sn_ptr,
            row_ptr,
            rows,
            val_ptr,
            true_nnz,
            max_width,
            upd_ptr,
            upd,
            stream_hi,
            chk_ptr,
            chunk_lo,
            chunk_hi,
            chunk_panel,
            acc_ptr,
            acc_len,
            cmb_ptr,
            cmb_dst,
            cmb_src,
            critical_path,
            total_work,
            metrics,
        }
    }
}

/// Per-worker dense scratch of the numeric phase, reused across supernode
/// tasks.
struct PanelScratch {
    relmap: Vec<usize>,
    relrows: Vec<usize>,
    update: Vec<f64>,
}

impl PanelScratch {
    fn new(n: usize) -> Self {
        Self {
            relmap: vec![0usize; n],
            relrows: Vec::new(),
            update: Vec::new(),
        }
    }
}

/// Panel and accumulator storage shared across factorization tasks. Tasks
/// write disjoint ranges (a panel task its `val_ptr` slice, a chunk task
/// its `acc_ptr` slice) and read only ranges of completed predecessors, so
/// the aliasing is benign; see [`run_panel_task`] / [`run_chunk_task`].
struct SharedStorage {
    values: *mut f64,
    acc: *mut f64,
}

// SAFETY: the raw pointers are only dereferenced inside the task bodies
// under the scope_dag discipline documented there.
unsafe impl Send for SharedStorage {}
unsafe impl Sync for SharedStorage {}

/// Computes one descendant contribution `C = G·G₁ᵀ` and scatters it into
/// `dst` — the panel itself (subtracting, the streamed path) or a chunk
/// accumulator (adding; the panel task later subtracts the whole
/// accumulator). `scratch.relmap` must already map this panel's rows to
/// local indices.
///
/// # Safety
///
/// `values` must point at the full panel storage laid out by
/// `sym.val_ptr`, and descendant `d` must be fully factored with its
/// writes visible to this thread.
#[allow(clippy::too_many_arguments)] // internal kernel, call sites are two
unsafe fn apply_update(
    sym: &Symbolic,
    kern: &dyn DenseKernel,
    values: *const f64,
    d: usize,
    p: usize,
    c0: usize,
    c1: usize,
    m: usize,
    dst: &mut [f64],
    scratch: &mut PanelScratch,
    subtract: bool,
) {
    let PanelScratch {
        relmap,
        relrows,
        update,
    } = scratch;
    let rows_d = &sym.rows[sym.row_ptr[d]..sym.row_ptr[d + 1]];
    let wd = sym.sn_ptr[d + 1] - sym.sn_ptr[d];
    let md = rows_d.len();
    let p2 = p + rows_d[p..].partition_point(|&r| r < c1);
    let wj = p2 - p;
    let mu = md - p;
    debug_assert!(wj >= 1);
    // SAFETY: `d` is fully factored (function contract) and read-only here.
    let panel_d = unsafe { std::slice::from_raw_parts(values.add(sym.val_ptr[d]), wd * md) };

    // Accumulated as wd rank-1 updates over contiguous columns.
    update.clear();
    update.resize(mu * wj, 0.0);
    kern.rank_update(update, panel_d, md, p, wj, wd);

    // Scatter through relative indices (the rows of a descendant's tail
    // are a subset of this panel's rows).
    relrows.clear();
    relrows.extend(rows_d[p..].iter().map(|&r| relmap[r]));
    for jj in 0..wj {
        let lc = rows_d[p + jj] - c0;
        let dstcol = &mut dst[lc * m..(lc + 1) * m];
        let src = &update[jj * mu..(jj + 1) * mu];
        // Skip rows above the target column (upper triangle of the
        // symmetric update block).
        if subtract {
            for i in jj..mu {
                dstcol[relrows[i]] -= src[i];
            }
        } else {
            for i in jj..mu {
                dstcol[relrows[i]] += src[i];
            }
        }
    }
}

/// Accumulates update-chunk `t` into its private panel-shaped buffer — the
/// task body shared verbatim by the serial sweep and the DAG.
///
/// # Safety
///
/// `values`/`acc` must point at the full panel/accumulator storage; the
/// caller must guarantee exclusive access to accumulator slice `t` and
/// that every descendant read by the chunk is fully factored with its
/// writes visible (serial: ascending task order; parallel:
/// [`WorkPool::scope_dag`]'s dependency edges).
unsafe fn run_chunk_task(
    sym: &Symbolic,
    kern: &dyn DenseKernel,
    values: *const f64,
    acc: *mut f64,
    t: usize,
    scratch: &mut PanelScratch,
) {
    let s = sym.chunk_panel[t];
    let c0 = sym.sn_ptr[s];
    let c1 = sym.sn_ptr[s + 1];
    let w = c1 - c0;
    let rows_s = &sym.rows[sym.row_ptr[s]..sym.row_ptr[s + 1]];
    let m = rows_s.len();
    for (i, &r) in rows_s.iter().enumerate() {
        scratch.relmap[r] = i;
    }
    // SAFETY: exclusive access to accumulator `t` per the contract; it was
    // zero-initialized at allocation and is written by exactly this task.
    let accbuf = unsafe { std::slice::from_raw_parts_mut(acc.add(sym.acc_ptr[t]), w * m) };
    for &(d, p) in &sym.upd[sym.chunk_lo[t]..sym.chunk_hi[t]] {
        // SAFETY: propagated contract.
        unsafe { apply_update(sym, kern, values, d, p, c0, c1, m, accbuf, scratch, false) };
    }
}

/// Folds accumulator `cmb_src[u]` into `cmb_dst[u]` element-wise — one
/// edge of a panel's chunk-reduction tree, shared verbatim by the serial
/// sweep and the DAG. The fold is `dst += 1.0 · src`, which every kernel
/// computes exactly (a fused multiply-add by 1.0 rounds like a plain
/// add), so the factor bits do not depend on which kernel runs it.
///
/// # Safety
///
/// `acc` must point at the full accumulator storage; the caller must
/// guarantee exclusive access to both accumulators of combine `u` and
/// that their previous writers (the chunk tasks, and any earlier combines
/// of the same tree) have run with their writes visible to this thread.
unsafe fn run_combine_task(sym: &Symbolic, kern: &dyn DenseKernel, acc: *mut f64, u: usize) {
    let s = sym.chunk_panel[sym.cmb_dst[u]];
    let w = sym.sn_ptr[s + 1] - sym.sn_ptr[s];
    let m = sym.row_ptr[s + 1] - sym.row_ptr[s];
    // SAFETY: distinct chunks own disjoint `acc_ptr` slices, and the
    // contract grants exclusive access to both sides of this combine.
    let dst =
        unsafe { std::slice::from_raw_parts_mut(acc.add(sym.acc_ptr[sym.cmb_dst[u]]), w * m) };
    let src = unsafe { std::slice::from_raw_parts(acc.add(sym.acc_ptr[sym.cmb_src[u]]), w * m) };
    kern.axpy(1.0, src, dst);
}

/// Assembles, updates and factors panel `s` in place — the task body
/// shared verbatim by the serial sweep and the DAG, which is what makes
/// the two paths bitwise identical.
///
/// On a non-positive pivot, returns `Err((row, pivot))` in permuted
/// coordinates.
///
/// # Safety
///
/// `values`/`acc` must point at the full panel/accumulator storage laid
/// out by `sym`, and the caller must guarantee (a) exclusive access to
/// panel `s` for the duration of the call, (b) that every streamed
/// descendant in `sym.upd[upd_ptr[s]..stream_hi[s]]` is fully factored and
/// (c) that every chunk and combine of `s` has run, all with their writes
/// visible to this thread. The serial sweep satisfies this by running
/// tasks one at a time in schedule order; the parallel path by
/// [`WorkPool::scope_dag`]'s dependency edges and its mutex-backed
/// happens-before edge.
unsafe fn run_panel_task(
    sym: &Symbolic,
    kern: &dyn DenseKernel,
    ap: &CsrMatrix,
    values: *mut f64,
    acc: *const f64,
    s: usize,
    scratch: &mut PanelScratch,
) -> Result<(), (usize, f64)> {
    let c0 = sym.sn_ptr[s];
    let c1 = sym.sn_ptr[s + 1];
    let w = c1 - c0;
    let rows_s = &sym.rows[sym.row_ptr[s]..sym.row_ptr[s + 1]];
    let m = rows_s.len();
    // SAFETY: exclusive access to panel `s` per the function contract.
    let panel = unsafe { std::slice::from_raw_parts_mut(values.add(sym.val_ptr[s]), w * m) };

    for (i, &r) in rows_s.iter().enumerate() {
        scratch.relmap[r] = i;
    }

    // Scatter A's columns (read row c of the permuted matrix: by symmetry
    // its tail ≥ c is column c of the lower triangle).
    for (lc, c) in (c0..c1).enumerate() {
        let (cols, vals) = ap.row(c);
        let start = cols.partition_point(|&j| j < c);
        for (&j, &v) in cols[start..].iter().zip(&vals[start..]) {
            panel[lc * m + scratch.relmap[j]] = v;
        }
    }

    // Streamed descendant updates, in the precomputed serial-sweep order.
    for &(d, p) in &sym.upd[sym.upd_ptr[s]..sym.stream_hi[s]] {
        // SAFETY: propagated contract (streamed descendants are factored).
        unsafe { apply_update(sym, kern, values, d, p, c0, c1, m, panel, scratch, true) };
    }

    // The chunk accumulators were folded into the first chunk by the
    // panel's combine tree; subtract that root once. (`-1.0 · acc` is
    // exact under every kernel, like the combine folds.)
    if sym.chk_ptr[s + 1] > sym.chk_ptr[s] {
        let root = sym.chk_ptr[s];
        // SAFETY: every chunk and combine of `s` has run (function
        // contract), so the root accumulator is final and read-only here;
        // its slice is disjoint from every panel.
        let accbuf = unsafe { std::slice::from_raw_parts(acc.add(sym.acc_ptr[root]), w * m) };
        kern.axpy(-1.0, accbuf, panel);
    }

    // Dense in-panel column Cholesky (left-looking within the panel).
    kern.factor_panel(panel, m, w)
        .map_err(|(j, pivot)| (c0 + j, pivot))
}

/// A supernodal Cholesky factorization of a symmetric positive definite
/// matrix, stored as dense column panels.
///
/// # Example
///
/// ```
/// use morestress_linalg::{CooMatrix, SupernodalCholesky};
///
/// # fn main() -> Result<(), morestress_linalg::LinalgError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0); coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0); coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let chol = SupernodalCholesky::factor(&a)?;
/// let x = chol.solve(&[1.0, 2.0]);
/// assert!(a.residual(&x, &[1.0, 2.0]) < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SupernodalCholesky {
    n: usize,
    perm: Permutation,
    /// Supernode `s` covers permuted columns `sn_ptr[s]..sn_ptr[s+1]`.
    sn_ptr: Vec<usize>,
    /// Row lists: supernode `s` owns `rows[row_ptr[s]..row_ptr[s+1]]`,
    /// sorted ascending; the first `width(s)` entries are the diagonal
    /// block columns themselves.
    row_ptr: Vec<usize>,
    rows: Vec<usize>,
    /// Dense panels, column-major with leading dimension = panel rows;
    /// supernode `s` owns `values[val_ptr[s]..val_ptr[s+1]]`.
    val_ptr: Vec<usize>,
    values: Vec<f64>,
    true_nnz: usize,
    max_width: usize,
    /// Etree shape of the factorization (height, critical path, subtree
    /// balance), frozen into the stats.
    etree_height: usize,
    critical_path: u64,
    total_work: u64,
    max_subtree_weight: u64,
    mean_subtree_weight: f64,
    /// Worker slots the numeric phase actually used (1 for the serial
    /// sweep).
    factor_workers: usize,
    /// The microkernel the numeric phase ran on; the solve sweeps reuse
    /// it so factor and solve share one choice.
    kernel: KernelChoice,
}

impl SupernodalCholesky {
    /// Factors a symmetric positive definite matrix with RCM ordering and
    /// default supernode relaxation.
    ///
    /// Only the lower triangle of `a` is read (the upper triangle is
    /// assumed to mirror it), exactly like the scalar kernel.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive pivot
    /// appears; [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LinalgError> {
        Self::factor_with_permutation(
            a,
            FillOrdering::Rcm.permutation(a),
            &SupernodalOptions::default(),
        )
    }

    /// Factors with a caller-supplied fill-reducing permutation and
    /// supernode options.
    ///
    /// With [`SupernodalOptions::parallel`] set (the default) the numeric
    /// phase runs as an elimination-tree task DAG on the current
    /// [`WorkPool`]; the factor is bitwise identical to the serial sweep at
    /// every pool cap (see the module docs).
    ///
    /// # Errors
    ///
    /// Same as [`SupernodalCholesky::factor`].
    pub fn factor_with_permutation(
        a: &CsrMatrix,
        perm: Permutation,
        opts: &SupernodalOptions,
    ) -> Result<Self, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                context: "supernodal Cholesky (matrix must be square)",
                expected: a.nrows(),
                found: a.ncols(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Ok(Self {
                n,
                perm,
                sn_ptr: vec![0],
                row_ptr: vec![0],
                rows: Vec::new(),
                val_ptr: vec![0],
                values: Vec::new(),
                true_nnz: 0,
                max_width: 0,
                etree_height: 0,
                critical_path: 0,
                total_work: 0,
                max_subtree_weight: 0,
                mean_subtree_weight: 0.0,
                factor_workers: 1,
                kernel: opts.kernel,
            });
        }
        let ap = a.permuted_symmetric(&perm);
        let sym = Symbolic::analyze(&ap, opts);
        let mut values = vec![0.0f64; sym.val_ptr[sym.num_sn()]];
        let factor_workers =
            Self::factor_numeric(&sym, &ap, &mut values, opts.parallel, opts.kernel.kernel())?;

        Ok(Self {
            n,
            perm,
            sn_ptr: sym.sn_ptr,
            row_ptr: sym.row_ptr,
            rows: sym.rows,
            val_ptr: sym.val_ptr,
            values,
            true_nnz: sym.true_nnz,
            max_width: sym.max_width,
            etree_height: sym.metrics.height,
            critical_path: sym.critical_path,
            total_work: sym.total_work,
            max_subtree_weight: sym.metrics.max_parallel_subtree,
            mean_subtree_weight: sym.metrics.mean_parallel_subtree,
            factor_workers,
            kernel: opts.kernel,
        })
    }

    /// The numeric phase: runs every update-chunk and panel task exactly
    /// once, serially or as a dependency DAG on the current pool. Returns
    /// the worker slots used.
    fn factor_numeric(
        sym: &Symbolic,
        ap: &CsrMatrix,
        values: &mut [f64],
        parallel: bool,
        kern: &dyn DenseKernel,
    ) -> Result<usize, LinalgError> {
        let num_sn = sym.num_sn();
        let num_chunks = sym.chunk_panel.len();
        let num_combines = sym.cmb_dst.len();
        // Chunk accumulators: zero-initialized, one panel-shaped slice per
        // update-chunk task.
        let mut acc = vec![0.0f64; sym.acc_len];
        let pool = WorkPool::current();
        // A schedule with (almost) no work off the critical path cannot
        // win — RCM/banded orderings produce pure-chain etrees
        // (`total_work == critical_path`) where the DAG would pay per-task
        // queue traffic for zero overlap. Fall back to the serial sweep;
        // results are bitwise identical either way, and the condition is
        // structural, so it is still pool-cap-invariant.
        let parallel = parallel && sym.total_work >= sym.critical_path + sym.critical_path / 4;
        if !parallel || pool.cap() == 1 || num_sn <= 1 {
            let mut scratch = PanelScratch::new(sym.n);
            for s in 0..num_sn {
                // SAFETY: one task at a time in schedule order — every
                // predecessor of each task already ran and nothing aliases
                // its output slice.
                unsafe {
                    for t in sym.chk_ptr[s]..sym.chk_ptr[s + 1] {
                        run_chunk_task(
                            sym,
                            kern,
                            values.as_ptr(),
                            acc.as_mut_ptr(),
                            t,
                            &mut scratch,
                        );
                    }
                    for u in sym.cmb_ptr[s]..sym.cmb_ptr[s + 1] {
                        run_combine_task(sym, kern, acc.as_mut_ptr(), u);
                    }
                    run_panel_task(
                        sym,
                        kern,
                        ap,
                        values.as_mut_ptr(),
                        acc.as_ptr(),
                        s,
                        &mut scratch,
                    )
                    .map_err(|(row, pivot)| LinalgError::NotPositiveDefinite { row, pivot })?;
                }
            }
            return Ok(1);
        }

        // Task DAG: nodes 0..num_sn are panel tasks, then update chunks,
        // then combine folds. A chunk waits for the descendants it reads;
        // a combine for the last writer of each of its two accumulators;
        // a panel for its streamed descendants and the last writer of its
        // root accumulator (which transitively orders every chunk and
        // combine of its tree before it).
        let mut dag = TaskDag::new(num_sn + num_chunks + num_combines);
        // Last DAG node to have written each chunk accumulator so far —
        // initially the chunk task itself, then the combines that fold
        // into (or read) it, in tree order.
        let mut last_writer: Vec<usize> = (0..num_chunks).map(|t| num_sn + t).collect();
        for t in 0..num_chunks {
            let s = sym.chunk_panel[t];
            for i in sym.chunk_lo[t]..sym.chunk_hi[t] {
                dag.add_dependency(sym.upd[i].0, num_sn + t);
            }
            dag.set_priority(num_sn + t, sym.metrics.subtree_weight[s]);
        }
        for u in 0..num_combines {
            let node = num_sn + num_chunks + u;
            let (d, c) = (sym.cmb_dst[u], sym.cmb_src[u]);
            dag.add_dependency(last_writer[d], node);
            dag.add_dependency(last_writer[c], node);
            last_writer[d] = node;
            dag.set_priority(node, sym.metrics.subtree_weight[sym.chunk_panel[d]]);
        }
        for s in 0..num_sn {
            for i in sym.upd_ptr[s]..sym.stream_hi[s] {
                dag.add_dependency(sym.upd[i].0, s);
            }
            if sym.chk_ptr[s + 1] > sym.chk_ptr[s] {
                dag.add_dependency(last_writer[sym.chk_ptr[s]], s);
            }
            // Heaviest independent subtrees first keeps the tail short.
            dag.set_priority(s, sym.metrics.subtree_weight[s]);
        }
        dag.seal();

        let shared = SharedStorage {
            values: values.as_mut_ptr(),
            acc: acc.as_mut_ptr(),
        };
        // Capture the `Sync` wrapper, not its raw-pointer fields (edition
        // 2021 closures capture disjoint fields).
        let shared = &shared;
        let failed = AtomicBool::new(false);
        let first_error: Mutex<Option<(usize, f64)>> = Mutex::new(None);
        let workers = pool.scope_dag_with(
            pool.cap(),
            &dag,
            || PanelScratch::new(sym.n),
            |scratch, node| {
                if failed.load(Ordering::Acquire) {
                    // A pivot already failed: let the DAG drain without
                    // doing (now meaningless) numeric work.
                    return;
                }
                if node >= num_sn + num_chunks {
                    // SAFETY: scope_dag ordered the last writers of both
                    // accumulators before this combine, with a
                    // happens-before edge; no other live task touches
                    // either slice.
                    unsafe {
                        run_combine_task(sym, kern, shared.acc, node - num_sn - num_chunks);
                    }
                    return;
                }
                if node >= num_sn {
                    // SAFETY: scope_dag ordered every descendant this chunk
                    // reads before it, with a happens-before edge; the
                    // accumulator slice is written by exactly this task.
                    unsafe {
                        run_chunk_task(
                            sym,
                            kern,
                            shared.values,
                            shared.acc,
                            node - num_sn,
                            scratch,
                        );
                    }
                    return;
                }
                // SAFETY: scope_dag ordered the streamed descendants and
                // the combine-tree root of `node` before it, with a
                // happens-before edge; tasks write disjoint panel ranges.
                if let Err((row, pivot)) = unsafe {
                    run_panel_task(sym, kern, ap, shared.values, shared.acc, node, scratch)
                } {
                    failed.store(true, Ordering::Release);
                    let mut slot = first_error.lock().expect("factor error slot poisoned");
                    // Deterministic report: keep the smallest failing row.
                    if slot.is_none_or(|(r, _)| row < r) {
                        *slot = Some((row, pivot));
                    }
                }
            },
        );
        if let Some((row, pivot)) = first_error
            .into_inner()
            .expect("factor error slot poisoned")
        {
            return Err(LinalgError::NotPositiveDefinite { row, pivot });
        }
        Ok(workers)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored factor entries including relaxation padding (the panel
    /// memory actually allocated).
    pub fn factor_nnz(&self) -> usize {
        self.values.len()
    }

    /// The raw panel storage, exposed for differential tests (the
    /// parallel-vs-serial bitwise proptests compare it directly).
    pub fn factor_values(&self) -> &[f64] {
        &self.values
    }

    /// Worker slots the numeric factorization actually used (1 for the
    /// serial sweep or a cap-1 pool). Scheduling-dependent telemetry, like
    /// [`SolveReport::workers`](crate::SolveReport::workers).
    pub fn factor_workers(&self) -> usize {
        self.factor_workers
    }

    /// Resolved name of the microkernel the factorization and solve
    /// sweeps run on (`"scalar"`, `"blocked"`, or `"avx2"`).
    pub fn kernel_name(&self) -> &'static str {
        self.kernel.resolved_name()
    }

    /// Shape statistics of the factor.
    pub fn stats(&self) -> SupernodeStats {
        SupernodeStats {
            supernodes: self.sn_ptr.len() - 1,
            max_width: self.max_width,
            stored_nnz: self.values.len(),
            true_nnz: self.true_nnz,
            etree_height: self.etree_height,
            critical_path: self.critical_path as usize,
            total_work: self.total_work as usize,
            max_subtree_weight: self.max_subtree_weight as usize,
            mean_subtree_weight: self.mean_subtree_weight,
            kernel: self.kernel_name(),
        }
    }

    /// Length of the scratch slice [`solve_panel_with`] needs: one
    /// permutation buffer plus one gather buffer for the tallest panel.
    ///
    /// [`solve_panel_with`]: SupernodalCholesky::solve_panel_with
    pub fn scratch_len(&self) -> usize {
        let tallest = (0..self.sn_ptr.len() - 1)
            .map(|s| self.row_ptr[s + 1] - self.row_ptr[s])
            .max()
            .unwrap_or(0);
        self.n + tallest
    }

    /// Solves `A x = b` by two blocked triangular sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_panel(&mut x, 1);
        x
    }

    /// Solves `A X = B` for a whole panel of right-hand sides in place.
    ///
    /// `rhs` is an `n × nrhs` column-major matrix. One pass over the
    /// supernode panels serves every column; per column the operation
    /// order is identical to [`SupernodalCholesky::solve`], so panel
    /// solutions are bitwise equal to looped single solves.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.dim() * nrhs`.
    pub fn solve_panel(&self, rhs: &mut [f64], nrhs: usize) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.solve_panel_with(rhs, nrhs, &mut scratch);
    }

    /// Allocation-free variant of [`SupernodalCholesky::solve_panel`] with
    /// a caller-provided scratch of at least
    /// [`scratch_len`](SupernodalCholesky::scratch_len) entries.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.dim() * nrhs` or the scratch is too
    /// short.
    pub fn solve_panel_with(&self, rhs: &mut [f64], nrhs: usize, scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n * nrhs, "supernodal panel solve: rhs size");
        assert!(
            scratch.len() >= self.scratch_len(),
            "supernodal panel solve: scratch too short"
        );
        if n == 0 {
            return;
        }
        let (permbuf, gather) = scratch.split_at_mut(n);
        let num_sn = self.sn_ptr.len() - 1;
        let kern = self.kernel.kernel();

        // Into the factor basis.
        for r in 0..nrhs {
            let col = &mut rhs[r * n..(r + 1) * n];
            self.perm.apply_into(col, permbuf);
            col.copy_from_slice(permbuf);
        }

        // Forward: L Y = B.
        for s in 0..num_sn {
            let c0 = self.sn_ptr[s];
            let w = self.sn_ptr[s + 1] - c0;
            let rows_s = &self.rows[self.row_ptr[s]..self.row_ptr[s + 1]];
            let m = rows_s.len();
            let panel = &self.values[self.val_ptr[s]..self.val_ptr[s + 1]];
            let below = &rows_s[w..];
            for r in 0..nrhs {
                let x = &mut rhs[r * n..(r + 1) * n];
                // Dense lower-triangular solve on the diagonal block.
                kern.solve_lower(panel, m, w, &mut x[c0..c0 + w]);
                if below.is_empty() {
                    continue;
                }
                // Below block: accumulate L₂₁ y into a contiguous buffer,
                // then scatter.
                let acc = &mut gather[..m - w];
                kern.below_accumulate(panel, m, w, &x[c0..c0 + w], acc);
                for (i, &row) in below.iter().enumerate() {
                    x[row] -= acc[i];
                }
            }
        }

        // Backward: Lᵀ X = Y.
        for s in (0..num_sn).rev() {
            let c0 = self.sn_ptr[s];
            let w = self.sn_ptr[s + 1] - c0;
            let rows_s = &self.rows[self.row_ptr[s]..self.row_ptr[s + 1]];
            let m = rows_s.len();
            let panel = &self.values[self.val_ptr[s]..self.val_ptr[s + 1]];
            let below = &rows_s[w..];
            for r in 0..nrhs {
                let x = &mut rhs[r * n..(r + 1) * n];
                // Gather the below entries once, contract them against
                // L₂₁ᵀ and finish with the dense transposed diag solve.
                let xb = &mut gather[..m - w];
                for (i, &row) in below.iter().enumerate() {
                    xb[i] = x[row];
                }
                kern.solve_lower_transpose(panel, m, w, &mut x[c0..c0 + w], xb);
            }
        }

        // Back to the natural basis.
        for r in 0..nrhs {
            let col = &mut rhs[r * n..(r + 1) * n];
            self.perm.apply_inverse_into(col, permbuf);
            col.copy_from_slice(permbuf);
        }
    }
}

impl MemoryFootprint for SupernodalCholesky {
    fn heap_bytes(&self) -> usize {
        self.sn_ptr.heap_bytes()
            + self.row_ptr.heap_bytes()
            + self.rows.heap_bytes()
            + self.val_ptr.heap_bytes()
            + self.values.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_operators::laplacian_2d;
    use crate::{CooMatrix, SparseCholesky};

    #[test]
    fn agrees_with_scalar_kernel_on_laplacian() {
        let a = laplacian_2d(9, 7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
        let x_scalar = SparseCholesky::factor(&a).unwrap().solve(&b);
        let x_super = SupernodalCholesky::factor(&a).unwrap().solve(&b);
        let scale = x_scalar.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (p, q) in x_scalar.iter().zip(&x_super) {
            assert!((p - q).abs() <= 1e-12 * scale.max(1.0), "{p} vs {q}");
        }
        assert!(a.residual(&x_super, &b) < 1e-12);
    }

    #[test]
    fn parallel_factor_is_bitwise_equal_to_serial() {
        let a = laplacian_2d(17, 11);
        let perm = FillOrdering::Rcm.permutation(&a);
        // A tiny chunk budget forces real update-chunk tasks (and their
        // combine trees) even at this size, so all three task kinds of
        // the DAG are exercised — for every kernel this host resolves.
        for &kernel in KernelChoice::available() {
            for chunk_work in [SupernodalOptions::default().chunk_work, 64] {
                let opts = SupernodalOptions {
                    chunk_work,
                    kernel,
                    ..SupernodalOptions::default()
                };
                let serial = SupernodalCholesky::factor_with_permutation(
                    &a,
                    perm.clone(),
                    &SupernodalOptions {
                        parallel: false,
                        ..opts
                    },
                )
                .unwrap();
                assert_eq!(serial.factor_workers(), 1);
                for cap in [1usize, 2, 8] {
                    let parallel = WorkPool::new(cap).install(|| {
                        SupernodalCholesky::factor_with_permutation(&a, perm.clone(), &opts)
                            .unwrap()
                    });
                    assert!(parallel.factor_workers() <= cap.max(1));
                    assert_eq!(serial.factor_values().len(), parallel.factor_values().len());
                    for (i, (p, q)) in serial
                        .factor_values()
                        .iter()
                        .zip(parallel.factor_values())
                        .enumerate()
                    {
                        assert_eq!(
                            p.to_bits(),
                            q.to_bits(),
                            "panel entry {i} at cap {cap} (chunk_work {chunk_work}, kernel {})",
                            kernel.resolved_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kernels_agree_within_tolerance() {
        // Every kernel must reproduce the scalar oracle's solution to
        // ≤1e-12 (they associate sums differently, so bitwise equality is
        // *not* expected — that's why the kernel is in the cache
        // fingerprint).
        let a = laplacian_2d(13, 9);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 17) % 23) as f64 - 11.0).collect();
        let perm = FillOrdering::NestedDissection.permutation(&a);
        let reference = SupernodalCholesky::factor_with_permutation(
            &a,
            perm.clone(),
            &SupernodalOptions {
                kernel: KernelChoice::Scalar,
                ..SupernodalOptions::default()
            },
        )
        .unwrap()
        .solve(&b);
        let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for &kernel in KernelChoice::available() {
            let chol = SupernodalCholesky::factor_with_permutation(
                &a,
                perm.clone(),
                &SupernodalOptions {
                    kernel,
                    ..SupernodalOptions::default()
                },
            )
            .unwrap();
            assert_eq!(chol.kernel_name(), kernel.resolved_name());
            assert_eq!(chol.stats().kernel, kernel.resolved_name());
            let x = chol.solve(&b);
            for (p, q) in reference.iter().zip(&x) {
                assert!(
                    (p - q).abs() <= 1e-12 * scale,
                    "{}: {p} vs {q}",
                    kernel.resolved_name()
                );
            }
        }
    }

    #[test]
    fn chain_schedules_fall_back_to_serial() {
        // A tridiagonal operator in natural order has a pure-chain etree:
        // the whole schedule is one critical path, so the DAG would add
        // overhead for zero overlap and the numeric phase must pick the
        // (bitwise-identical) serial sweep even on a big pool.
        let n = 200;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i + 1, i, -1.0);
            }
        }
        let a = coo.to_csr();
        let chol = WorkPool::new(8).install(|| {
            SupernodalCholesky::factor_with_permutation(
                &a,
                FillOrdering::Natural.permutation(&a),
                &SupernodalOptions::default(),
            )
            .unwrap()
        });
        let stats = chol.stats();
        assert_eq!(stats.critical_path, stats.total_work, "chain schedule");
        assert_eq!(chol.factor_workers(), 1, "chain must run serially");
    }

    #[test]
    fn etree_stats_are_consistent() {
        let a = laplacian_2d(20, 20);
        let chol = SupernodalCholesky::factor(&a).unwrap();
        let stats = chol.stats();
        assert!(stats.etree_height >= 1);
        assert!(stats.etree_height <= stats.supernodes);
        assert!(stats.critical_path >= 1);
        assert!(
            stats.critical_path <= stats.total_work,
            "span {} cannot exceed total work {}",
            stats.critical_path,
            stats.total_work
        );
        assert!(stats.max_subtree_weight <= stats.total_work);
        assert!(stats.mean_subtree_weight <= stats.max_subtree_weight as f64);
    }

    #[test]
    fn panel_solve_is_bitwise_equal_to_looped_solves() {
        let a = laplacian_2d(8, 8);
        let n = a.nrows();
        let chol = SupernodalCholesky::factor(&a).unwrap();
        let nrhs = 5;
        let mut panel = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                panel[r * n + i] = ((i * 7 + r * 3) % 13) as f64 - 6.0;
            }
        }
        let singles: Vec<Vec<f64>> = (0..nrhs)
            .map(|r| chol.solve(&panel[r * n..(r + 1) * n]))
            .collect();
        chol.solve_panel(&mut panel, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                assert_eq!(
                    panel[r * n + i].to_bits(),
                    singles[r][i].to_bits(),
                    "rhs {r} entry {i}"
                );
            }
        }
    }

    #[test]
    fn nested_dissection_and_all_orderings_agree() {
        let a = laplacian_2d(12, 12);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos()).collect();
        let reference = SparseCholesky::factor(&a).unwrap().solve(&b);
        for ordering in [
            FillOrdering::Rcm,
            FillOrdering::NestedDissection,
            FillOrdering::Natural,
            FillOrdering::Auto,
        ] {
            let chol = SupernodalCholesky::factor_with_permutation(
                &a,
                ordering.permutation(&a),
                &SupernodalOptions::default(),
            )
            .unwrap();
            let x = chol.solve(&b);
            let scale = reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (p, q) in reference.iter().zip(&x) {
                assert!(
                    (p - q).abs() <= 1e-11 * scale.max(1.0),
                    "{ordering:?}: {p} vs {q}"
                );
            }
        }
    }

    #[test]
    fn supernodes_amalgamate_on_banded_operators() {
        let a = laplacian_2d(20, 20);
        let chol = SupernodalCholesky::factor(&a).unwrap();
        let stats = chol.stats();
        assert!(
            stats.supernodes < a.nrows() / 2,
            "expected real amalgamation, got {} supernodes for {} columns",
            stats.supernodes,
            a.nrows()
        );
        assert!(stats.max_width > 1);
        assert!(stats.stored_nnz >= stats.true_nnz);
        // The padding budget must actually bound the padding.
        assert!(
            (stats.stored_nnz - stats.true_nnz) as f64 <= 0.5 * stats.true_nnz as f64,
            "padding {} vs true {}",
            stats.stored_nnz - stats.true_nnz,
            stats.true_nnz
        );
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        for parallel in [false, true] {
            let result = SupernodalCholesky::factor_with_permutation(
                &a,
                FillOrdering::Natural.permutation(&a),
                &SupernodalOptions {
                    parallel,
                    ..SupernodalOptions::default()
                },
            );
            assert!(matches!(
                result,
                Err(LinalgError::NotPositiveDefinite { .. })
            ));
        }
    }

    #[test]
    fn dense_spd_is_one_supernode() {
        // A fully dense SPD matrix collapses to a single panel (up to the
        // width cap).
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    let mik = ((i * 7 + k * 3) % 5) as f64 - 2.0;
                    let mjk = ((j * 7 + k * 3) % 5) as f64 - 2.0;
                    v += mik * mjk;
                }
                if i == j {
                    v += n as f64;
                }
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let chol = SupernodalCholesky::factor(&a).unwrap();
        assert_eq!(chol.stats().supernodes, 1);
        assert_eq!(chol.stats().etree_height, 1);
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = chol.solve(&b);
        assert!(a.residual(&x, &b) < 1e-12);
    }

    #[test]
    fn empty_and_single_entry_matrices() {
        let empty = CooMatrix::new(0, 0).to_csr();
        let chol = SupernodalCholesky::factor(&empty).unwrap();
        assert_eq!(chol.solve(&[]), Vec::<f64>::new());

        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 4.0);
        let one = coo.to_csr();
        let chol = SupernodalCholesky::factor(&one).unwrap();
        assert_eq!(chol.solve(&[8.0]), vec![2.0]);
    }
}
