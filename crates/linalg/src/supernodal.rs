//! Supernodal blocked sparse Cholesky factorization `A = L Lᵀ`.
//!
//! The scalar kernel in [`crate::cholesky`] touches one nonzero at a time:
//! every floating-point operation pays an index load, and every right-hand
//! side re-streams the whole factor. This module rebuilds the factorization
//! around **supernodes** — runs of adjacent columns whose below-diagonal
//! sparsity patterns coincide (exactly, or nearly, under *relaxed
//! amalgamation*). Each supernode is stored as one dense column panel, so
//! both the factorization and the triangular solves run as dense rank-k
//! updates over contiguous `f64` slices (`dsyrk`/`dgemm`-shaped loops the
//! compiler autovectorizes), with the sparse indices consulted once per
//! panel instead of once per entry.
//!
//! # Why this matters for MORE-Stress
//!
//! The paper's whole cost model (§4.2) is *factor once, solve many*: the
//! local stage reuses one decomposition for all n+1 local problems, and the
//! batched global stage re-solves one cached factor for every thermal load.
//! Both stages are therefore bounded by exactly the two things supernodes
//! accelerate: the one-time factorization (dense rank-k updates instead of
//! scalar scatter) and the per-right-hand-side triangular sweeps
//! ([`SupernodalCholesky::solve_panel`] streams each panel once for a whole
//! block of right-hand sides). The scalar kernel stays available as the
//! reference oracle — `CholeskyKernel::Scalar` in the backend layer — and
//! differential tests pin agreement between the two to ≤1e-12.
//!
//! # Algorithm
//!
//! 1. **Symbolic**: elimination tree + row-pattern sweep (`ereach`, shared
//!    with the scalar kernel) give per-column factor counts. Columns are
//!    grouped greedily left-to-right: column `j` joins the supernode ending
//!    at `j-1` when `parent[j-1] == j` and either the patterns match
//!    exactly (a *fundamental* supernode) or the padding introduced by
//!    storing the union pattern stays under the relaxation budget.
//! 2. **Numeric**: left-looking over supernodes. Each panel is assembled
//!    from `A`, then every descendant supernode that intersects it
//!    contributes one dense update `C = G·G₁ᵀ` (contiguous axpy loops)
//!    scattered through precomputed relative indices, and finally the
//!    panel is factored in place by a dense blocked column Cholesky.
//! 3. **Solve**: forward/backward substitution walks supernodes; per
//!    supernode the diagonal block is a dense triangular solve and the
//!    below-diagonal block a dense mat-vec into a contiguous gather/scatter
//!    buffer. [`SupernodalCholesky::solve_panel`] keeps the per-column
//!    operation order identical to the single-RHS path, so panel solves are
//!    bitwise equal to looped solves.

use crate::cholesky::{ereach, etree};
use crate::ordering::{FillOrdering, Permutation};
use crate::{CsrMatrix, LinalgError, MemoryFootprint};

const NONE: usize = usize::MAX;

/// Tuning knobs of the supernode detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupernodalOptions {
    /// Hard cap on supernode width (columns per panel). Wider panels give
    /// longer dense inner loops but cubically growing dense work on the
    /// trailing (dense-ish) supernodes; 32 is a good CPU default.
    pub max_width: usize,
    /// Relaxed-amalgamation budget: a merge is accepted while the padding
    /// (stored zeros) of the merged panel stays below this fraction of its
    /// true nonzeros. `0.0` yields exactly the fundamental supernodes.
    pub relax: f64,
    /// Small supernodes are merged more aggressively: below this width the
    /// padding budget is doubled (panel overhead dominates true flops
    /// there).
    pub small_width: usize,
}

impl Default for SupernodalOptions {
    fn default() -> Self {
        Self {
            max_width: 32,
            relax: 0.2,
            small_width: 8,
        }
    }
}

/// Shape statistics of a supernodal factor (reported through
/// [`SolveReport`](crate::SolveReport) and the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupernodeStats {
    /// Number of supernodes (column panels).
    pub supernodes: usize,
    /// Widest panel (columns).
    pub max_width: usize,
    /// Stored factor entries including relaxation padding.
    pub stored_nnz: usize,
    /// True factor nonzeros (what the scalar kernel would store).
    pub true_nnz: usize,
}

/// A supernodal Cholesky factorization of a symmetric positive definite
/// matrix, stored as dense column panels.
///
/// # Example
///
/// ```
/// use morestress_linalg::{CooMatrix, SupernodalCholesky};
///
/// # fn main() -> Result<(), morestress_linalg::LinalgError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0); coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0); coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let chol = SupernodalCholesky::factor(&a)?;
/// let x = chol.solve(&[1.0, 2.0]);
/// assert!(a.residual(&x, &[1.0, 2.0]) < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SupernodalCholesky {
    n: usize,
    perm: Permutation,
    /// Supernode `s` covers permuted columns `sn_ptr[s]..sn_ptr[s+1]`.
    sn_ptr: Vec<usize>,
    /// Permuted column → owning supernode.
    col_to_sn: Vec<usize>,
    /// Row lists: supernode `s` owns `rows[row_ptr[s]..row_ptr[s+1]]`,
    /// sorted ascending; the first `width(s)` entries are the diagonal
    /// block columns themselves.
    row_ptr: Vec<usize>,
    rows: Vec<usize>,
    /// Dense panels, column-major with leading dimension = panel rows;
    /// supernode `s` owns `values[val_ptr[s]..val_ptr[s+1]]`.
    val_ptr: Vec<usize>,
    values: Vec<f64>,
    true_nnz: usize,
    max_width: usize,
}

impl SupernodalCholesky {
    /// Factors a symmetric positive definite matrix with RCM ordering and
    /// default supernode relaxation.
    ///
    /// Only the lower triangle of `a` is read (the upper triangle is
    /// assumed to mirror it), exactly like the scalar kernel.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive pivot
    /// appears; [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LinalgError> {
        Self::factor_with_permutation(
            a,
            FillOrdering::Rcm.permutation(a),
            &SupernodalOptions::default(),
        )
    }

    /// Factors with a caller-supplied fill-reducing permutation and
    /// supernode options.
    ///
    /// # Errors
    ///
    /// Same as [`SupernodalCholesky::factor`].
    pub fn factor_with_permutation(
        a: &CsrMatrix,
        perm: Permutation,
        opts: &SupernodalOptions,
    ) -> Result<Self, LinalgError> {
        if a.nrows() != a.ncols() {
            return Err(LinalgError::DimensionMismatch {
                context: "supernodal Cholesky (matrix must be square)",
                expected: a.nrows(),
                found: a.ncols(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Ok(Self {
                n,
                perm,
                sn_ptr: vec![0],
                col_to_sn: Vec::new(),
                row_ptr: vec![0],
                rows: Vec::new(),
                val_ptr: vec![0],
                values: Vec::new(),
                true_nnz: 0,
                max_width: 0,
            });
        }
        let ap = a.permuted_symmetric(&perm);

        // --- Symbolic: column counts of L via the etree row sweep ---------
        let parent = etree(&ap);
        let mut counts = vec![1usize; n]; // diagonal entries
        {
            let mut w = vec![NONE; n];
            let mut stack = vec![0usize; n];
            for k in 0..n {
                let top = ereach(&ap, k, &parent, &mut w, &mut stack);
                for &i in &stack[top..n] {
                    counts[i] += 1;
                }
            }
        }
        let true_nnz: usize = counts.iter().sum();

        // --- Supernode detection with relaxed amalgamation ----------------
        // Greedy left-to-right: extend the current supernode [c0..j) with
        // column j iff the etree links j-1 → j (which guarantees the merged
        // row structure is {c0..j} ∪ pattern(j) \ {j}) and the padding
        // stays within budget. For a supernode [c0..c) the row structure
        // is {c0..c-1} ∪ (pattern(c-1) \ {c-1}), so the panel height is
        // (c - c0) + counts[c-1] - 1 in closed form.
        let max_width = opts.max_width.max(1);
        let mut sn_ptr: Vec<usize> = vec![0];
        {
            let mut c0 = 0usize;
            let mut true_in_sn = counts[0];
            for j in 1..n {
                let w = j - c0;
                let mut accept = false;
                if parent[j - 1] == j && w < max_width {
                    if counts[j - 1] == counts[j] + 1 {
                        // Fundamental: identical below-diagonal patterns,
                        // zero padding added.
                        accept = true;
                    } else {
                        // Relaxed: accept while padding stays in budget.
                        let m = (w + 1) + counts[j] - 1;
                        let stored = (w + 1) * m - w * (w + 1) / 2;
                        let true_new = true_in_sn + counts[j];
                        let budget = if w < opts.small_width {
                            2.0 * opts.relax
                        } else {
                            opts.relax
                        };
                        accept = (stored - true_new) as f64 <= budget * true_new as f64;
                    }
                }
                if accept {
                    true_in_sn += counts[j];
                } else {
                    sn_ptr.push(j);
                    c0 = j;
                    true_in_sn = counts[j];
                }
            }
            sn_ptr.push(n);
        }
        let num_sn = sn_ptr.len() - 1;
        let mut col_to_sn = vec![0usize; n];
        for s in 0..num_sn {
            for c in sn_ptr[s]..sn_ptr[s + 1] {
                col_to_sn[c] = s;
            }
        }

        // --- Row lists: diagonal block plus pattern of the last column ----
        // pattern(last col) \ {last col} is collected with a second ereach
        // sweep: row k of L has an entry in column i iff i ∈ ereach(k).
        let mut row_ptr = vec![0usize; num_sn + 1];
        let mut below_counts = vec![0usize; num_sn];
        for s in 0..num_sn {
            let last = sn_ptr[s + 1] - 1;
            below_counts[s] = counts[last] - 1;
            let w = sn_ptr[s + 1] - sn_ptr[s];
            row_ptr[s + 1] = row_ptr[s] + w + below_counts[s];
        }
        let mut rows = vec![0usize; row_ptr[num_sn]];
        {
            // Diagonal block rows first.
            for s in 0..num_sn {
                for (i, c) in (sn_ptr[s]..sn_ptr[s + 1]).enumerate() {
                    rows[row_ptr[s] + i] = c;
                }
            }
            // Below rows in ascending order (k increases monotonically).
            let mut next: Vec<usize> = (0..num_sn)
                .map(|s| row_ptr[s] + (sn_ptr[s + 1] - sn_ptr[s]))
                .collect();
            let mut w = vec![NONE; n];
            let mut stack = vec![0usize; n];
            for k in 0..n {
                let top = ereach(&ap, k, &parent, &mut w, &mut stack);
                for &i in &stack[top..n] {
                    let s = col_to_sn[i];
                    if i == sn_ptr[s + 1] - 1 {
                        rows[next[s]] = k;
                        next[s] += 1;
                    }
                }
            }
            debug_assert!((0..num_sn).all(|s| next[s] == row_ptr[s + 1]));
        }

        // --- Panel storage layout -----------------------------------------
        let mut val_ptr = vec![0usize; num_sn + 1];
        for s in 0..num_sn {
            let w = sn_ptr[s + 1] - sn_ptr[s];
            let m = row_ptr[s + 1] - row_ptr[s];
            val_ptr[s + 1] = val_ptr[s] + w * m;
        }
        let mut values = vec![0.0f64; val_ptr[num_sn]];

        // --- Numeric: left-looking over supernodes ------------------------
        // `pending[s]` holds descendants whose next unconsumed below-row
        // lands in supernode s; `cursor[d]` is the index of that row in
        // d's row list.
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); num_sn];
        let mut cursor = vec![0usize; num_sn];
        let mut relmap = vec![0usize; n];
        let mut relrows: Vec<usize> = Vec::new();
        let mut update: Vec<f64> = Vec::new();
        let mut widest = 0usize;

        for s in 0..num_sn {
            let c0 = sn_ptr[s];
            let c1 = sn_ptr[s + 1];
            let w = c1 - c0;
            widest = widest.max(w);
            let rows_s = &rows[row_ptr[s]..row_ptr[s + 1]];
            let m = rows_s.len();
            let (done, active) = values.split_at_mut(val_ptr[s]);
            let panel = &mut active[..w * m];

            for (i, &r) in rows_s.iter().enumerate() {
                relmap[r] = i;
            }

            // Scatter A's columns (read row c of the permuted matrix: by
            // symmetry its tail ≥ c is column c of the lower triangle).
            for (lc, c) in (c0..c1).enumerate() {
                let (cols, vals) = ap.row(c);
                let start = cols.partition_point(|&j| j < c);
                for (&j, &v) in cols[start..].iter().zip(&vals[start..]) {
                    panel[lc * m + relmap[j]] = v;
                }
            }

            // Descendant updates.
            for d in std::mem::take(&mut pending[s]) {
                let rows_d = &rows[row_ptr[d]..row_ptr[d + 1]];
                let wd = sn_ptr[d + 1] - sn_ptr[d];
                let md = rows_d.len();
                let p = cursor[d];
                let p2 = p + rows_d[p..].partition_point(|&r| r < c1);
                let wj = p2 - p;
                let mu = md - p;
                debug_assert!(wj >= 1);
                let panel_d = &done[val_ptr[d]..val_ptr[d] + wd * md];

                // C = G·G₁ᵀ where G = L_d rows p.., G₁ = its first wj rows:
                // accumulated as wd rank-1 updates over contiguous columns.
                update.clear();
                update.resize(mu * wj, 0.0);
                for k in 0..wd {
                    let gcol = &panel_d[k * md + p..k * md + md];
                    for jj in 0..wj {
                        let coef = gcol[jj];
                        if coef == 0.0 {
                            continue;
                        }
                        let dst = &mut update[jj * mu..(jj + 1) * mu];
                        for (di, &gi) in dst.iter_mut().zip(gcol) {
                            *di += coef * gi;
                        }
                    }
                }

                // Scatter-subtract through relative indices (the rows of a
                // descendant's tail are a subset of this panel's rows).
                relrows.clear();
                relrows.extend(rows_d[p..].iter().map(|&r| relmap[r]));
                for jj in 0..wj {
                    let lc = rows_d[p + jj] - c0;
                    let dst = &mut panel[lc * m..(lc + 1) * m];
                    let src = &update[jj * mu..(jj + 1) * mu];
                    // Skip rows above the target column (upper triangle of
                    // the symmetric update block).
                    for i in jj..mu {
                        dst[relrows[i]] -= src[i];
                    }
                }

                // Re-queue the descendant at its next target supernode.
                if p2 < md {
                    cursor[d] = p2;
                    pending[col_to_sn[rows_d[p2]]].push(d);
                }
            }

            // Dense in-panel column Cholesky (left-looking within the
            // panel; contiguous tails autovectorize).
            for j in 0..w {
                let (head, tail) = panel.split_at_mut(j * m);
                let colj = &mut tail[..m];
                for colk in head.chunks_exact(m) {
                    let coef = colk[j]; // L[j, k] in the diagonal block
                    if coef == 0.0 {
                        continue;
                    }
                    for (x, &lk) in colj[j..].iter_mut().zip(&colk[j..]) {
                        *x -= coef * lk;
                    }
                }
                let d = colj[j];
                if d <= 0.0 || !d.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite {
                        row: c0 + j,
                        pivot: d,
                    });
                }
                let piv = d.sqrt();
                colj[j] = piv;
                let inv = 1.0 / piv;
                for x in &mut colj[j + 1..] {
                    *x *= inv;
                }
            }

            // Queue this supernode as a descendant of the supernode owning
            // its first below-diagonal row.
            if m > w {
                cursor[s] = w;
                pending[col_to_sn[rows_s[w]]].push(s);
            }
        }

        Ok(Self {
            n,
            perm,
            sn_ptr,
            col_to_sn,
            row_ptr,
            rows,
            val_ptr,
            values,
            true_nnz,
            max_width: widest,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored factor entries including relaxation padding (the panel
    /// memory actually allocated).
    pub fn factor_nnz(&self) -> usize {
        self.values.len()
    }

    /// Shape statistics of the factor.
    pub fn stats(&self) -> SupernodeStats {
        SupernodeStats {
            supernodes: self.sn_ptr.len() - 1,
            max_width: self.max_width,
            stored_nnz: self.values.len(),
            true_nnz: self.true_nnz,
        }
    }

    /// Length of the scratch slice [`solve_panel_with`] needs: one
    /// permutation buffer plus one gather buffer for the tallest panel.
    ///
    /// [`solve_panel_with`]: SupernodalCholesky::solve_panel_with
    pub fn scratch_len(&self) -> usize {
        let tallest = (0..self.sn_ptr.len() - 1)
            .map(|s| self.row_ptr[s + 1] - self.row_ptr[s])
            .max()
            .unwrap_or(0);
        self.n + tallest
    }

    /// Solves `A x = b` by two blocked triangular sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_panel(&mut x, 1);
        x
    }

    /// Solves `A X = B` for a whole panel of right-hand sides in place.
    ///
    /// `rhs` is an `n × nrhs` column-major matrix. One pass over the
    /// supernode panels serves every column; per column the operation
    /// order is identical to [`SupernodalCholesky::solve`], so panel
    /// solutions are bitwise equal to looped single solves.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.dim() * nrhs`.
    pub fn solve_panel(&self, rhs: &mut [f64], nrhs: usize) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.solve_panel_with(rhs, nrhs, &mut scratch);
    }

    /// Allocation-free variant of [`SupernodalCholesky::solve_panel`] with
    /// a caller-provided scratch of at least
    /// [`scratch_len`](SupernodalCholesky::scratch_len) entries.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.len() != self.dim() * nrhs` or the scratch is too
    /// short.
    pub fn solve_panel_with(&self, rhs: &mut [f64], nrhs: usize, scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(rhs.len(), n * nrhs, "supernodal panel solve: rhs size");
        assert!(
            scratch.len() >= self.scratch_len(),
            "supernodal panel solve: scratch too short"
        );
        if n == 0 {
            return;
        }
        let (permbuf, gather) = scratch.split_at_mut(n);
        let num_sn = self.sn_ptr.len() - 1;

        // Into the factor basis.
        for r in 0..nrhs {
            let col = &mut rhs[r * n..(r + 1) * n];
            self.perm.apply_into(col, permbuf);
            col.copy_from_slice(permbuf);
        }

        // Forward: L Y = B.
        for s in 0..num_sn {
            let c0 = self.sn_ptr[s];
            let w = self.sn_ptr[s + 1] - c0;
            let rows_s = &self.rows[self.row_ptr[s]..self.row_ptr[s + 1]];
            let m = rows_s.len();
            let panel = &self.values[self.val_ptr[s]..self.val_ptr[s + 1]];
            let below = &rows_s[w..];
            for r in 0..nrhs {
                let x = &mut rhs[r * n..(r + 1) * n];
                // Dense lower-triangular solve on the diagonal block.
                for j in 0..w {
                    let col = &panel[j * m..(j + 1) * m];
                    let yj = x[c0 + j] / col[j];
                    x[c0 + j] = yj;
                    for i in (j + 1)..w {
                        x[c0 + i] -= col[i] * yj;
                    }
                }
                if below.is_empty() {
                    continue;
                }
                // Below block: accumulate L₂₁ y into a contiguous buffer,
                // then scatter.
                let acc = &mut gather[..m - w];
                acc.iter_mut().for_each(|v| *v = 0.0);
                for j in 0..w {
                    let coef = x[c0 + j];
                    if coef == 0.0 {
                        continue;
                    }
                    let col = &panel[j * m + w..(j + 1) * m];
                    for (a, &l) in acc.iter_mut().zip(col) {
                        *a += l * coef;
                    }
                }
                for (i, &row) in below.iter().enumerate() {
                    x[row] -= acc[i];
                }
            }
        }

        // Backward: Lᵀ X = Y.
        for s in (0..num_sn).rev() {
            let c0 = self.sn_ptr[s];
            let w = self.sn_ptr[s + 1] - c0;
            let rows_s = &self.rows[self.row_ptr[s]..self.row_ptr[s + 1]];
            let m = rows_s.len();
            let panel = &self.values[self.val_ptr[s]..self.val_ptr[s + 1]];
            let below = &rows_s[w..];
            for r in 0..nrhs {
                let x = &mut rhs[r * n..(r + 1) * n];
                // Gather the below entries once.
                let xb = &mut gather[..m - w];
                for (i, &row) in below.iter().enumerate() {
                    xb[i] = x[row];
                }
                for j in (0..w).rev() {
                    let col = &panel[j * m..(j + 1) * m];
                    let mut acc = x[c0 + j];
                    for (&l, &xi) in col[w..].iter().zip(xb.iter()) {
                        acc -= l * xi;
                    }
                    for i in (j + 1)..w {
                        acc -= col[i] * x[c0 + i];
                    }
                    x[c0 + j] = acc / col[j];
                }
            }
        }

        // Back to the natural basis.
        for r in 0..nrhs {
            let col = &mut rhs[r * n..(r + 1) * n];
            self.perm.apply_inverse_into(col, permbuf);
            col.copy_from_slice(permbuf);
        }
    }
}

impl MemoryFootprint for SupernodalCholesky {
    fn heap_bytes(&self) -> usize {
        self.sn_ptr.heap_bytes()
            + self.col_to_sn.heap_bytes()
            + self.row_ptr.heap_bytes()
            + self.rows.heap_bytes()
            + self.val_ptr.heap_bytes()
            + self.values.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, SparseCholesky};

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let id = |i: usize, j: usize| j * nx + i;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let me = id(i, j);
                coo.push(me, me, 4.1);
                let mut link = |other: usize| coo.push(me, other, -1.0);
                if i > 0 {
                    link(id(i - 1, j));
                }
                if i + 1 < nx {
                    link(id(i + 1, j));
                }
                if j > 0 {
                    link(id(i, j - 1));
                }
                if j + 1 < ny {
                    link(id(i, j + 1));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn agrees_with_scalar_kernel_on_laplacian() {
        let a = laplacian_2d(9, 7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
        let x_scalar = SparseCholesky::factor(&a).unwrap().solve(&b);
        let x_super = SupernodalCholesky::factor(&a).unwrap().solve(&b);
        let scale = x_scalar.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (p, q) in x_scalar.iter().zip(&x_super) {
            assert!((p - q).abs() <= 1e-12 * scale.max(1.0), "{p} vs {q}");
        }
        assert!(a.residual(&x_super, &b) < 1e-12);
    }

    #[test]
    fn panel_solve_is_bitwise_equal_to_looped_solves() {
        let a = laplacian_2d(8, 8);
        let n = a.nrows();
        let chol = SupernodalCholesky::factor(&a).unwrap();
        let nrhs = 5;
        let mut panel = vec![0.0; n * nrhs];
        for r in 0..nrhs {
            for i in 0..n {
                panel[r * n + i] = ((i * 7 + r * 3) % 13) as f64 - 6.0;
            }
        }
        let singles: Vec<Vec<f64>> = (0..nrhs)
            .map(|r| chol.solve(&panel[r * n..(r + 1) * n]))
            .collect();
        chol.solve_panel(&mut panel, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                assert_eq!(
                    panel[r * n + i].to_bits(),
                    singles[r][i].to_bits(),
                    "rhs {r} entry {i}"
                );
            }
        }
    }

    #[test]
    fn nested_dissection_and_all_orderings_agree() {
        let a = laplacian_2d(12, 12);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos()).collect();
        let reference = SparseCholesky::factor(&a).unwrap().solve(&b);
        for ordering in [
            FillOrdering::Rcm,
            FillOrdering::NestedDissection,
            FillOrdering::Natural,
        ] {
            let chol = SupernodalCholesky::factor_with_permutation(
                &a,
                ordering.permutation(&a),
                &SupernodalOptions::default(),
            )
            .unwrap();
            let x = chol.solve(&b);
            let scale = reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for (p, q) in reference.iter().zip(&x) {
                assert!(
                    (p - q).abs() <= 1e-11 * scale.max(1.0),
                    "{ordering:?}: {p} vs {q}"
                );
            }
        }
    }

    #[test]
    fn supernodes_amalgamate_on_banded_operators() {
        let a = laplacian_2d(20, 20);
        let chol = SupernodalCholesky::factor(&a).unwrap();
        let stats = chol.stats();
        assert!(
            stats.supernodes < a.nrows() / 2,
            "expected real amalgamation, got {} supernodes for {} columns",
            stats.supernodes,
            a.nrows()
        );
        assert!(stats.max_width > 1);
        assert!(stats.stored_nnz >= stats.true_nnz);
        // The padding budget must actually bound the padding.
        assert!(
            (stats.stored_nnz - stats.true_nnz) as f64 <= 0.5 * stats.true_nnz as f64,
            "padding {} vs true {}",
            stats.stored_nnz - stats.true_nnz,
            stats.true_nnz
        );
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert!(matches!(
            SupernodalCholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn dense_spd_is_one_supernode() {
        // A fully dense SPD matrix collapses to a single panel (up to the
        // width cap).
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    let mik = ((i * 7 + k * 3) % 5) as f64 - 2.0;
                    let mjk = ((j * 7 + k * 3) % 5) as f64 - 2.0;
                    v += mik * mjk;
                }
                if i == j {
                    v += n as f64;
                }
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        let chol = SupernodalCholesky::factor(&a).unwrap();
        assert_eq!(chol.stats().supernodes, 1);
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = chol.solve(&b);
        assert!(a.residual(&x, &b) < 1e-12);
    }

    #[test]
    fn empty_and_single_entry_matrices() {
        let empty = CooMatrix::new(0, 0).to_csr();
        let chol = SupernodalCholesky::factor(&empty).unwrap();
        assert_eq!(chol.solve(&[]), Vec::<f64>::new());

        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 4.0);
        let one = coo.to_csr();
        let chol = SupernodalCholesky::factor(&one).unwrap();
        assert_eq!(chol.solve(&[8.0]), vec![2.0]);
    }
}
