//! Basic dense vector kernels shared by the solvers.
//!
//! The contraction primitives (`dot`, `axpy`, and `norm2` through `dot`)
//! delegate to [`BlockedKernel`] — the unrolled `mul_add` microkernels with
//! runtime FMA dispatch from `kernel.rs` — so CG/GMRES inherit the same
//! tuned loops the supernodal factorization runs on. `BlockedKernel` is
//! pinned here (rather than following `KernelChoice`) so free-function
//! results never depend on a per-solver configuration. The element-wise
//! helpers stay plain slice loops: they are memory-bound and the compiler
//! already vectorizes them at `opt-level >= 2`.

use crate::kernel::{BlockedKernel, DenseKernel};

/// Dot product `x · y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    BlockedKernel.dot(x, y)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    BlockedKernel.axpy(alpha, x, y);
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Component-wise difference `x - y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn scale_and_sub() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        assert_eq!(sub(&x, &[1.0, 1.0]), vec![-4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
