//! K-way domain decomposition of a sparse operator for the sharded
//! (Schur-complement) solver backend.
//!
//! A [`ShardPlan`] partitions the row/column index set of a square sparse
//! matrix — viewed as an undirected adjacency graph, exactly like the
//! fill-reducing orderings do — into `K` *interior shards* plus one
//! *interface* set, such that no stored entry couples two different shards
//! directly: every inter-shard path passes through interface vertices. In
//! block form (after an implicit symmetric permutation) the operator is
//! block-diagonal over the shard interiors bordered by the interface,
//!
//! ```text
//!         ┌ A_11           A_1s ┐
//!     A = │      ⋱           ⋮  │
//!         │          A_KK  A_Ks │
//!         └ A_s1  ⋯  A_sK  A_ss ┘
//! ```
//!
//! which is the algebraic prerequisite for the Schur-complement solve in
//! [`schur`](crate::Sharded): each `A_kk` factors independently (and
//! concurrently), and only the small interface system couples them.
//!
//! The planner reuses the nested-dissection separator machinery of
//! [`ordering`](crate::nested_dissection): it repeatedly bisects the
//! largest remaining piece with a BFS level-structure separator
//! (pseudo-peripheral root, smallest middle level), collects the
//! separators into the interface, and finally merges the smallest pieces
//! until exactly `K` shards remain. Merging is safe because distinct
//! pieces are never adjacent — every split moved the whole separator level
//! into the interface. The construction is fully deterministic (no
//! scheduling, no randomness), so a plan — and everything the sharded
//! solver derives from it — is identical across runs and pool caps.

use std::collections::VecDeque;

use crate::ordering::{split_piece, PieceSplit};
use crate::{CsrMatrix, MemoryFootprint};

/// Owner tag for interface rows in [`ShardPlan::owner`].
const INTERFACE: usize = usize::MAX;

/// Pieces smaller than this are never bisected further: a separator would
/// cost more interface DoFs than the split saves.
const MIN_SPLIT: usize = 32;

/// A K-way interior/interface partition of a square operator's index set.
///
/// Built by [`ShardPlan::build`]; consumed by the
/// [`Sharded`](crate::Sharded) backend. Row indices within each shard and
/// within the interface are sorted ascending, and shards are ordered by
/// their smallest row index, so the plan (and every extraction order
/// derived from it) is canonical.
///
/// Because the plan is canonical, `PartialEq` compares partitions
/// semantically: two plans are equal exactly when they induce the same
/// block structure — which is what the [`Sharded`](crate::Sharded) cache
/// dedupe relies on when different requested shard counts degenerate to
/// the same partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Sorted interior row indices, one list per shard (all non-empty).
    shards: Vec<Vec<usize>>,
    /// Sorted interface row indices.
    interface: Vec<usize>,
    /// `owner[row]` = shard index, or `usize::MAX` for interface rows.
    owner: Vec<usize>,
}

impl ShardPlan {
    /// Partitions the adjacency graph of `a` (square) into up to `shards`
    /// interior blocks plus a separating interface.
    ///
    /// The plan delivers *at most* `shards` shards: pieces too small or
    /// too dense to admit a BFS separator are not bisected, so tiny or
    /// (near-)complete operators may yield fewer — in the limit one shard
    /// and an empty interface, which degenerates the sharded solve to the
    /// monolithic one. Requests of `shards <= 1` short-circuit to that
    /// single-shard plan.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn build(a: &CsrMatrix, shards: usize) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "shard plan: matrix must be square");
        let n = a.nrows();
        if shards <= 1 || n < 2 * MIN_SPLIT {
            return Self::single(n);
        }

        // Generation-stamped BFS scratch, shared by the component splits
        // and the separator bisections.
        let mut stamp = vec![0u32; n];
        let mut level = vec![0u32; n];
        let mut generation = 0u32;
        let mut queue = VecDeque::new();

        // Connected components of the full graph are the initial pieces.
        let mut pieces: Vec<Vec<usize>> = Vec::new();
        let everything: Vec<usize> = (0..n).collect();
        split_components(
            a,
            &everything,
            &mut stamp,
            &mut generation,
            &mut queue,
            |comp| pieces.push(comp),
        );

        // Bisect the largest splittable piece until `shards` pieces exist.
        let mut interface: Vec<usize> = Vec::new();
        // Pieces that refused to split (too small / no separator) move here
        // so the loop never retries them.
        let mut done: Vec<Vec<usize>> = Vec::new();
        while pieces.len() + done.len() < shards && !pieces.is_empty() {
            let largest = (0..pieces.len())
                .max_by_key(|&i| (pieces[i].len(), std::cmp::Reverse(pieces[i][0])))
                .expect("non-empty piece list");
            let piece = pieces.swap_remove(largest);
            let split = if piece.len() < MIN_SPLIT {
                None
            } else {
                split_piece(
                    a,
                    &piece,
                    &mut stamp,
                    &mut level,
                    &mut generation,
                    &mut queue,
                )
            };
            let Some(PieceSplit { below, sep, above }) = split else {
                done.push(piece);
                continue;
            };
            interface.extend_from_slice(&sep);
            // Removing the separator can fragment a half: each connected
            // component becomes its own piece (the merge pass below
            // re-coarsens if that overshoots the requested count).
            for half in [below, above] {
                split_components(a, &half, &mut stamp, &mut generation, &mut queue, |comp| {
                    if !comp.is_empty() {
                        pieces.push(comp)
                    }
                });
            }
        }
        pieces.extend(done);
        pieces.retain(|p| !p.is_empty());
        if pieces.is_empty() {
            return Self::single(n);
        }

        // Merge the two smallest pieces (ties broken by smallest member,
        // so the pairing is deterministic) until at most `shards` remain —
        // a min-heap keyed by `(len, min member)`, O(P log P) overall.
        // Distinct pieces are never adjacent (every separator went to the
        // interface in full), so a merged piece is still
        // interior-decoupled from every other shard.
        if pieces.len() > shards {
            use std::cmp::Reverse;
            let mut heap: std::collections::BinaryHeap<Reverse<(usize, usize, usize)>> = pieces
                .iter()
                .enumerate()
                .map(|(slot, p)| Reverse((p.len(), *p.iter().min().expect("non-empty"), slot)))
                .collect();
            let mut slots: Vec<Vec<usize>> = std::mem::take(&mut pieces);
            while heap.len() > shards {
                let Reverse((len_a, first_a, slot_a)) = heap.pop().expect("len > shards >= 1");
                let Reverse((len_b, first_b, slot_b)) = heap.pop().expect("len > shards >= 1");
                let absorbed = std::mem::take(&mut slots[slot_b]);
                slots[slot_a].extend_from_slice(&absorbed);
                heap.push(Reverse((len_a + len_b, first_a.min(first_b), slot_a)));
            }
            pieces = slots.into_iter().filter(|p| !p.is_empty()).collect();
        }

        // Canonicalize: sorted members per shard, shards ordered by their
        // smallest row.
        for piece in &mut pieces {
            piece.sort_unstable();
        }
        pieces.sort_unstable_by_key(|p| p[0]);

        interface.sort_unstable();
        let mut owner = vec![INTERFACE; n];
        for (k, piece) in pieces.iter().enumerate() {
            for &v in piece {
                owner[v] = k;
            }
        }
        debug_assert!(
            {
                let assigned = pieces.iter().map(Vec::len).sum::<usize>() + interface.len();
                assigned == n
            },
            "shard plan must cover every row exactly once"
        );
        debug_assert!(
            (0..n).all(|v| {
                a.row(v).0.iter().all(|&w| {
                    owner[v] == owner[w] || owner[v] == INTERFACE || owner[w] == INTERFACE
                })
            }),
            "no edge may couple two different shards directly"
        );
        Self {
            shards: pieces,
            interface,
            owner,
        }
    }

    /// The trivial one-shard plan (everything interior, empty interface).
    fn single(n: usize) -> Self {
        Self {
            shards: vec![(0..n).collect()],
            interface: Vec::new(),
            owner: vec![0; n],
        }
    }

    /// Dimension of the partitioned operator.
    pub fn num_rows(&self) -> usize {
        self.owner.len()
    }

    /// Number of interior shards actually produced (≤ the requested count,
    /// ≥ 1 for non-empty operators).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sorted interior row indices of shard `k`.
    pub fn shard_rows(&self, k: usize) -> &[usize] {
        &self.shards[k]
    }

    /// Sorted interface row indices (empty for a single-shard plan).
    pub fn interface(&self) -> &[usize] {
        &self.interface
    }

    /// The shard owning `row`, or `None` for interface rows.
    pub fn owner(&self, row: usize) -> Option<usize> {
        match self.owner[row] {
            INTERFACE => None,
            k => Some(k),
        }
    }
}

impl MemoryFootprint for ShardPlan {
    fn heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(MemoryFootprint::heap_bytes)
            .sum::<usize>()
            + self.interface.heap_bytes()
            + self.owner.heap_bytes()
    }
}

/// Invokes `emit` once per connected component of `half` (a vertex subset
/// whose adjacency is restricted to itself).
fn split_components(
    a: &CsrMatrix,
    half: &[usize],
    stamp: &mut [u32],
    generation: &mut u32,
    queue: &mut VecDeque<usize>,
    mut emit: impl FnMut(Vec<usize>),
) {
    if half.is_empty() {
        return;
    }
    *generation += 1;
    let in_half = *generation;
    for &v in half {
        stamp[v] = in_half;
    }
    *generation += 1;
    let claimed = *generation;
    for &v in half {
        if stamp[v] != in_half {
            continue;
        }
        let mut comp = Vec::new();
        queue.clear();
        queue.push_back(v);
        stamp[v] = claimed;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &w in a.row(u).0 {
                if w != u && stamp[w] == in_half {
                    stamp[w] = claimed;
                    queue.push_back(w);
                }
            }
        }
        emit(comp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_operators::laplacian_2d;
    use crate::CooMatrix;

    fn check_invariants(a: &CsrMatrix, plan: &ShardPlan) {
        let n = a.nrows();
        // Exact cover.
        let mut seen = vec![0usize; n];
        for k in 0..plan.num_shards() {
            assert!(!plan.shard_rows(k).is_empty(), "empty shard {k}");
            for w in plan.shard_rows(k).windows(2) {
                assert!(w[0] < w[1], "shard rows must be sorted unique");
            }
            for &v in plan.shard_rows(k) {
                seen[v] += 1;
                assert_eq!(plan.owner(v), Some(k));
            }
        }
        for &v in plan.interface() {
            seen[v] += 1;
            assert_eq!(plan.owner(v), None);
        }
        assert!(seen.iter().all(|&c| c == 1), "rows covered exactly once");
        // No direct inter-shard coupling.
        for v in 0..n {
            for &w in a.row(v).0 {
                let (ov, ow) = (plan.owner(v), plan.owner(w));
                assert!(
                    ov == ow || ov.is_none() || ow.is_none(),
                    "edge ({v},{w}) couples shards {ov:?} and {ow:?}"
                );
            }
        }
    }

    #[test]
    fn plan_partitions_a_lattice() {
        let a = laplacian_2d(24, 24);
        for k in [2usize, 3, 4, 7] {
            let plan = ShardPlan::build(&a, k);
            assert!(plan.num_shards() >= 2, "lattice must split for k={k}");
            assert!(plan.num_shards() <= k);
            assert!(!plan.interface().is_empty());
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn single_shard_requests_are_trivial() {
        let a = laplacian_2d(10, 10);
        for k in [0usize, 1] {
            let plan = ShardPlan::build(&a, k);
            assert_eq!(plan.num_shards(), 1);
            assert!(plan.interface().is_empty());
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn tiny_operators_stay_monolithic() {
        let a = laplacian_2d(4, 4);
        let plan = ShardPlan::build(&a, 4);
        assert_eq!(plan.num_shards(), 1);
        assert!(plan.interface().is_empty());
        check_invariants(&a, &plan);
    }

    #[test]
    fn disconnected_components_shard_without_interface() {
        // Two disjoint chains: a 2-shard plan needs no separator at all.
        let n = 80;
        let mut coo = CooMatrix::new(n, n);
        for half in 0..2 {
            let base = half * (n / 2);
            for i in 0..n / 2 {
                coo.push(base + i, base + i, 2.0);
                if i + 1 < n / 2 {
                    coo.push(base + i, base + i + 1, -1.0);
                    coo.push(base + i + 1, base + i, -1.0);
                }
            }
        }
        let a = coo.to_csr();
        let plan = ShardPlan::build(&a, 2);
        assert_eq!(plan.num_shards(), 2);
        assert!(plan.interface().is_empty());
        check_invariants(&a, &plan);
    }

    #[test]
    fn merge_pass_respects_the_requested_count() {
        // A star of 5 chains around one hub: splitting fragments into many
        // components; the plan must re-merge down to the request.
        let arms = 5usize;
        let len = 40usize;
        let n = 1 + arms * len;
        let mut coo = CooMatrix::new(n, n);
        coo.push(0, 0, 2.0);
        for arm in 0..arms {
            let base = 1 + arm * len;
            for i in 0..len {
                coo.push(base + i, base + i, 2.0);
                let prev = if i == 0 { 0 } else { base + i - 1 };
                coo.push(base + i, prev, -1.0);
                coo.push(prev, base + i, -1.0);
            }
        }
        let a = coo.to_csr();
        for k in [2usize, 3] {
            let plan = ShardPlan::build(&a, k);
            assert!(plan.num_shards() <= k);
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let a = laplacian_2d(30, 20);
        let p1 = ShardPlan::build(&a, 4);
        let p2 = ShardPlan::build(&a, 4);
        assert_eq!(p1.num_shards(), p2.num_shards());
        assert_eq!(p1.interface(), p2.interface());
        for k in 0..p1.num_shards() {
            assert_eq!(p1.shard_rows(k), p2.shard_rows(k));
        }
    }
}
