//! K-way domain decomposition of a sparse operator for the sharded
//! (Schur-complement) solver backend.
//!
//! A [`ShardPlan`] partitions the row/column index set of a square sparse
//! matrix — viewed as an undirected adjacency graph, exactly like the
//! fill-reducing orderings do — into `K` *interior shards* plus one
//! *interface* set, such that no stored entry couples two different shards
//! directly: every inter-shard path passes through interface vertices. In
//! block form (after an implicit symmetric permutation) the operator is
//! block-diagonal over the shard interiors bordered by the interface,
//!
//! ```text
//!         ┌ A_11           A_1s ┐
//!     A = │      ⋱           ⋮  │
//!         │          A_KK  A_Ks │
//!         └ A_s1  ⋯  A_sK  A_ss ┘
//! ```
//!
//! which is the algebraic prerequisite for the Schur-complement solve in
//! [`schur`](crate::Sharded): each `A_kk` factors independently (and
//! concurrently), and only the small interface system couples them.
//!
//! Two routes build a plan:
//!
//! * **Geometric** ([`ShardPlan::build_hinted`] with a [`PartitionHint`]):
//!   when the caller knows each row's block-grid provenance — the reduced
//!   global operator of a block array couples two DoFs only when they touch
//!   a common block — the planner bisects the *block grid* recursively into
//!   `K` weight-balanced rectangles. Rows whose block span lies inside one
//!   rectangle are interior to that shard; rows spanning a cut are the
//!   interface. This sidesteps the BFS planner's degeneracy on these dense
//!   block-coupled operators (singleton shards behind one fixed separator)
//!   and yields near-perfectly balanced shards by construction. The hint is
//!   advisory: the plan is validated against the actual sparsity, and any
//!   contradiction (or a hint of the wrong length) falls back to the graph
//!   route.
//! * **Graph** (the fallback, and [`ShardPlan::build`] without a hint): the
//!   nested-dissection separator machinery of
//!   [`ordering`](crate::nested_dissection) repeatedly bisects the largest
//!   remaining piece with a BFS level-structure separator until the
//!   requested count is reached *and* the largest piece is within 2× of the
//!   mean, collects separators into the interface, and merges the smallest
//!   pieces until at most `K` shards remain — never emitting a multi-shard
//!   plan with a shard below [`ShardPlan::MIN_SHARD_ROWS`] rows.
//!
//! Both constructions are fully deterministic (no scheduling, no
//! randomness), so a plan — and everything the sharded solver derives from
//! it — is identical across runs and pool caps.

use std::collections::VecDeque;

use crate::ordering::{bisect_weighted_grid, split_piece, PieceSplit};
use crate::{CsrMatrix, MemoryFootprint};

/// Owner tag for interface rows in [`ShardPlan::owner`].
const INTERFACE: usize = usize::MAX;

/// Pieces smaller than this are never bisected further: a separator would
/// cost more interface DoFs than the split saves.
const MIN_SPLIT: usize = 32;

/// Multi-shard plans keep `max(work) / mean(work) ≤ BALANCE_BOUND`, where
/// work is the interior-degree-squared factor proxy of
/// [`ShardPlanStats::max_shard_work`]. The graph route re-bisects the
/// largest piece until the *row* proxy meets it or splitting provably
/// fails; the geometric route rejects region counts that violate it (a
/// 2-way split satisfies it identically, so the geometric search always
/// terminates).
const BALANCE_BOUND: f64 = 2.0;

/// Block-grid provenance of every row of an operator, used by
/// [`ShardPlan::build_hinted`] to partition geometrically.
///
/// The reduced global operator of a block array couples two DoFs only when
/// they touch a common block, so each row can be tagged with the inclusive
/// span of block coordinates `[bx_lo, bx_hi, by_lo, by_hi]` it participates
/// in (a span wider than one block means the row sits on a shared block
/// face). Two rows couple only if their spans intersect; a row whose span
/// lies inside one region of a block-grid partition is therefore provably
/// decoupled from every other region's interior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionHint {
    /// Block-grid dimensions `[nbx, nby]`.
    grid: [usize; 2],
    /// Per-row inclusive block-coordinate span `[bx_lo, bx_hi, by_lo, by_hi]`.
    spans: Vec<[usize; 4]>,
}

impl PartitionHint {
    /// Builds a hint over an `grid = [nbx, nby]` block grid with one
    /// inclusive span `[bx_lo, bx_hi, by_lo, by_hi]` per operator row.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or any span is inverted or out of range.
    pub fn new(grid: [usize; 2], spans: Vec<[usize; 4]>) -> Self {
        assert!(
            grid[0] >= 1 && grid[1] >= 1,
            "partition hint: block grid must be non-empty"
        );
        for (row, s) in spans.iter().enumerate() {
            assert!(
                s[0] <= s[1] && s[1] < grid[0] && s[2] <= s[3] && s[3] < grid[1],
                "partition hint: row {row} span {s:?} outside grid {grid:?}"
            );
        }
        Self { grid, spans }
    }

    /// Number of operator rows the hint describes. A hint is only usable
    /// for operators of exactly this dimension.
    pub fn num_rows(&self) -> usize {
        self.spans.len()
    }

    /// Block-grid dimensions `[nbx, nby]`.
    pub fn grid(&self) -> [usize; 2] {
        self.grid
    }

    /// Content fingerprint (FNV-1a over grid and spans), folded into the
    /// sharded backend's configuration fingerprint so cached factors keyed
    /// under one hint are never served under another.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: usize| {
            for byte in (v as u64).to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.grid[0]);
        eat(self.grid[1]);
        eat(self.spans.len());
        for s in &self.spans {
            for &v in s {
                eat(v);
            }
        }
        h
    }
}

impl MemoryFootprint for PartitionHint {
    fn heap_bytes(&self) -> usize {
        self.spans.capacity() * std::mem::size_of::<[usize; 4]>()
    }
}

/// First-class quality accounting of a [`ShardPlan`]: how balanced the
/// interior shards are and how much of the operator the interface eats.
///
/// Work is estimated per shard as `Σ_rows (interior degree)²` — the flop
/// proxy for factoring that shard's diagonal block — so `balance_ratio`
/// close to 1 means the concurrent shard factorization divides evenly
/// across workers, and `balance_ratio ≤ 2` is the bound both planner
/// routes enforce for multi-shard plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlanStats {
    /// Number of interior shards in the plan.
    pub shards: usize,
    /// Interface (separator) rows.
    pub interface_dofs: usize,
    /// `interface_dofs / num_rows` (0 for an empty operator).
    pub interface_fraction: f64,
    /// Rows of the smallest interior shard.
    pub min_shard_rows: usize,
    /// Rows of the largest interior shard.
    pub max_shard_rows: usize,
    /// Largest per-shard estimated factor work (interior degree squared).
    pub max_shard_work: f64,
    /// Mean per-shard estimated factor work.
    pub mean_shard_work: f64,
    /// `max_shard_work / mean_shard_work` (1 when there is no work).
    pub balance_ratio: f64,
    /// Whether the geometric (hint-driven) route produced the plan.
    pub geometric: bool,
}

/// A K-way interior/interface partition of a square operator's index set.
///
/// Built by [`ShardPlan::build`] / [`ShardPlan::build_hinted`]; consumed by
/// the [`Sharded`](crate::Sharded) backend. Row indices within each shard
/// and within the interface are sorted ascending, and shards are ordered by
/// their smallest row index, so the plan (and every extraction order
/// derived from it) is canonical.
///
/// Because the plan is canonical, `PartialEq` compares partitions
/// semantically: two plans are equal exactly when they induce the same
/// block structure — which is what the [`Sharded`](crate::Sharded) cache
/// dedupe relies on when different requested shard counts degenerate to
/// the same partition. The attached [`ShardPlanStats`] are derived data and
/// do not participate in equality.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Sorted interior row indices, one list per shard (all non-empty).
    shards: Vec<Vec<usize>>,
    /// Sorted interface row indices.
    interface: Vec<usize>,
    /// `owner[row]` = shard index, or `usize::MAX` for interface rows.
    owner: Vec<usize>,
    /// Quality accounting, computed once at construction.
    stats: ShardPlanStats,
}

impl PartialEq for ShardPlan {
    fn eq(&self, other: &Self) -> bool {
        self.shards == other.shards && self.interface == other.interface
    }
}

impl Eq for ShardPlan {}

impl ShardPlan {
    /// Multi-shard plans never carry an interior shard smaller than this:
    /// pieces below the floor are merged into a neighbor slot instead of
    /// being emitted as (near-)singleton shards whose factor is all
    /// overhead.
    pub const MIN_SHARD_ROWS: usize = MIN_SPLIT / 4;

    /// Partitions the adjacency graph of `a` (square) into up to `shards`
    /// interior blocks plus a separating interface, using the graph route
    /// only. Equivalent to [`ShardPlan::build_hinted`] with no hint.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn build(a: &CsrMatrix, shards: usize) -> Self {
        Self::build_hinted(a, shards, None)
    }

    /// Partitions `a` into up to `shards` interior blocks plus a separating
    /// interface, preferring the geometric route when `hint` describes the
    /// operator.
    ///
    /// The plan delivers *at most* `shards` shards: pieces too small or
    /// too dense to admit a BFS separator are not bisected, so tiny or
    /// (near-)complete operators may yield fewer — in the limit one shard
    /// and an empty interface, which degenerates the sharded solve to the
    /// monolithic one. Requests of `shards <= 1` short-circuit to that
    /// single-shard plan.
    ///
    /// The hint is advisory: a hint whose `num_rows` mismatches the
    /// operator, whose grid is too small to cut, or whose implied
    /// decoupling the actual sparsity contradicts is ignored and the graph
    /// route runs instead — the result is always a valid plan.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn build_hinted(a: &CsrMatrix, shards: usize, hint: Option<&PartitionHint>) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "shard plan: matrix must be square");
        let n = a.nrows();
        if shards <= 1 || n < 2 * MIN_SPLIT {
            return Self::single(a);
        }
        if let Some(hint) = hint {
            if hint.num_rows() == n {
                if let Some(plan) = Self::build_geometric(a, shards, hint) {
                    return plan;
                }
            }
        }
        Self::build_graph(a, shards)
    }

    /// Geometric route: recursive weighted bisection of the hint's block
    /// grid. Returns `None` when no region count in `2..=shards` passes the
    /// rows floor, the sparsity validation, and the balance bound — the
    /// caller then falls back to the graph route.
    fn build_geometric(a: &CsrMatrix, shards: usize, hint: &PartitionHint) -> Option<Self> {
        let n = a.nrows();
        let [nbx, nby] = hint.grid;
        let max_k = shards.min(nbx * nby);
        if max_k < 2 {
            return None;
        }
        // Block weights = rows anchored at the span's lower-left block, so
        // the grid bisection balances actual row counts, not block counts.
        let mut weights = vec![0u64; nbx * nby];
        for s in &hint.spans {
            weights[s[2] * nbx + s[0]] += 1;
        }
        for k in (2..=max_k).rev() {
            let rects = bisect_weighted_grid(&weights, nbx, nby, k);
            if rects.len() != k {
                continue;
            }
            let mut region_of = vec![usize::MAX; nbx * nby];
            for (r, &[x0, x1, y0, y1]) in rects.iter().enumerate() {
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        region_of[y * nbx + x] = r;
                    }
                }
            }
            // A row is interior to the region containing its whole span;
            // rows spanning a cut are interface.
            let mut owner = vec![INTERFACE; n];
            let mut counts = vec![0usize; k];
            for (row, &[xl, xh, yl, yh]) in hint.spans.iter().enumerate() {
                let r = region_of[yl * nbx + xl];
                let [_, x1, _, y1] = rects[r];
                if xh <= x1 && yh <= y1 {
                    owner[row] = r;
                    counts[r] += 1;
                }
            }
            if counts.iter().any(|&c| c < Self::MIN_SHARD_ROWS) {
                continue;
            }
            // The hint is advisory: confirm against the true sparsity that
            // no stored entry couples two regions' interiors. A violation
            // means the hint misdescribes the operator — distrust it
            // entirely rather than trying a coarser cut of bad data.
            for v in 0..n {
                if owner[v] == INTERFACE {
                    continue;
                }
                for &w in a.row(v).0 {
                    if owner[w] != owner[v] && owner[w] != INTERFACE {
                        return None;
                    }
                }
            }
            // Balance over the factor-work proxy. k = 2 satisfies the
            // bound identically (max ≤ total = 2·mean), so whenever the
            // rows floor admits a 2-way cut the loop terminates with a
            // valid plan.
            let works = interior_works(a, &owner, k);
            let mean = works.iter().sum::<f64>() / k as f64;
            let max = works.iter().cloned().fold(0.0f64, f64::max);
            if mean > 0.0 && max / mean > BALANCE_BOUND {
                continue;
            }
            let mut pieces: Vec<Vec<usize>> = vec![Vec::new(); k];
            let mut interface = Vec::new();
            for (row, &o) in owner.iter().enumerate() {
                if o == INTERFACE {
                    interface.push(row);
                } else {
                    pieces[o].push(row);
                }
            }
            return Some(Self::from_partition(a, pieces, interface, true));
        }
        None
    }

    /// Graph route: BFS level-structure bisection of the largest piece
    /// until the count and the balance bound hold, then a floor-respecting
    /// merge of the smallest pieces.
    fn build_graph(a: &CsrMatrix, shards: usize) -> Self {
        let n = a.nrows();
        // Generation-stamped BFS scratch, shared by the component splits
        // and the separator bisections.
        let mut stamp = vec![0u32; n];
        let mut level = vec![0u32; n];
        let mut generation = 0u32;
        let mut queue = VecDeque::new();

        // Connected components of the full graph are the initial pieces.
        let mut pieces: Vec<Vec<usize>> = Vec::new();
        let everything: Vec<usize> = (0..n).collect();
        split_components(
            a,
            &everything,
            &mut stamp,
            &mut generation,
            &mut queue,
            |comp| pieces.push(comp),
        );

        // Bisect the largest splittable piece until `shards` pieces exist
        // AND the largest remaining piece is within the balance bound of
        // the mean (row-count proxy: `largest · shards ≤ 2 · interior`).
        // Pieces that refuse to split (too small / no separator) move to
        // `done` so the loop never retries them.
        let mut interface: Vec<usize> = Vec::new();
        let mut done: Vec<Vec<usize>> = Vec::new();
        while !pieces.is_empty() {
            let largest = (0..pieces.len())
                .max_by_key(|&i| (pieces[i].len(), std::cmp::Reverse(pieces[i][0])))
                .expect("non-empty piece list");
            let interior: usize = pieces.iter().chain(done.iter()).map(Vec::len).sum();
            let need_more = pieces.len() + done.len() < shards;
            let oversized =
                (pieces[largest].len() * shards) as f64 > interior as f64 * BALANCE_BOUND;
            if !need_more && !oversized {
                break;
            }
            let piece = pieces.swap_remove(largest);
            let split = if piece.len() < MIN_SPLIT {
                None
            } else {
                split_piece(
                    a,
                    &piece,
                    &mut stamp,
                    &mut level,
                    &mut generation,
                    &mut queue,
                )
            };
            let Some(PieceSplit { below, sep, above }) = split else {
                done.push(piece);
                continue;
            };
            interface.extend_from_slice(&sep);
            // Removing the separator can fragment a half: each connected
            // component becomes its own piece (the merge pass below
            // re-coarsens if that overshoots the requested count).
            for half in [below, above] {
                split_components(a, &half, &mut stamp, &mut generation, &mut queue, |comp| {
                    if !comp.is_empty() {
                        pieces.push(comp)
                    }
                });
            }
        }
        pieces.extend(done);
        pieces.retain(|p| !p.is_empty());
        if pieces.is_empty() {
            return Self::single(a);
        }

        // Merge the two smallest pieces (ties broken by smallest member,
        // so the pairing is deterministic) until at most `shards` remain
        // AND no piece is below the rows floor — a min-heap keyed by
        // `(len, min member)`, O(P log P) overall. Merging is safe because
        // distinct pieces are never adjacent (every separator went to the
        // interface in full), so a merged piece is still
        // interior-decoupled from every other shard.
        if pieces.len() > 1 {
            use std::cmp::Reverse;
            let mut heap: std::collections::BinaryHeap<Reverse<(usize, usize, usize)>> = pieces
                .iter()
                .enumerate()
                .map(|(slot, p)| Reverse((p.len(), *p.iter().min().expect("non-empty"), slot)))
                .collect();
            let mut slots: Vec<Vec<usize>> = std::mem::take(&mut pieces);
            while heap.len() > 1 {
                let &Reverse((smallest, _, _)) = heap.peek().expect("heap non-empty");
                if heap.len() <= shards && smallest >= Self::MIN_SHARD_ROWS {
                    break;
                }
                let Reverse((len_a, first_a, slot_a)) = heap.pop().expect("len > 1");
                let Reverse((len_b, first_b, slot_b)) = heap.pop().expect("len > 1");
                let absorbed = std::mem::take(&mut slots[slot_b]);
                slots[slot_a].extend_from_slice(&absorbed);
                heap.push(Reverse((len_a + len_b, first_a.min(first_b), slot_a)));
            }
            pieces = slots.into_iter().filter(|p| !p.is_empty()).collect();
        }
        Self::from_partition(a, pieces, interface, false)
    }

    /// Canonicalizes a raw interior/interface partition (sorted members,
    /// shards ordered by smallest row), rebuilds the owner map, checks the
    /// structural invariants, and computes the plan stats.
    fn from_partition(
        a: &CsrMatrix,
        mut pieces: Vec<Vec<usize>>,
        mut interface: Vec<usize>,
        geometric: bool,
    ) -> Self {
        let n = a.nrows();
        for piece in &mut pieces {
            piece.sort_unstable();
        }
        pieces.sort_unstable_by_key(|p| p[0]);
        interface.sort_unstable();
        let mut owner = vec![INTERFACE; n];
        for (k, piece) in pieces.iter().enumerate() {
            for &v in piece {
                owner[v] = k;
            }
        }
        debug_assert!(
            {
                let assigned = pieces.iter().map(Vec::len).sum::<usize>() + interface.len();
                assigned == n
            },
            "shard plan must cover every row exactly once"
        );
        debug_assert!(
            (0..n).all(|v| {
                a.row(v).0.iter().all(|&w| {
                    owner[v] == owner[w] || owner[v] == INTERFACE || owner[w] == INTERFACE
                })
            }),
            "no edge may couple two different shards directly"
        );
        let stats = compute_stats(a, &pieces, interface.len(), &owner, geometric);
        Self {
            shards: pieces,
            interface,
            owner,
            stats,
        }
    }

    /// The trivial one-shard plan (everything interior, empty interface).
    fn single(a: &CsrMatrix) -> Self {
        let n = a.nrows();
        let pieces = vec![(0..n).collect::<Vec<usize>>()];
        let owner = vec![0; n];
        let stats = compute_stats(a, &pieces, 0, &owner, false);
        Self {
            shards: pieces,
            interface: Vec::new(),
            owner,
            stats,
        }
    }

    /// Dimension of the partitioned operator.
    pub fn num_rows(&self) -> usize {
        self.owner.len()
    }

    /// Number of interior shards actually produced (≤ the requested count,
    /// ≥ 1 for non-empty operators).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sorted interior row indices of shard `k`.
    pub fn shard_rows(&self, k: usize) -> &[usize] {
        &self.shards[k]
    }

    /// Sorted interface row indices (empty for a single-shard plan).
    pub fn interface(&self) -> &[usize] {
        &self.interface
    }

    /// The shard owning `row`, or `None` for interface rows.
    pub fn owner(&self, row: usize) -> Option<usize> {
        match self.owner[row] {
            INTERFACE => None,
            k => Some(k),
        }
    }

    /// Quality accounting of this plan (balance, interface share, route).
    pub fn stats(&self) -> ShardPlanStats {
        self.stats
    }
}

/// Per-shard estimated factor work: `Σ_rows (interior degree)²`, the flop
/// proxy for eliminating each row against its own shard. `owner` may be in
/// any shard numbering with `k` shards; interface rows contribute nothing.
fn interior_works(a: &CsrMatrix, owner: &[usize], k: usize) -> Vec<f64> {
    let mut works = vec![0.0f64; k];
    for (v, &o) in owner.iter().enumerate() {
        if o == INTERFACE {
            continue;
        }
        let deg = a.row(v).0.iter().filter(|&&w| owner[w] == o).count();
        works[o] += (deg * deg) as f64;
    }
    works
}

/// Derives [`ShardPlanStats`] for a canonical partition.
fn compute_stats(
    a: &CsrMatrix,
    shards: &[Vec<usize>],
    interface_dofs: usize,
    owner: &[usize],
    geometric: bool,
) -> ShardPlanStats {
    let n = owner.len();
    let k = shards.len().max(1);
    let works = interior_works(a, owner, k);
    let max_shard_work = works.iter().cloned().fold(0.0f64, f64::max);
    let mean_shard_work = works.iter().sum::<f64>() / k as f64;
    let balance_ratio = if mean_shard_work > 0.0 {
        max_shard_work / mean_shard_work
    } else {
        1.0
    };
    ShardPlanStats {
        shards: shards.len(),
        interface_dofs,
        interface_fraction: if n > 0 {
            interface_dofs as f64 / n as f64
        } else {
            0.0
        },
        min_shard_rows: shards.iter().map(Vec::len).min().unwrap_or(0),
        max_shard_rows: shards.iter().map(Vec::len).max().unwrap_or(0),
        max_shard_work,
        mean_shard_work,
        balance_ratio,
        geometric,
    }
}

impl MemoryFootprint for ShardPlan {
    fn heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(MemoryFootprint::heap_bytes)
            .sum::<usize>()
            + self.interface.heap_bytes()
            + self.owner.heap_bytes()
    }
}

/// Invokes `emit` once per connected component of `half` (a vertex subset
/// whose adjacency is restricted to itself).
fn split_components(
    a: &CsrMatrix,
    half: &[usize],
    stamp: &mut [u32],
    generation: &mut u32,
    queue: &mut VecDeque<usize>,
    mut emit: impl FnMut(Vec<usize>),
) {
    if half.is_empty() {
        return;
    }
    *generation += 1;
    let in_half = *generation;
    for &v in half {
        stamp[v] = in_half;
    }
    *generation += 1;
    let claimed = *generation;
    for &v in half {
        if stamp[v] != in_half {
            continue;
        }
        let mut comp = Vec::new();
        queue.clear();
        queue.push_back(v);
        stamp[v] = claimed;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &w in a.row(u).0 {
                if w != u && stamp[w] == in_half {
                    stamp[w] = claimed;
                    queue.push_back(w);
                }
            }
        }
        emit(comp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_operators::laplacian_2d;
    use crate::CooMatrix;

    fn check_invariants(a: &CsrMatrix, plan: &ShardPlan) {
        let n = a.nrows();
        // Exact cover.
        let mut seen = vec![0usize; n];
        for k in 0..plan.num_shards() {
            assert!(!plan.shard_rows(k).is_empty(), "empty shard {k}");
            for w in plan.shard_rows(k).windows(2) {
                assert!(w[0] < w[1], "shard rows must be sorted unique");
            }
            for &v in plan.shard_rows(k) {
                seen[v] += 1;
                assert_eq!(plan.owner(v), Some(k));
            }
        }
        for &v in plan.interface() {
            seen[v] += 1;
            assert_eq!(plan.owner(v), None);
        }
        assert!(seen.iter().all(|&c| c == 1), "rows covered exactly once");
        // No direct inter-shard coupling.
        for v in 0..n {
            for &w in a.row(v).0 {
                let (ov, ow) = (plan.owner(v), plan.owner(w));
                assert!(
                    ov == ow || ov.is_none() || ow.is_none(),
                    "edge ({v},{w}) couples shards {ov:?} and {ow:?}"
                );
            }
        }
        // The rows floor: multi-shard plans never carry near-empty shards.
        let stats = plan.stats();
        assert_eq!(stats.shards, plan.num_shards());
        assert_eq!(stats.interface_dofs, plan.interface().len());
        if plan.num_shards() >= 2 {
            assert!(
                stats.min_shard_rows >= ShardPlan::MIN_SHARD_ROWS,
                "shard below the rows floor: {}",
                stats.min_shard_rows
            );
        }
    }

    /// A `(bx·m+1) × (by·m+1)` point grid with 5-point-stencil coupling,
    /// tagged with the block spans of a `bx × by` block grid of `m×m`-cell
    /// blocks. Neighboring points always share a block, so the hint is
    /// consistent with the sparsity — the shape of the reduced global
    /// operator with one DoF per surface node.
    fn hinted_grid(bx: usize, by: usize, m: usize) -> (CsrMatrix, PartitionHint) {
        let (nx, ny) = (bx * m + 1, by * m + 1);
        let idx = |x: usize, y: usize| y * nx + x;
        let span1 = |c: usize, blocks: usize| -> [usize; 2] {
            if c.is_multiple_of(m) {
                let plane = c / m;
                [plane.saturating_sub(1), plane.min(blocks - 1)]
            } else {
                [c / m, c / m]
            }
        };
        let mut coo = CooMatrix::new(nx * ny, nx * ny);
        let mut spans = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                let v = idx(x, y);
                coo.push(v, v, 4.0);
                if x + 1 < nx {
                    coo.push(v, idx(x + 1, y), -1.0);
                    coo.push(idx(x + 1, y), v, -1.0);
                }
                if y + 1 < ny {
                    coo.push(v, idx(x, y + 1), -1.0);
                    coo.push(idx(x, y + 1), v, -1.0);
                }
                let sx = span1(x, bx);
                let sy = span1(y, by);
                spans.push([sx[0], sx[1], sy[0], sy[1]]);
            }
        }
        (coo.to_csr(), PartitionHint::new([bx, by], spans))
    }

    #[test]
    fn plan_partitions_a_lattice() {
        let a = laplacian_2d(24, 24);
        for k in [2usize, 3, 4, 7] {
            let plan = ShardPlan::build(&a, k);
            assert!(plan.num_shards() >= 2, "lattice must split for k={k}");
            assert!(plan.num_shards() <= k);
            assert!(!plan.interface().is_empty());
            assert!(!plan.stats().geometric);
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn geometric_route_partitions_a_hinted_grid() {
        let (a, hint) = hinted_grid(4, 4, 4);
        let plan = ShardPlan::build_hinted(&a, 4, Some(&hint));
        check_invariants(&a, &plan);
        let stats = plan.stats();
        assert!(stats.geometric, "hinted grid must take the geometric route");
        assert_eq!(stats.shards, 4);
        // 17×17 points, quadrant cut along x=8 and y=8: the two seam lines
        // (33 points) are the interface, each quadrant holds 8×8 interiors.
        assert_eq!(stats.interface_dofs, 33);
        assert_eq!(stats.min_shard_rows, 64);
        assert_eq!(stats.max_shard_rows, 64);
        assert!(stats.balance_ratio <= BALANCE_BOUND);
        assert!((stats.balance_ratio - 1.0).abs() < 0.2, "quadrants balance");
    }

    #[test]
    fn hinted_plans_are_deterministic() {
        let (a, hint) = hinted_grid(3, 4, 4);
        let p1 = ShardPlan::build_hinted(&a, 4, Some(&hint));
        let p2 = ShardPlan::build_hinted(&a, 4, Some(&hint));
        assert_eq!(p1, p2);
        assert_eq!(p1.stats().geometric, p2.stats().geometric);
    }

    #[test]
    fn mismatched_hint_length_falls_back_to_graph() {
        let (a, hint) = hinted_grid(4, 4, 4);
        let short = PartitionHint::new(hint.grid(), vec![[0, 0, 0, 0]; 7]);
        let hinted = ShardPlan::build_hinted(&a, 4, Some(&short));
        let graph = ShardPlan::build(&a, 4);
        assert_eq!(hinted, graph, "bad-length hint must be ignored");
        assert!(!hinted.stats().geometric);
        check_invariants(&a, &hinted);
    }

    #[test]
    fn contradicted_hint_falls_back_to_graph() {
        // Add one long-range edge between opposite corners: the hint now
        // misdescribes the operator (the corners' spans are disjoint), so
        // the geometric plan must be rejected by the sparsity validation.
        let (a, hint) = hinted_grid(4, 4, 4);
        let n = a.nrows();
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            let (cols, vals) = a.row(v);
            for (&c, &x) in cols.iter().zip(vals) {
                coo.push(v, c, x);
            }
        }
        coo.push(0, n - 1, -0.5);
        coo.push(n - 1, 0, -0.5);
        let a = coo.to_csr();
        let plan = ShardPlan::build_hinted(&a, 4, Some(&hint));
        assert!(!plan.stats().geometric, "contradicted hint must be dropped");
        check_invariants(&a, &plan);
    }

    #[test]
    fn single_shard_requests_are_trivial() {
        let a = laplacian_2d(10, 10);
        for k in [0usize, 1] {
            let plan = ShardPlan::build(&a, k);
            assert_eq!(plan.num_shards(), 1);
            assert!(plan.interface().is_empty());
            assert_eq!(plan.stats().interface_dofs, 0);
            assert!((plan.stats().balance_ratio - 1.0).abs() < 1e-12);
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn tiny_operators_stay_monolithic() {
        let a = laplacian_2d(4, 4);
        let plan = ShardPlan::build(&a, 4);
        assert_eq!(plan.num_shards(), 1);
        assert!(plan.interface().is_empty());
        check_invariants(&a, &plan);
    }

    #[test]
    fn disconnected_components_shard_without_interface() {
        // Two disjoint chains: a 2-shard plan needs no separator at all.
        let n = 80;
        let mut coo = CooMatrix::new(n, n);
        for half in 0..2 {
            let base = half * (n / 2);
            for i in 0..n / 2 {
                coo.push(base + i, base + i, 2.0);
                if i + 1 < n / 2 {
                    coo.push(base + i, base + i + 1, -1.0);
                    coo.push(base + i + 1, base + i, -1.0);
                }
            }
        }
        let a = coo.to_csr();
        let plan = ShardPlan::build(&a, 2);
        assert_eq!(plan.num_shards(), 2);
        assert!(plan.interface().is_empty());
        check_invariants(&a, &plan);
    }

    #[test]
    fn merge_pass_respects_the_requested_count() {
        // A star of 5 chains around one hub: splitting fragments into many
        // components; the plan must re-merge down to the request.
        let arms = 5usize;
        let len = 40usize;
        let n = 1 + arms * len;
        let mut coo = CooMatrix::new(n, n);
        coo.push(0, 0, 2.0);
        for arm in 0..arms {
            let base = 1 + arm * len;
            for i in 0..len {
                coo.push(base + i, base + i, 2.0);
                let prev = if i == 0 { 0 } else { base + i - 1 };
                coo.push(base + i, prev, -1.0);
                coo.push(prev, base + i, -1.0);
            }
        }
        let a = coo.to_csr();
        for k in [2usize, 3] {
            let plan = ShardPlan::build(&a, k);
            assert!(plan.num_shards() <= k);
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn graph_route_merges_sub_floor_fragments() {
        // A broom: a long handle whose end vertex fans out into many
        // single-vertex bristles. Separator splits strand the bristles as
        // tiny components; the floor-respecting merge must coalesce them
        // instead of emitting singleton shards.
        let handle = 120usize;
        let bristles = 30usize;
        let n = handle + bristles;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..handle {
            coo.push(i, i, 2.0);
            if i + 1 < handle {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        for b in 0..bristles {
            let v = handle + b;
            coo.push(v, v, 2.0);
            coo.push(v, handle - 1, -1.0);
            coo.push(handle - 1, v, -1.0);
        }
        let a = coo.to_csr();
        for k in [2usize, 4] {
            let plan = ShardPlan::build(&a, k);
            check_invariants(&a, &plan);
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let a = laplacian_2d(30, 20);
        let p1 = ShardPlan::build(&a, 4);
        let p2 = ShardPlan::build(&a, 4);
        assert_eq!(p1.num_shards(), p2.num_shards());
        assert_eq!(p1.interface(), p2.interface());
        for k in 0..p1.num_shards() {
            assert_eq!(p1.shard_rows(k), p2.shard_rows(k));
        }
    }
}
