//! The TSV unit block of the paper (Fig. 2/3): a copper via with dielectric
//! liner centered in a p×p×h silicon cell.

use crate::{Grid1d, HexMesh, MAT_CU, MAT_LINER, MAT_SI};

/// Geometric parameters of the TSV structure (Fig. 2 of the paper).
///
/// All lengths in µm. `d` is the via diameter, `h` the via/substrate height,
/// `t` the liner thickness and `p` the pitch of adjacent TSVs (= the unit
/// block's lateral extent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvGeometry {
    /// Copper via diameter `d` (µm).
    pub diameter: f64,
    /// Via / substrate height `h` (µm).
    pub height: f64,
    /// Dielectric liner thickness `t` (µm).
    pub liner: f64,
    /// TSV pitch `p` (µm) — the unit block is `p × p × h`.
    pub pitch: f64,
}

impl TsvGeometry {
    /// The geometry used throughout the paper's experiments (§5.2):
    /// `d = 5 µm`, `h = 50 µm`, `t = 0.5 µm`, with the given pitch
    /// (the paper tests `p = 15 µm` and `p = 10 µm`).
    pub fn paper_defaults(pitch: f64) -> Self {
        Self {
            diameter: 5.0,
            height: 50.0,
            liner: 0.5,
            pitch,
        }
    }

    /// Outer radius of the liner annulus, `d/2 + t`.
    pub fn liner_outer_radius(&self) -> f64 {
        0.5 * self.diameter + self.liner
    }

    /// Validates the geometry: all lengths positive and the liner annulus
    /// strictly inside the block.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.diameter <= 0.0 || self.height <= 0.0 || self.liner <= 0.0 || self.pitch <= 0.0 {
            return Err("all TSV dimensions must be positive".into());
        }
        if 2.0 * self.liner_outer_radius() >= self.pitch {
            return Err(format!(
                "TSV (d/2 + t = {} µm) does not fit in pitch {} µm",
                self.liner_outer_radius(),
                self.pitch
            ));
        }
        Ok(())
    }
}

/// Mesh resolution of the unit block.
///
/// The lateral grids are graded: a fine uniform band covers the via + liner
/// annulus, coarser uniform cells cover the outer silicon. The paper meshes
/// this block with Gmsh; the graded structured grid plays the same role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockResolution {
    /// Cells across the refinement band (covers the via and liner).
    pub band_cells: usize,
    /// Cells on each outer silicon segment (per side).
    pub outer_cells: usize,
    /// Cells along the via axis (z).
    pub z_cells: usize,
}

impl BlockResolution {
    /// Coarse resolution for unit tests: a few hundred elements.
    pub fn coarse() -> Self {
        Self {
            band_cells: 6,
            outer_cells: 2,
            z_cells: 4,
        }
    }

    /// Default resolution used by the examples and scaled-down benchmarks.
    pub fn medium() -> Self {
        Self {
            band_cells: 12,
            outer_cells: 3,
            z_cells: 8,
        }
    }

    /// Fine resolution approaching the paper's per-block DoF counts.
    pub fn fine() -> Self {
        Self {
            band_cells: 20,
            outer_cells: 5,
            z_cells: 14,
        }
    }

    /// Lateral cells per axis.
    pub fn lateral_cells(&self) -> usize {
        self.band_cells + 2 * self.outer_cells
    }
}

/// The graded lateral grid of a unit block on `[0, pitch]`.
///
/// Exposed separately so array meshes can tile the identical grid, which
/// guarantees that the reference (full-FEM) discretization of an array is
/// the exact union of unit-block discretizations.
pub fn unit_block_grid(geom: &TsvGeometry, res: &BlockResolution) -> Grid1d {
    let c = 0.5 * geom.pitch;
    // The refinement band extends one liner thickness beyond the liner.
    let r_band = geom.liner_outer_radius() + geom.liner;
    let r_band = r_band.min(0.45 * geom.pitch); // keep the band inside the block
    Grid1d::with_refined_band(
        0.0,
        geom.pitch,
        c - r_band,
        c + r_band,
        res.outer_cells,
        res.band_cells,
    )
}

/// Meshes one TSV unit block (`with_tsv = true`) or a *dummy* pure-silicon
/// block of identical dimensions and grid (`with_tsv = false`, §4.4 of the
/// paper).
///
/// Materials are assigned per element centroid radius: Cu inside `d/2`,
/// liner inside `d/2 + t`, silicon outside (staircase approximation of the
/// cylinder).
///
/// # Panics
///
/// Panics if the geometry is invalid (see [`TsvGeometry::validate`]).
pub fn unit_block_mesh(geom: &TsvGeometry, res: &BlockResolution, with_tsv: bool) -> HexMesh {
    geom.validate().expect("invalid TSV geometry");
    let lateral = unit_block_grid(geom, res);
    let zgrid = Grid1d::uniform(0.0, geom.height, res.z_cells);
    let c = 0.5 * geom.pitch;
    let r_cu = 0.5 * geom.diameter;
    let r_liner = geom.liner_outer_radius();
    HexMesh::from_grids(lateral.clone(), lateral, zgrid, move |p| {
        if !with_tsv {
            return Some(MAT_SI);
        }
        let r = ((p[0] - c).powi(2) + (p[1] - c).powi(2)).sqrt();
        Some(if r < r_cu {
            MAT_CU
        } else if r < r_liner {
            MAT_LINER
        } else {
            MAT_SI
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        for pitch in [15.0, 10.0] {
            let g = TsvGeometry::paper_defaults(pitch);
            assert!(g.validate().is_ok());
            assert_eq!(g.liner_outer_radius(), 3.0);
        }
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = TsvGeometry::paper_defaults(15.0);
        g.pitch = 5.0; // 2*(d/2+t) = 6 > 5
        assert!(g.validate().is_err());
        g = TsvGeometry::paper_defaults(15.0);
        g.liner = -1.0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn block_mesh_has_all_materials_and_correct_extent() {
        let geom = TsvGeometry::paper_defaults(15.0);
        let m = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
        let (lo, hi) = m.bounding_box();
        assert_eq!(lo, [0.0, 0.0, 0.0]);
        assert_eq!(hi, [15.0, 15.0, 50.0]);
        let mut seen = std::collections::BTreeSet::new();
        for e in 0..m.num_elems() {
            seen.insert(m.material(e));
        }
        assert!(seen.contains(&MAT_CU));
        assert!(seen.contains(&MAT_LINER));
        assert!(seen.contains(&MAT_SI));
    }

    #[test]
    fn dummy_block_is_pure_silicon_on_same_grid() {
        let geom = TsvGeometry::paper_defaults(10.0);
        let res = BlockResolution::coarse();
        let tsv = unit_block_mesh(&geom, &res, true);
        let dummy = unit_block_mesh(&geom, &res, false);
        assert_eq!(tsv.num_nodes(), dummy.num_nodes());
        assert_eq!(tsv.num_elems(), dummy.num_elems());
        assert!((0..dummy.num_elems()).all(|e| dummy.material(e) == MAT_SI));
        // Identical node coordinates: same grid.
        for (a, b) in tsv.nodes().iter().zip(dummy.nodes()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cu_volume_approximates_cylinder() {
        let geom = TsvGeometry::paper_defaults(15.0);
        let m = unit_block_mesh(&geom, &BlockResolution::fine(), true);
        let mut v_cu = 0.0;
        for e in 0..m.num_elems() {
            if m.material(e) == MAT_CU {
                let c = m.elem_corners(e);
                let dv = (c[1][0] - c[0][0]) * (c[3][1] - c[0][1]) * (c[4][2] - c[0][2]);
                v_cu += dv;
            }
        }
        let exact = std::f64::consts::PI * 2.5_f64.powi(2) * 50.0;
        let rel = (v_cu - exact).abs() / exact;
        assert!(rel < 0.15, "staircase Cu volume off by {rel}");
    }
}
