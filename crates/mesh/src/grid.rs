//! Graded 1-D grids used to build tensor-product hex meshes.

/// A strictly increasing sequence of grid planes along one axis.
///
/// # Example
///
/// ```
/// use morestress_mesh::Grid1d;
///
/// let g = Grid1d::uniform(0.0, 10.0, 5);
/// assert_eq!(g.num_cells(), 5);
/// assert_eq!(g.points()[2], 4.0);
/// let tiled = g.tile(3);
/// assert_eq!(tiled.num_cells(), 15);
/// assert_eq!(*tiled.points().last().unwrap(), 30.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid1d {
    points: Vec<f64>,
}

impl Grid1d {
    /// Builds a grid from explicit points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or they are not strictly
    /// increasing.
    pub fn from_points(points: Vec<f64>) -> Self {
        assert!(points.len() >= 2, "a grid needs at least two points");
        for w in points.windows(2) {
            assert!(w[0] < w[1], "grid points must be strictly increasing");
        }
        Self { points }
    }

    /// Uniform grid with `cells` cells on `[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0` or `b <= a`.
    pub fn uniform(a: f64, b: f64, cells: usize) -> Self {
        assert!(cells > 0, "need at least one cell");
        assert!(b > a, "interval must be non-degenerate");
        let h = (b - a) / cells as f64;
        let mut points: Vec<f64> = (0..=cells).map(|i| a + h * i as f64).collect();
        // Pin the endpoints exactly so tiled grids share coordinates.
        points[0] = a;
        *points.last_mut().expect("non-empty") = b;
        Self { points }
    }

    /// A grid on `[a, b]` refined inside the band `[b_lo, b_hi]`:
    /// `outer_cells` uniform cells on each outer segment, `band_cells`
    /// uniform (finer) cells inside the band. Used to resolve the thin TSV
    /// liner without meshing the whole block at liner resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `a < b_lo < b_hi < b` and both cell counts are nonzero.
    pub fn with_refined_band(
        a: f64,
        b: f64,
        b_lo: f64,
        b_hi: f64,
        outer_cells: usize,
        band_cells: usize,
    ) -> Self {
        assert!(
            a < b_lo && b_lo < b_hi && b_hi < b,
            "band must be strictly inside the interval"
        );
        assert!(
            outer_cells > 0 && band_cells > 0,
            "cell counts must be nonzero"
        );
        let mut points = Vec::with_capacity(2 * outer_cells + band_cells + 1);
        let left = Grid1d::uniform(a, b_lo, outer_cells);
        let mid = Grid1d::uniform(b_lo, b_hi, band_cells);
        let right = Grid1d::uniform(b_hi, b, outer_cells);
        points.extend_from_slice(left.points());
        points.extend_from_slice(&mid.points()[1..]);
        points.extend_from_slice(&right.points()[1..]);
        Self { points }
    }

    /// The grid points.
    #[inline]
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Number of cells (`points().len() - 1`).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.points.len() - 1
    }

    /// First point.
    #[inline]
    pub fn start(&self) -> f64 {
        self.points[0]
    }

    /// Last point.
    #[inline]
    pub fn end(&self) -> f64 {
        *self.points.last().expect("grids are non-empty")
    }

    /// Length of the covered interval.
    #[inline]
    pub fn length(&self) -> f64 {
        self.end() - self.start()
    }

    /// Tiles the grid `n` times end to end (shared interior endpoints), so a
    /// per-block grid becomes the grid of a row of `n` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn tile(&self, n: usize) -> Grid1d {
        assert!(n > 0, "tile count must be nonzero");
        let len = self.length();
        let mut points = Vec::with_capacity(self.num_cells() * n + 1);
        points.push(self.start());
        for block in 0..n {
            let offset = self.start() + len * block as f64 - self.start();
            for &p in &self.points[1..] {
                points.push(p + offset);
            }
        }
        Grid1d::from_points(points)
    }

    /// Shifts all points by `delta`.
    pub fn shifted(&self, delta: f64) -> Grid1d {
        Grid1d::from_points(self.points.iter().map(|p| p + delta).collect())
    }

    /// Index of the cell containing `x`, clamped to the valid range (so
    /// points outside the grid map to the first/last cell).
    pub fn locate(&self, x: f64) -> usize {
        let n = self.num_cells();
        let idx = self.points.partition_point(|&p| p <= x);
        idx.saturating_sub(1).min(n - 1)
    }

    /// Maps `x` to `(cell, xi)` with `xi ∈ [-1, 1]` the reference coordinate
    /// inside the (clamped) containing cell.
    pub fn locate_ref(&self, x: f64) -> (usize, f64) {
        let c = self.locate(x);
        let x0 = self.points[c];
        let x1 = self.points[c + 1];
        (c, 2.0 * (x - x0) / (x1 - x0) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_points() {
        let g = Grid1d::uniform(1.0, 3.0, 4);
        assert_eq!(g.points(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(g.num_cells(), 4);
        assert_eq!(g.length(), 2.0);
    }

    #[test]
    fn refined_band_is_finer_inside() {
        let g = Grid1d::with_refined_band(0.0, 15.0, 4.0, 11.0, 3, 14);
        // Band cell width: 7/14 = 0.5; outer: 4/3 ≈ 1.33.
        let pts = g.points();
        let band_width = pts
            .windows(2)
            .filter(|w| w[0] >= 4.0 - 1e-12 && w[1] <= 11.0 + 1e-12)
            .map(|w| w[1] - w[0])
            .fold(f64::NAN, f64::max);
        assert!((band_width - 0.5).abs() < 1e-12);
        assert_eq!(g.num_cells(), 3 + 14 + 3);
    }

    #[test]
    fn tiling_shares_endpoints() {
        let g = Grid1d::uniform(0.0, 2.0, 2).tile(3);
        assert_eq!(g.points(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn locate_and_reference_coordinates() {
        let g = Grid1d::uniform(0.0, 4.0, 4);
        assert_eq!(g.locate(0.5), 0);
        assert_eq!(g.locate(3.999), 3);
        assert_eq!(g.locate(4.0), 3); // clamped at the end
        assert_eq!(g.locate(-1.0), 0); // clamped at the start
        let (c, xi) = g.locate_ref(2.5);
        assert_eq!(c, 2);
        assert!((xi - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_points_rejected() {
        let _ = Grid1d::from_points(vec![0.0, 1.0, 1.0]);
    }
}
