//! Structured 8-node hexahedral meshes with optional void cells.

use crate::Grid1d;

/// Identifier of a material region; the id → elastic-constants mapping lives
/// with the FEM layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MaterialId(pub u16);

impl std::fmt::Display for MaterialId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mat{}", self.0)
    }
}

/// An 8-node hexahedral mesh on a tensor-product lattice.
///
/// Cells may be *void* (absent), which is how the chiplet stack represents
/// the region outside a die footprint. Nodes that touch no live cell are
/// compacted away.
///
/// Local node ordering of each element follows the usual isoparametric
/// convention: nodes 0–3 are the ζ=-1 face counterclockwise starting at
/// (ξ,η)=(-1,-1), nodes 4–7 the ζ=+1 face in the same order.
#[derive(Debug, Clone)]
pub struct HexMesh {
    xs: Grid1d,
    ys: Grid1d,
    zs: Grid1d,
    nodes: Vec<[f64; 3]>,
    elems: Vec<[usize; 8]>,
    mats: Vec<MaterialId>,
    /// lattice node index -> compact node id (usize::MAX for dropped nodes)
    node_of_lattice: Vec<usize>,
    /// compact node id -> lattice (i, j, k)
    lattice_of_node: Vec<[usize; 3]>,
    /// lattice cell index -> element id (usize::MAX for void cells)
    elem_of_cell: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl HexMesh {
    /// Builds a mesh over the tensor grid `xs × ys × zs`. For every cell,
    /// `classify` receives the cell centroid and returns `Some(material)` to
    /// keep the cell or `None` to leave it void.
    ///
    /// # Panics
    ///
    /// Panics if every cell is void.
    pub fn from_grids<F>(xs: Grid1d, ys: Grid1d, zs: Grid1d, classify: F) -> Self
    where
        F: Fn([f64; 3]) -> Option<MaterialId>,
    {
        let (ncx, ncy, ncz) = (xs.num_cells(), ys.num_cells(), zs.num_cells());
        let (npx, npy) = (ncx + 1, ncy + 1);
        let lat_node = |i: usize, j: usize, k: usize| (k * npy + j) * npx + i;

        let mut mats_by_cell: Vec<Option<MaterialId>> = Vec::with_capacity(ncx * ncy * ncz);
        for k in 0..ncz {
            let zc = 0.5 * (zs.points()[k] + zs.points()[k + 1]);
            for j in 0..ncy {
                let yc = 0.5 * (ys.points()[j] + ys.points()[j + 1]);
                for i in 0..ncx {
                    let xc = 0.5 * (xs.points()[i] + xs.points()[i + 1]);
                    mats_by_cell.push(classify([xc, yc, zc]));
                }
            }
        }
        assert!(
            mats_by_cell.iter().any(Option::is_some),
            "mesh must contain at least one live cell"
        );

        let num_lat_nodes = npx * npy * (ncz + 1);
        let mut node_of_lattice = vec![ABSENT; num_lat_nodes];
        let mut nodes: Vec<[f64; 3]> = Vec::new();
        let mut lattice_of_node: Vec<[usize; 3]> = Vec::new();
        let mut elems: Vec<[usize; 8]> = Vec::new();
        let mut mats: Vec<MaterialId> = Vec::new();
        let mut elem_of_cell = vec![ABSENT; ncx * ncy * ncz];

        let touch = |node_of_lattice: &mut Vec<usize>,
                     nodes: &mut Vec<[f64; 3]>,
                     lattice_of_node: &mut Vec<[usize; 3]>,
                     i: usize,
                     j: usize,
                     k: usize|
         -> usize {
            let lat = lat_node(i, j, k);
            if node_of_lattice[lat] == ABSENT {
                node_of_lattice[lat] = nodes.len();
                nodes.push([xs.points()[i], ys.points()[j], zs.points()[k]]);
                lattice_of_node.push([i, j, k]);
            }
            node_of_lattice[lat]
        };

        for k in 0..ncz {
            for j in 0..ncy {
                for i in 0..ncx {
                    let cell = (k * ncy + j) * ncx + i;
                    let Some(mat) = mats_by_cell[cell] else {
                        continue;
                    };
                    let conn = [
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i,
                            j,
                            k,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i + 1,
                            j,
                            k,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i + 1,
                            j + 1,
                            k,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i,
                            j + 1,
                            k,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i,
                            j,
                            k + 1,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i + 1,
                            j,
                            k + 1,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i + 1,
                            j + 1,
                            k + 1,
                        ),
                        touch(
                            &mut node_of_lattice,
                            &mut nodes,
                            &mut lattice_of_node,
                            i,
                            j + 1,
                            k + 1,
                        ),
                    ];
                    elem_of_cell[cell] = elems.len();
                    elems.push(conn);
                    mats.push(mat);
                }
            }
        }

        Self {
            xs,
            ys,
            zs,
            nodes,
            elems,
            mats,
            node_of_lattice,
            lattice_of_node,
            elem_of_cell,
        }
    }

    /// Number of (compacted) nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live elements.
    #[inline]
    pub fn num_elems(&self) -> usize {
        self.elems.len()
    }

    /// Node coordinates.
    #[inline]
    pub fn nodes(&self) -> &[[f64; 3]] {
        &self.nodes
    }

    /// Element connectivity (8 node ids per element).
    #[inline]
    pub fn elems(&self) -> &[[usize; 8]] {
        &self.elems
    }

    /// Material of element `e`.
    #[inline]
    pub fn material(&self, e: usize) -> MaterialId {
        self.mats[e]
    }

    /// The x/y/z grids the mesh was built from.
    pub fn grids(&self) -> (&Grid1d, &Grid1d, &Grid1d) {
        (&self.xs, &self.ys, &self.zs)
    }

    /// The corner positions `(min, max)` of the lattice bounding box.
    pub fn bounding_box(&self) -> ([f64; 3], [f64; 3]) {
        (
            [self.xs.start(), self.ys.start(), self.zs.start()],
            [self.xs.end(), self.ys.end(), self.zs.end()],
        )
    }

    /// Node counts of the lattice `(npx, npy, npz)`.
    pub fn lattice_dims(&self) -> (usize, usize, usize) {
        (
            self.xs.num_cells() + 1,
            self.ys.num_cells() + 1,
            self.zs.num_cells() + 1,
        )
    }

    /// Compact node id at lattice position `(i, j, k)`, or `None` if the
    /// node was compacted away (void region).
    pub fn lattice_node(&self, i: usize, j: usize, k: usize) -> Option<usize> {
        let (npx, npy, npz) = self.lattice_dims();
        if i >= npx || j >= npy || k >= npz {
            return None;
        }
        match self.node_of_lattice[(k * npy + j) * npx + i] {
            ABSENT => None,
            id => Some(id),
        }
    }

    /// Lattice position of compact node `n`.
    pub fn node_lattice(&self, n: usize) -> [usize; 3] {
        self.lattice_of_node[n]
    }

    /// The 8 corner coordinates of element `e` in local node order.
    pub fn elem_corners(&self, e: usize) -> [[f64; 3]; 8] {
        let conn = &self.elems[e];
        std::array::from_fn(|a| self.nodes[conn[a]])
    }

    /// Locates the element containing point `p` (clamped to the mesh
    /// bounding box) and its reference coordinates `(ξ,η,ζ) ∈ [-1,1]³`.
    /// Returns `None` if the containing cell is void.
    pub fn locate(&self, p: [f64; 3]) -> Option<(usize, [f64; 3])> {
        let (ci, xi) = self.xs.locate_ref(p[0]);
        let (cj, eta) = self.ys.locate_ref(p[1]);
        let (ck, zeta) = self.zs.locate_ref(p[2]);
        let (ncx, ncy) = (self.xs.num_cells(), self.ys.num_cells());
        let cell = (ck * ncy + cj) * ncx + ci;
        match self.elem_of_cell[cell] {
            ABSENT => None,
            e => Some((e, [xi, eta, zeta])),
        }
    }

    /// All node ids whose lattice position lies on the outer boundary of the
    /// lattice box (any of the 6 faces). For meshes without voids this is the
    /// geometric surface of the cuboid.
    pub fn boundary_box_nodes(&self) -> Vec<usize> {
        let (npx, npy, npz) = self.lattice_dims();
        (0..self.num_nodes())
            .filter(|&n| {
                let [i, j, k] = self.lattice_of_node[n];
                i == 0 || i == npx - 1 || j == 0 || j == npy - 1 || k == 0 || k == npz - 1
            })
            .collect()
    }

    /// Node ids on the lattice plane `axis = index` (axis 0 = x, 1 = y,
    /// 2 = z). `index` counts lattice planes, e.g. `0` or `npz - 1` for the
    /// bottom/top z planes.
    pub fn plane_nodes(&self, axis: usize, index: usize) -> Vec<usize> {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        (0..self.num_nodes())
            .filter(|&n| self.lattice_of_node[n][axis] == index)
            .collect()
    }

    /// Per-node adjacency (node → sorted unique neighbor nodes, self
    /// included): the sparsity pattern of any nodal FEM operator on this
    /// mesh.
    pub fn node_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.num_nodes()];
        for conn in &self.elems {
            for &a in conn {
                for &b in conn {
                    adj[a].push(b);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Total volume of live cells (sum of cell box volumes).
    pub fn volume(&self) -> f64 {
        let mut v = 0.0;
        for e in 0..self.num_elems() {
            let c = self.elem_corners(e);
            let dx = c[1][0] - c[0][0];
            let dy = c[3][1] - c[0][1];
            let dz = c[4][2] - c[0][2];
            v += dx * dy * dz;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_mesh(n: usize) -> HexMesh {
        let g = Grid1d::uniform(0.0, 1.0, n);
        HexMesh::from_grids(g.clone(), g.clone(), g, |_| Some(MaterialId(0)))
    }

    #[test]
    fn cube_counts() {
        let m = cube_mesh(3);
        assert_eq!(m.num_elems(), 27);
        assert_eq!(m.num_nodes(), 64);
        assert!((m.volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_ordering_is_isoparametric() {
        let m = cube_mesh(1);
        let c = m.elem_corners(0);
        // Node 0 at origin, node 1 along +x, node 3 along +y, node 4 along +z.
        assert_eq!(c[0], [0.0, 0.0, 0.0]);
        assert_eq!(c[1], [1.0, 0.0, 0.0]);
        assert_eq!(c[3], [0.0, 1.0, 0.0]);
        assert_eq!(c[4], [0.0, 0.0, 1.0]);
        assert_eq!(c[6], [1.0, 1.0, 1.0]);
    }

    #[test]
    fn locate_finds_cells_and_reference_coords() {
        let m = cube_mesh(2);
        let (e, xi) = m.locate([0.25, 0.75, 0.25]).unwrap();
        assert!(e < m.num_elems());
        assert!((xi[0] - 0.0).abs() < 1e-12);
        assert!((xi[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn void_cells_are_dropped_and_nodes_compacted() {
        let g = Grid1d::uniform(0.0, 2.0, 2);
        // Keep only the lower-left column of cells (x < 1).
        let m = HexMesh::from_grids(g.clone(), g.clone(), g, |c| {
            (c[0] < 1.0).then_some(MaterialId(7))
        });
        assert_eq!(m.num_elems(), 4);
        // Lattice has 27 nodes; the x=2 plane (9 nodes) must be gone.
        assert_eq!(m.num_nodes(), 18);
        assert!(m.lattice_node(2, 0, 0).is_none());
        assert!(m.lattice_node(1, 2, 2).is_some());
        assert!(m.locate([1.5, 0.5, 0.5]).is_none());
    }

    #[test]
    fn boundary_and_plane_queries() {
        let m = cube_mesh(2);
        let boundary = m.boundary_box_nodes();
        assert_eq!(boundary.len(), 26); // 27 lattice nodes minus the center
        let bottom = m.plane_nodes(2, 0);
        assert_eq!(bottom.len(), 9);
        for n in bottom {
            assert_eq!(m.nodes()[n][2], 0.0);
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_reflexive() {
        let m = cube_mesh(2);
        let adj = m.node_adjacency();
        for (a, list) in adj.iter().enumerate() {
            assert!(list.binary_search(&a).is_ok(), "self-adjacency");
            for &b in list {
                assert!(adj[b].binary_search(&a).is_ok(), "symmetry");
            }
        }
    }
}
