//! Structured hexahedral meshing for the MORE-Stress simulator.
//!
//! The paper meshes its TSV unit block with Gmsh; this crate replaces that
//! with a structured, graded hexahedral mesher built from scratch:
//!
//! * [`Grid1d`] — graded 1-D grids (uniform segments, refinement bands,
//!   tiling across array blocks).
//! * [`HexMesh`] — an 8-node hexahedral mesh over a tensor-product lattice,
//!   with optional *void* cells (used by the chiplet stack, where the die
//!   footprint is smaller than the substrate), point location, and lattice /
//!   boundary queries.
//! * [`TsvGeometry`] / [`BlockResolution`] / [`unit_block_mesh`] — the TSV
//!   unit block of Fig. 2/3 of the paper: a Cu via with dielectric liner in
//!   a p×p×h silicon cell, materials assigned per element centroid
//!   (staircase approximation of the cylinder).
//! * [`BlockLayout`] / [`array_mesh`] — the full TSV array meshed as one
//!   domain (the "ANSYS" reference discretization), with per-block
//!   [`BlockKind`] so dummy (pure-Si) blocks are supported.
//!
//! # Example
//!
//! ```
//! use morestress_mesh::{unit_block_mesh, BlockResolution, TsvGeometry};
//!
//! let geom = TsvGeometry::paper_defaults(15.0);
//! let mesh = unit_block_mesh(&geom, &BlockResolution::coarse(), true);
//! assert!(mesh.num_elems() > 0);
//! // The mesh contains all three materials: Cu, liner, Si.
//! use morestress_mesh::{MAT_CU, MAT_LINER, MAT_SI};
//! for mat in [MAT_CU, MAT_LINER, MAT_SI] {
//!     assert!((0..mesh.num_elems()).any(|e| mesh.material(e) == mat));
//! }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops over parallel arrays are the FEM idiom

mod array;
mod grid;
mod hex;
mod unit_block;

pub use array::{array_mesh, BlockKind, BlockLayout};
pub use grid::Grid1d;
pub use hex::{HexMesh, MaterialId};
pub use unit_block::{unit_block_grid, unit_block_mesh, BlockResolution, TsvGeometry};

/// Material id of the copper TSV body.
pub const MAT_CU: MaterialId = MaterialId(0);
/// Material id of the dielectric (SiO₂) liner.
pub const MAT_LINER: MaterialId = MaterialId(1);
/// Material id of the silicon substrate.
pub const MAT_SI: MaterialId = MaterialId(2);
/// Material id of the organic package substrate (chiplet model).
pub const MAT_ORGANIC: MaterialId = MaterialId(3);
