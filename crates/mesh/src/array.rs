//! Full TSV-array meshes: the reference ("ANSYS substitute") discretization.

use crate::unit_block::{unit_block_grid, BlockResolution, TsvGeometry};
use crate::{Grid1d, HexMesh, MAT_CU, MAT_LINER, MAT_SI};

/// What occupies one cell of the array layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// A TSV unit block (Cu via + liner in Si).
    Tsv,
    /// A dummy block: pure silicon on the same grid (used as padding for
    /// sub-modeling, §4.4 of the paper).
    Dummy,
}

/// A rectangular layout of unit blocks.
///
/// # Example
///
/// ```
/// use morestress_mesh::{BlockKind, BlockLayout};
///
/// // A 3×3 TSV array padded by one ring of dummy blocks on every side.
/// let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv).padded(1);
/// assert_eq!((layout.nx(), layout.ny()), (5, 5));
/// assert_eq!(layout.kind(0, 0), BlockKind::Dummy);
/// assert_eq!(layout.kind(2, 2), BlockKind::Tsv);
/// assert_eq!(layout.count(BlockKind::Tsv), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLayout {
    nx: usize,
    ny: usize,
    kinds: Vec<BlockKind>,
}

impl BlockLayout {
    /// An `nx × ny` layout filled with one kind.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    pub fn uniform(nx: usize, ny: usize, kind: BlockKind) -> Self {
        assert!(nx > 0 && ny > 0, "layout must be non-empty");
        Self {
            nx,
            ny,
            kinds: vec![kind; nx * ny],
        }
    }

    /// Adds `rings` rings of dummy blocks around the layout (the paper adds
    /// two rows/columns for sub-modeling).
    pub fn padded(&self, rings: usize) -> Self {
        let nx = self.nx + 2 * rings;
        let ny = self.ny + 2 * rings;
        let mut kinds = vec![BlockKind::Dummy; nx * ny];
        for j in 0..self.ny {
            for i in 0..self.nx {
                kinds[(j + rings) * nx + (i + rings)] = self.kind(i, j);
            }
        }
        Self { nx, ny, kinds }
    }

    /// Number of blocks along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of blocks along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Kind of block `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn kind(&self, i: usize, j: usize) -> BlockKind {
        assert!(i < self.nx && j < self.ny, "block index out of range");
        self.kinds[j * self.nx + i]
    }

    /// Sets the kind of block `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set_kind(&mut self, i: usize, j: usize, kind: BlockKind) {
        assert!(i < self.nx && j < self.ny, "block index out of range");
        self.kinds[j * self.nx + i] = kind;
    }

    /// Number of blocks of the given kind.
    pub fn count(&self, kind: BlockKind) -> usize {
        self.kinds.iter().filter(|&&k| k == kind).count()
    }
}

/// Meshes a whole array of unit blocks as a single domain, tiling the exact
/// unit-block grid so the array discretization is the union of per-block
/// discretizations. This is the mesh on which the reference full-FEM
/// ("ANSYS") solution is computed.
///
/// # Panics
///
/// Panics if the geometry is invalid.
pub fn array_mesh(geom: &TsvGeometry, res: &BlockResolution, layout: &BlockLayout) -> HexMesh {
    geom.validate().expect("invalid TSV geometry");
    let block_grid = unit_block_grid(geom, res);
    let xs = block_grid.tile(layout.nx());
    let ys = block_grid.tile(layout.ny());
    let zs = Grid1d::uniform(0.0, geom.height, res.z_cells);
    let p = geom.pitch;
    let r_cu = 0.5 * geom.diameter;
    let r_liner = geom.liner_outer_radius();
    let layout = layout.clone();
    HexMesh::from_grids(xs, ys, zs, move |c| {
        let bi = ((c[0] / p).floor() as usize).min(layout.nx() - 1);
        let bj = ((c[1] / p).floor() as usize).min(layout.ny() - 1);
        if layout.kind(bi, bj) == BlockKind::Dummy {
            return Some(MAT_SI);
        }
        // Coordinates relative to this block's TSV center.
        let lx = c[0] - (bi as f64 + 0.5) * p;
        let ly = c[1] - (bj as f64 + 0.5) * p;
        let r = (lx * lx + ly * ly).sqrt();
        Some(if r < r_cu {
            MAT_CU
        } else if r < r_liner {
            MAT_LINER
        } else {
            MAT_SI
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_block::unit_block_mesh;

    #[test]
    fn array_mesh_tiles_block_mesh_exactly() {
        let geom = TsvGeometry::paper_defaults(15.0);
        let res = BlockResolution::coarse();
        let block = unit_block_mesh(&geom, &res, true);
        let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
        let array = array_mesh(&geom, &res, &layout);
        assert_eq!(array.num_elems(), 4 * block.num_elems());
        let (bx, _, _) = block.grids();
        let (ax, _, _) = array.grids();
        assert_eq!(ax.num_cells(), 2 * bx.num_cells());
        let (_, hi) = array.bounding_box();
        assert_eq!(hi, [30.0, 30.0, 50.0]);
    }

    #[test]
    fn per_block_materials_match_unit_block() {
        let geom = TsvGeometry::paper_defaults(10.0);
        let res = BlockResolution::coarse();
        let block = unit_block_mesh(&geom, &res, true);
        let layout = BlockLayout::uniform(2, 1, BlockKind::Tsv);
        let array = array_mesh(&geom, &res, &layout);
        // Sample: material at the center of each block must be Cu.
        for bi in 0..2 {
            let p = [(bi as f64 + 0.5) * 10.0, 5.0, 25.0];
            let (e, _) = array.locate(p).unwrap();
            assert_eq!(array.material(e), MAT_CU);
        }
        // Count Cu elements: exactly 2x the unit block's.
        let count = |m: &HexMesh| {
            (0..m.num_elems())
                .filter(|&e| m.material(e) == MAT_CU)
                .count()
        };
        assert_eq!(count(&array), 2 * count(&block));
    }

    #[test]
    fn dummy_blocks_have_no_tsv() {
        let geom = TsvGeometry::paper_defaults(15.0);
        let res = BlockResolution::coarse();
        let mut layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
        layout.set_kind(0, 0, BlockKind::Dummy);
        let array = array_mesh(&geom, &res, &layout);
        let (e, _) = array.locate([7.5, 7.5, 25.0]).unwrap();
        assert_eq!(array.material(e), MAT_SI);
        let (e, _) = array.locate([22.5, 7.5, 25.0]).unwrap();
        assert_eq!(array.material(e), MAT_CU);
    }

    #[test]
    fn padding_preserves_interior() {
        let layout = BlockLayout::uniform(2, 3, BlockKind::Tsv).padded(2);
        assert_eq!((layout.nx(), layout.ny()), (6, 7));
        assert_eq!(layout.count(BlockKind::Tsv), 6);
        assert_eq!(layout.kind(2, 2), BlockKind::Tsv);
        assert_eq!(layout.kind(1, 2), BlockKind::Dummy);
    }
}
