//! Property-based tests of grids and meshes.

use morestress_mesh::{Grid1d, HexMesh, MaterialId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiling a grid n times yields n× the cells and preserves spacing
    /// pattern per block.
    #[test]
    fn tiling_preserves_structure(cells in 1usize..10, n in 1usize..6,
                                  len in 0.5f64..50.0) {
        let g = Grid1d::uniform(0.0, len, cells);
        let t = g.tile(n);
        prop_assert_eq!(t.num_cells(), cells * n);
        prop_assert!((t.length() - len * n as f64).abs() < 1e-9 * len * n as f64);
        // Every block's internal spacing matches the base grid.
        for b in 0..n {
            for i in 0..cells {
                let base = g.points()[i + 1] - g.points()[i];
                let tiled = t.points()[b * cells + i + 1] - t.points()[b * cells + i];
                prop_assert!((base - tiled).abs() < 1e-9);
            }
        }
    }

    /// locate() always returns the cell containing the point (clamped).
    #[test]
    fn locate_is_consistent(cells in 1usize..12, x in -5.0f64..25.0) {
        let g = Grid1d::uniform(0.0, 20.0, cells);
        let c = g.locate(x);
        prop_assert!(c < g.num_cells());
        if (0.0..=20.0).contains(&x) {
            prop_assert!(g.points()[c] <= x + 1e-12);
            prop_assert!(x <= g.points()[c + 1] + 1e-12);
        }
        let (c2, xi) = g.locate_ref(x.clamp(0.0, 20.0));
        prop_assert_eq!(c2, g.locate(x.clamp(0.0, 20.0)));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&xi));
    }

    /// Mesh volume equals the analytic box volume minus void cells, for any
    /// void pattern.
    #[test]
    fn volume_accounts_for_voids(pattern in prop::collection::vec(any::<bool>(), 27)) {
        prop_assume!(pattern.iter().any(|&b| b));
        let g = Grid1d::uniform(0.0, 3.0, 3);
        let pattern2 = pattern.clone();
        let mesh = HexMesh::from_grids(g.clone(), g.clone(), g, move |c| {
            let i = c[0].floor() as usize;
            let j = c[1].floor() as usize;
            let k = c[2].floor() as usize;
            pattern2[(k * 3 + j) * 3 + i].then_some(MaterialId(0))
        });
        let live = pattern.iter().filter(|&&b| b).count();
        prop_assert_eq!(mesh.num_elems(), live);
        prop_assert!((mesh.volume() - live as f64).abs() < 1e-9);
    }

    /// Node adjacency stays symmetric and reflexive under arbitrary voids.
    #[test]
    fn adjacency_symmetric_with_voids(pattern in prop::collection::vec(any::<bool>(), 8)) {
        prop_assume!(pattern.iter().any(|&b| b));
        let g = Grid1d::uniform(0.0, 2.0, 2);
        let pattern2 = pattern.clone();
        let mesh = HexMesh::from_grids(g.clone(), g.clone(), g, move |c| {
            let i = c[0].floor() as usize;
            let j = c[1].floor() as usize;
            let k = c[2].floor() as usize;
            pattern2[(k * 2 + j) * 2 + i].then_some(MaterialId(1))
        });
        let adj = mesh.node_adjacency();
        for (a, list) in adj.iter().enumerate() {
            prop_assert!(list.binary_search(&a).is_ok());
            for &b in list {
                prop_assert!(adj[b].binary_search(&a).is_ok());
            }
        }
    }

    /// Every compact node's lattice coordinates map back to itself.
    #[test]
    fn lattice_node_roundtrip(nx in 1usize..5, ny in 1usize..5, nz in 1usize..5) {
        let gx = Grid1d::uniform(0.0, nx as f64, nx);
        let gy = Grid1d::uniform(0.0, ny as f64, ny);
        let gz = Grid1d::uniform(0.0, nz as f64, nz);
        let mesh = HexMesh::from_grids(gx, gy, gz, |_| Some(MaterialId(0)));
        for n in 0..mesh.num_nodes() {
            let [i, j, k] = mesh.node_lattice(n);
            prop_assert_eq!(mesh.lattice_node(i, j, k), Some(n));
        }
    }
}
