//! `CampaignSpec`: the typed model of one campaign — materials, TSV
//! geometry, N arrays × loads, and the solver configuration — mirroring
//! the reference implementation's `config.yml` shape (material list,
//! geometry block, `tsv_array` list with dummy-TSV margins, solver
//! block).
//!
//! Specs parse from the YAML subset of [`crate::yaml`] with typed,
//! line-carrying errors, and print back with [`CampaignSpec::to_yaml`] —
//! `parse(to_yaml(spec)) == spec` round-trips exactly (floats are emitted
//! with Rust's shortest-roundtrip formatting).
//!
//! **Units**: Young's moduli are in **MPa** (the workspace convention —
//! lengths in µm, stresses in MPa), not the Pa of the reference config;
//! lengths in µm, temperatures in °C, CTE in 1/°C.

use std::fmt;
use std::path::Path;

use morestress_core::{RomSolver, SimulatorBuilder};
use morestress_fem::{Material, MaterialSet};
use morestress_linalg::VerifyPolicy;
use morestress_mesh::{
    BlockKind, BlockLayout, BlockResolution, TsvGeometry, MAT_CU, MAT_LINER, MAT_ORGANIC, MAT_SI,
};

use crate::yaml::{self, Node, Value, YamlError, YamlErrorKind};

/// One material override, addressed by the paper's config names.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialSpec {
    /// Config name: `Si`, `Cu`, `SiO2` or `organic`.
    pub name: String,
    /// Young's modulus (MPa).
    pub young_modulus: f64,
    /// Poisson's ratio, in `(-1, 0.5)`.
    pub poisson_ratio: f64,
    /// Coefficient of thermal expansion (1/°C).
    pub thermal_expansion_coefficient: f64,
}

/// One TSV array of the campaign: an `nx × ny` core of real TSV blocks
/// wrapped in `dummy_x`/`dummy_y` margin rings of dummy-silicon blocks —
/// the `tsv_array` entry shape of the reference config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Real TSV columns.
    pub tsv_num_x: usize,
    /// Real TSV rows.
    pub tsv_num_y: usize,
    /// Dummy-block margin columns added on *each* side.
    pub dummy_tsv_num_x: usize,
    /// Dummy-block margin rows added on *each* side.
    pub dummy_tsv_num_y: usize,
}

impl ArraySpec {
    /// The block layout this array solves: dummy margins around the TSV
    /// core.
    pub fn layout(&self) -> BlockLayout {
        let nx = self.tsv_num_x + 2 * self.dummy_tsv_num_x;
        let ny = self.tsv_num_y + 2 * self.dummy_tsv_num_y;
        let mut layout = BlockLayout::uniform(nx, ny, BlockKind::Dummy);
        for j in 0..self.tsv_num_y {
            for i in 0..self.tsv_num_x {
                layout.set_kind(
                    self.dummy_tsv_num_x + i,
                    self.dummy_tsv_num_y + j,
                    BlockKind::Tsv,
                );
            }
        }
        layout
    }

    /// True when the layout contains dummy blocks (the dummy ROM must be
    /// built).
    pub fn needs_dummy(&self) -> bool {
        self.dummy_tsv_num_x > 0 || self.dummy_tsv_num_y > 0
    }
}

/// The global-stage solver selection of the reference config's `solver`
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Sparse supernodal Cholesky.
    Direct,
    /// GMRES (the paper's default iterative choice).
    Gmres,
    /// Conjugate gradients.
    Cg,
    /// Size-based automatic selection.
    Auto,
}

/// Residual-verification request for every solve of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyChoice {
    /// No verification (the default).
    Off,
    /// Record residuals, never fail.
    Report,
    /// Fail a job whose relative residual exceeds the solver tolerance —
    /// the PR 8 typed-error surface the runner contains per job.
    Enforce,
}

/// The solver block: interpolation grid, backend selection, shards,
/// verification.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSpec {
    /// Interpolation nodes per axis (the accuracy knob, Table 3).
    pub interp_num: [usize; 3],
    /// Unit-block mesh resolution (`coarse` | `medium` | `fine`).
    pub resolution: ResolutionChoice,
    /// Global-stage backend.
    pub global_solver: SolverChoice,
    /// Interior shard count; 0 = monolithic (no sharding).
    pub shards: usize,
    /// Residual verification policy.
    pub verify: VerifyChoice,
    /// Iterative-solver / verification tolerance.
    pub tolerance: f64,
}

/// Unit-block mesh resolution names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionChoice {
    /// [`BlockResolution::coarse`].
    Coarse,
    /// [`BlockResolution::medium`].
    Medium,
    /// [`BlockResolution::fine`].
    Fine,
}

impl ResolutionChoice {
    /// The mesh resolution this name selects.
    pub fn resolution(self) -> BlockResolution {
        match self {
            ResolutionChoice::Coarse => BlockResolution::coarse(),
            ResolutionChoice::Medium => BlockResolution::medium(),
            ResolutionChoice::Fine => BlockResolution::fine(),
        }
    }
}

impl Default for SolverSpec {
    fn default() -> Self {
        Self {
            interp_num: [3, 3, 3],
            resolution: ResolutionChoice::Coarse,
            global_solver: SolverChoice::Direct,
            shards: 0,
            verify: VerifyChoice::Off,
            tolerance: 1e-10,
        }
    }
}

impl SolverSpec {
    /// The [`RomSolver`] this block selects (shards win over the backend
    /// name, matching [`SimulatorBuilder::shards`] semantics).
    pub fn rom_solver(&self) -> RomSolver {
        match self.global_solver {
            SolverChoice::Direct => RomSolver::DirectCholesky,
            SolverChoice::Gmres => RomSolver::Gmres {
                tol: self.tolerance,
            },
            SolverChoice::Cg => RomSolver::Cg {
                tol: self.tolerance,
            },
            SolverChoice::Auto => RomSolver::Auto,
        }
    }

    /// The [`VerifyPolicy`] this block selects.
    pub fn verify_policy(&self) -> VerifyPolicy {
        match self.verify {
            VerifyChoice::Off => VerifyPolicy::Off,
            VerifyChoice::Report => VerifyPolicy::Report,
            VerifyChoice::Enforce => VerifyPolicy::Enforce {
                tol: self.tolerance,
            },
        }
    }
}

/// One campaign: a named scenario of N arrays × loads over one geometry,
/// material set and solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (results sections are keyed by it).
    pub name: String,
    /// Material overrides applied on top of [`MaterialSet::tsv_defaults`].
    pub materials: Vec<MaterialSpec>,
    /// The TSV unit-block geometry shared by every array.
    pub geometry: TsvGeometry,
    /// Thermal loads ΔT (°C); every array solves every load.
    pub loads: Vec<f64>,
    /// The TSV arrays of the campaign.
    pub arrays: Vec<ArraySpec>,
    /// Solver configuration.
    pub solver: SolverSpec,
}

/// A typed spec failure carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// 1-based line of the offending construct (0 for whole-document
    /// failures such as a missing top-level key).
    pub line: usize,
    /// What went wrong.
    pub kind: SpecErrorKind,
}

/// The failure modes of spec validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecErrorKind {
    /// The YAML layer rejected the document (tabs, bad indent, duplicate
    /// keys, malformed lines).
    Yaml(YamlErrorKind),
    /// A key the schema does not know.
    UnknownKey(String),
    /// A required key is absent.
    MissingKey(&'static str),
    /// A number that parsed to NaN/±Inf (or did not parse at all when a
    /// number was required).
    NonFinite(String),
    /// A structurally valid value outside its domain (with the reason).
    BadValue(String),
    /// A block of the wrong shape (scalar where a map was needed, …).
    WrongShape(&'static str),
    /// The spec file could not be read.
    Io(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SpecErrorKind::Yaml(kind) => YamlError {
                line: self.line,
                kind: kind.clone(),
            }
            .fmt(f),
            SpecErrorKind::UnknownKey(k) => write!(f, "line {}: unknown key `{k}`", self.line),
            SpecErrorKind::MissingKey(k) => {
                write!(f, "line {}: missing required key `{k}`", self.line)
            }
            SpecErrorKind::NonFinite(v) => {
                write!(f, "line {}: `{v}` is not a finite number", self.line)
            }
            SpecErrorKind::BadValue(msg) => write!(f, "line {}: {msg}", self.line),
            SpecErrorKind::WrongShape(expected) => {
                write!(f, "line {}: expected {expected}", self.line)
            }
            SpecErrorKind::Io(msg) => write!(f, "cannot read spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<YamlError> for SpecError {
    fn from(e: YamlError) -> Self {
        Self {
            line: e.line,
            kind: SpecErrorKind::Yaml(e.kind),
        }
    }
}

/// Helpers for pulling typed values out of parsed nodes.
struct MapView<'n> {
    line: usize,
    entries: &'n [(String, Node)],
}

impl<'n> MapView<'n> {
    fn of(node: &'n Node, what: &'static str) -> Result<Self, SpecError> {
        match &node.value {
            Value::Map(entries) => Ok(Self {
                line: node.line,
                entries,
            }),
            _ => Err(SpecError {
                line: node.line,
                kind: SpecErrorKind::WrongShape(what),
            }),
        }
    }

    fn get(&self, key: &'static str) -> Option<&'n Node> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, node)| node)
    }

    fn require(&self, key: &'static str) -> Result<&'n Node, SpecError> {
        self.get(key).ok_or(SpecError {
            line: self.line,
            kind: SpecErrorKind::MissingKey(key),
        })
    }

    /// Rejects any key outside `known`, pointing at its line.
    fn check_keys(&self, known: &[&str]) -> Result<(), SpecError> {
        for (key, node) in self.entries {
            if !known.contains(&key.as_str()) {
                return Err(SpecError {
                    line: node.line,
                    kind: SpecErrorKind::UnknownKey(key.clone()),
                });
            }
        }
        Ok(())
    }
}

fn scalar<'n>(node: &'n Node, what: &'static str) -> Result<&'n str, SpecError> {
    match &node.value {
        Value::Scalar(s) => Ok(s),
        _ => Err(SpecError {
            line: node.line,
            kind: SpecErrorKind::WrongShape(what),
        }),
    }
}

fn number(node: &Node) -> Result<f64, SpecError> {
    let text = scalar(node, "a number")?;
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(SpecError {
            line: node.line,
            kind: SpecErrorKind::NonFinite(text.to_string()),
        }),
    }
}

fn count(node: &Node) -> Result<usize, SpecError> {
    let text = scalar(node, "a non-negative integer")?;
    text.parse::<usize>().map_err(|_| SpecError {
        line: node.line,
        kind: SpecErrorKind::BadValue(format!("`{text}` is not a non-negative integer")),
    })
}

fn seq<'n>(node: &'n Node, what: &'static str) -> Result<&'n [Node], SpecError> {
    match &node.value {
        Value::Seq(items) => Ok(items),
        _ => Err(SpecError {
            line: node.line,
            kind: SpecErrorKind::WrongShape(what),
        }),
    }
}

/// The material names the config schema knows, with their mesh ids.
const MATERIAL_NAMES: [(&str, morestress_mesh::MaterialId); 4] = [
    ("Si", MAT_SI),
    ("Cu", MAT_CU),
    ("SiO2", MAT_LINER),
    ("organic", MAT_ORGANIC),
];

impl CampaignSpec {
    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] with the 1-based offending line: YAML-layer
    /// failures, unknown keys, missing keys, non-finite numbers, or
    /// domain violations (geometry that does not fit, materials outside
    /// their physical ranges, empty arrays/loads).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let root_node = yaml::parse(text)?;
        let root = MapView::of(&root_node, "a top-level map")?;
        root.check_keys(&[
            "name",
            "materials",
            "geometry",
            "loads",
            "tsv_array",
            "solver",
        ])?;

        let name = scalar(root.require("name")?, "a campaign name")?.to_string();
        if name.is_empty() {
            return Err(SpecError {
                line: root.line,
                kind: SpecErrorKind::BadValue("campaign name must not be empty".to_string()),
            });
        }

        let mut materials = Vec::new();
        if let Some(node) = root.get("materials") {
            for item in seq(node, "a list of materials")? {
                materials.push(parse_material(item)?);
            }
        }

        let geometry = parse_geometry(root.require("geometry")?)?;

        let loads_node = root.require("loads")?;
        let mut loads = Vec::new();
        for item in seq(loads_node, "a list of thermal loads")? {
            loads.push(number(item)?);
        }
        if loads.is_empty() {
            return Err(SpecError {
                line: loads_node.line,
                kind: SpecErrorKind::BadValue("loads must not be empty".to_string()),
            });
        }

        let arrays_node = root.require("tsv_array")?;
        let mut arrays = Vec::new();
        for item in seq(arrays_node, "a list of tsv_array entries")? {
            arrays.push(parse_array(item)?);
        }
        if arrays.is_empty() {
            return Err(SpecError {
                line: arrays_node.line,
                kind: SpecErrorKind::BadValue("tsv_array must not be empty".to_string()),
            });
        }

        let solver = match root.get("solver") {
            Some(node) => parse_solver(node)?,
            None => SolverSpec::default(),
        };

        Ok(Self {
            name,
            materials,
            geometry,
            loads,
            arrays,
            solver,
        })
    }

    /// Reads and parses a spec file.
    ///
    /// # Errors
    ///
    /// [`SpecErrorKind::Io`] when the file cannot be read, else as
    /// [`parse`](Self::parse).
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| SpecError {
            line: 0,
            kind: SpecErrorKind::Io(format!("{}: {e}", path.display())),
        })?;
        Self::parse(&text)
    }

    /// Prints the spec in the canonical form [`parse`](Self::parse) reads
    /// back — `parse(to_yaml()) == self` exactly.
    pub fn to_yaml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name: {}\n", self.name));
        if !self.materials.is_empty() {
            out.push_str("materials:\n");
            for m in &self.materials {
                out.push_str(&format!("  - name: {}\n", m.name));
                out.push_str(&format!("    young_modulus: {}\n", m.young_modulus));
                out.push_str(&format!("    poisson_ratio: {}\n", m.poisson_ratio));
                out.push_str(&format!(
                    "    thermal_expansion_coefficient: {}\n",
                    m.thermal_expansion_coefficient
                ));
            }
        }
        out.push_str("geometry:\n");
        out.push_str(&format!("  height: {}\n", self.geometry.height));
        out.push_str(&format!("  pitch: {}\n", self.geometry.pitch));
        out.push_str(&format!("  diameter: {}\n", self.geometry.diameter));
        out.push_str(&format!("  thickness: {}\n", self.geometry.liner));
        out.push_str("loads:\n");
        for load in &self.loads {
            out.push_str(&format!("  - {load}\n"));
        }
        out.push_str("tsv_array:\n");
        for a in &self.arrays {
            out.push_str(&format!("  - tsv_num_x: {}\n", a.tsv_num_x));
            out.push_str(&format!("    tsv_num_y: {}\n", a.tsv_num_y));
            out.push_str(&format!("    dummy_tsv_num_x: {}\n", a.dummy_tsv_num_x));
            out.push_str(&format!("    dummy_tsv_num_y: {}\n", a.dummy_tsv_num_y));
        }
        out.push_str("solver:\n");
        out.push_str(&format!("  interp_num_x: {}\n", self.solver.interp_num[0]));
        out.push_str(&format!("  interp_num_y: {}\n", self.solver.interp_num[1]));
        out.push_str(&format!("  interp_num_z: {}\n", self.solver.interp_num[2]));
        let res = match self.solver.resolution {
            ResolutionChoice::Coarse => "coarse",
            ResolutionChoice::Medium => "medium",
            ResolutionChoice::Fine => "fine",
        };
        out.push_str(&format!("  resolution: {res}\n"));
        let solver = match self.solver.global_solver {
            SolverChoice::Direct => "direct",
            SolverChoice::Gmres => "gmres",
            SolverChoice::Cg => "cg",
            SolverChoice::Auto => "auto",
        };
        out.push_str(&format!("  global_solver: {solver}\n"));
        out.push_str(&format!("  shards: {}\n", self.solver.shards));
        let verify = match self.solver.verify {
            VerifyChoice::Off => "off",
            VerifyChoice::Report => "report",
            VerifyChoice::Enforce => "enforce",
        };
        out.push_str(&format!("  verify: {verify}\n"));
        out.push_str(&format!("  tolerance: {}\n", self.solver.tolerance));
        out
    }

    /// The material registry of the campaign:
    /// [`MaterialSet::tsv_defaults`] with the spec's overrides applied.
    pub fn material_set(&self) -> MaterialSet {
        let mut set = MaterialSet::tsv_defaults();
        for m in &self.materials {
            let id = MATERIAL_NAMES
                .iter()
                .find(|(name, _)| *name == m.name)
                .map(|(_, id)| *id)
                .expect("validated at parse time");
            set.insert(
                id,
                Material::new(
                    m.young_modulus,
                    m.poisson_ratio,
                    m.thermal_expansion_coefficient,
                ),
            );
        }
        set
    }

    /// True when any array needs the dummy-block ROM.
    pub fn needs_dummy(&self) -> bool {
        self.arrays.iter().any(ArraySpec::needs_dummy)
    }

    /// A [`SimulatorBuilder`] configured exactly as this spec requests —
    /// the front door the runner (and any embedding) builds simulators
    /// through.
    pub fn simulator_builder(&self) -> SimulatorBuilder {
        let mut builder = MoreStressSimulatorBuilder(self).base();
        if self.solver.shards > 0 {
            builder = builder.shards(self.solver.shards);
        }
        if self.solver.verify != VerifyChoice::Off {
            builder = builder.verify(self.solver.verify_policy());
        }
        builder
    }

    /// A fingerprint of everything that shapes the one-shot model and its
    /// hoisted backend — campaigns with equal keys can (and in the runner
    /// do) share one simulator and its `FactorCache`.
    pub fn model_key(&self) -> Vec<u64> {
        let mut key = vec![
            self.geometry.diameter.to_bits(),
            self.geometry.height.to_bits(),
            self.geometry.liner.to_bits(),
            self.geometry.pitch.to_bits(),
            self.solver.interp_num[0] as u64,
            self.solver.interp_num[1] as u64,
            self.solver.interp_num[2] as u64,
            self.solver.resolution as u64,
            self.solver.global_solver as u64,
            self.solver.shards as u64,
            self.solver.verify as u64,
            self.solver.tolerance.to_bits(),
            u64::from(self.needs_dummy()),
        ];
        for (id, m) in self.material_set().iter() {
            key.push(id.0 as u64);
            key.push(m.youngs.to_bits());
            key.push(m.poisson.to_bits());
            key.push(m.cte.to_bits());
        }
        key
    }
}

/// Internal newtype: keeps `simulator_builder` readable.
struct MoreStressSimulatorBuilder<'s>(&'s CampaignSpec);

impl MoreStressSimulatorBuilder<'_> {
    fn base(&self) -> SimulatorBuilder {
        SimulatorBuilder::new(&self.0.geometry)
            .resolution(self.0.solver.resolution.resolution())
            .interpolation(self.0.solver.interp_num)
            .materials(self.0.material_set())
            .solver(self.0.solver.rom_solver())
            .build_dummy(self.0.needs_dummy())
    }
}

fn parse_material(node: &Node) -> Result<MaterialSpec, SpecError> {
    let map = MapView::of(node, "a material map")?;
    map.check_keys(&[
        "name",
        "young_modulus",
        "poisson_ratio",
        "thermal_expansion_coefficient",
    ])?;
    let name_node = map.require("name")?;
    let name = scalar(name_node, "a material name")?.to_string();
    if !MATERIAL_NAMES.iter().any(|(n, _)| *n == name) {
        return Err(SpecError {
            line: name_node.line,
            kind: SpecErrorKind::BadValue(format!(
                "unknown material `{name}` (expected Si, Cu, SiO2 or organic)"
            )),
        });
    }
    let young_modulus = number(map.require("young_modulus")?)?;
    let poisson_ratio = number(map.require("poisson_ratio")?)?;
    let thermal_expansion_coefficient = number(map.require("thermal_expansion_coefficient")?)?;
    if young_modulus <= 0.0 {
        return Err(SpecError {
            line: node.line,
            kind: SpecErrorKind::BadValue(format!(
                "young_modulus must be positive, got {young_modulus}"
            )),
        });
    }
    if poisson_ratio <= -1.0 || poisson_ratio >= 0.5 {
        return Err(SpecError {
            line: node.line,
            kind: SpecErrorKind::BadValue(format!(
                "poisson_ratio must lie in (-1, 0.5), got {poisson_ratio}"
            )),
        });
    }
    Ok(MaterialSpec {
        name,
        young_modulus,
        poisson_ratio,
        thermal_expansion_coefficient,
    })
}

fn parse_geometry(node: &Node) -> Result<TsvGeometry, SpecError> {
    let map = MapView::of(node, "a geometry map")?;
    map.check_keys(&["height", "pitch", "diameter", "thickness"])?;
    let geometry = TsvGeometry {
        height: number(map.require("height")?)?,
        pitch: number(map.require("pitch")?)?,
        diameter: number(map.require("diameter")?)?,
        liner: number(map.require("thickness")?)?,
    };
    geometry.validate().map_err(|msg| SpecError {
        line: node.line,
        kind: SpecErrorKind::BadValue(msg),
    })?;
    Ok(geometry)
}

fn parse_array(node: &Node) -> Result<ArraySpec, SpecError> {
    let map = MapView::of(node, "a tsv_array map")?;
    map.check_keys(&[
        "tsv_num_x",
        "tsv_num_y",
        "dummy_tsv_num_x",
        "dummy_tsv_num_y",
    ])?;
    let array = ArraySpec {
        tsv_num_x: count(map.require("tsv_num_x")?)?,
        tsv_num_y: count(map.require("tsv_num_y")?)?,
        dummy_tsv_num_x: map.get("dummy_tsv_num_x").map_or(Ok(0), count)?,
        dummy_tsv_num_y: map.get("dummy_tsv_num_y").map_or(Ok(0), count)?,
    };
    if array.tsv_num_x == 0 || array.tsv_num_y == 0 {
        return Err(SpecError {
            line: node.line,
            kind: SpecErrorKind::BadValue("tsv_num_x and tsv_num_y must be at least 1".to_string()),
        });
    }
    Ok(array)
}

fn parse_solver(node: &Node) -> Result<SolverSpec, SpecError> {
    let map = MapView::of(node, "a solver map")?;
    map.check_keys(&[
        "interp_num_x",
        "interp_num_y",
        "interp_num_z",
        "resolution",
        "global_solver",
        "shards",
        "verify",
        "tolerance",
    ])?;
    let defaults = SolverSpec::default();
    let axis = |key: &'static str, default: usize| -> Result<usize, SpecError> {
        let Some(n) = map.get(key) else {
            return Ok(default);
        };
        let v = count(n)?;
        if v < 2 {
            return Err(SpecError {
                line: n.line,
                kind: SpecErrorKind::BadValue(format!("{key} must be at least 2, got {v}")),
            });
        }
        Ok(v)
    };
    let interp_num = [
        axis("interp_num_x", defaults.interp_num[0])?,
        axis("interp_num_y", defaults.interp_num[1])?,
        axis("interp_num_z", defaults.interp_num[2])?,
    ];
    let resolution = match map.get("resolution") {
        None => defaults.resolution,
        Some(n) => match scalar(n, "a resolution name")? {
            "coarse" => ResolutionChoice::Coarse,
            "medium" => ResolutionChoice::Medium,
            "fine" => ResolutionChoice::Fine,
            other => {
                return Err(SpecError {
                    line: n.line,
                    kind: SpecErrorKind::BadValue(format!(
                        "unknown resolution `{other}` (expected coarse, medium or fine)"
                    )),
                })
            }
        },
    };
    let global_solver = match map.get("global_solver") {
        None => defaults.global_solver,
        Some(n) => match scalar(n, "a solver name")? {
            "direct" => SolverChoice::Direct,
            "gmres" => SolverChoice::Gmres,
            "cg" => SolverChoice::Cg,
            "auto" => SolverChoice::Auto,
            other => {
                return Err(SpecError {
                    line: n.line,
                    kind: SpecErrorKind::BadValue(format!(
                        "unknown global_solver `{other}` (expected direct, gmres, cg or auto)"
                    )),
                })
            }
        },
    };
    let shards = map.get("shards").map_or(Ok(defaults.shards), count)?;
    let verify = match map.get("verify") {
        None => defaults.verify,
        Some(n) => match scalar(n, "a verify policy")? {
            "off" => VerifyChoice::Off,
            "report" => VerifyChoice::Report,
            "enforce" => VerifyChoice::Enforce,
            other => {
                return Err(SpecError {
                    line: n.line,
                    kind: SpecErrorKind::BadValue(format!(
                        "unknown verify policy `{other}` (expected off, report or enforce)"
                    )),
                })
            }
        },
    };
    let tolerance = match map.get("tolerance") {
        None => defaults.tolerance,
        Some(n) => {
            let v = number(n)?;
            if v <= 0.0 {
                return Err(SpecError {
                    line: n.line,
                    kind: SpecErrorKind::BadValue(format!("tolerance must be positive, got {v}")),
                });
            }
            v
        }
    };
    Ok(SolverSpec {
        interp_num,
        resolution,
        global_solver,
        shards,
        verify,
        tolerance,
    })
}
