//! A hand-rolled parser for the block-style YAML subset the campaign
//! specs use — the same offline idiom as the `crates/devtools` stubs: the
//! container cannot fetch serde/serde_yaml, and the spec format needs only
//! nested maps, sequences and scalars.
//!
//! Supported syntax (two-space indentation):
//!
//! ```yaml
//! key: scalar          # inline scalar
//! key:                 # nested block (map or sequence) on deeper lines
//!   child: 1
//! seq:
//!   - scalar           # sequence of scalars
//!   - key: value       # sequence of maps (compact first entry)
//!     other: 2
//! ```
//!
//! `#` starts a comment anywhere; tabs in indentation are rejected
//! ([`YamlErrorKind::Tab`]); inconsistent indentation is rejected with the
//! offending line ([`YamlErrorKind::BadIndent`]). Every node carries the
//! 1-based line it started on, so spec-level validation can point at the
//! source.

use std::fmt;

/// A parsed node: the 1-based source line it starts on plus its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// 1-based line of the node's first token.
    pub line: usize,
    /// The node's shape and content.
    pub value: Value,
}

/// The value of a [`Node`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar, stored verbatim (unquoted, trimmed).
    Scalar(String),
    /// A map in source order; duplicate keys are rejected at parse time.
    Map(Vec<(String, Node)>),
    /// A `- ` sequence.
    Seq(Vec<Node>),
}

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line the failure was detected on.
    pub line: usize,
    /// What went wrong.
    pub kind: YamlErrorKind,
}

/// The failure modes of the YAML-subset parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YamlErrorKind {
    /// A tab character in leading whitespace (YAML forbids tabs there; so
    /// do we, with a clearer error).
    Tab,
    /// Indentation that matches no open block.
    BadIndent,
    /// A line that is neither `key: ...`, `key:`, nor a `- ` item in a
    /// position where one is required.
    Malformed(String),
    /// The same key twice within one map.
    DuplicateKey(String),
    /// A map entry and a sequence item mixed at one nesting level.
    MixedBlock,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            YamlErrorKind::Tab => write!(f, "line {}: tab in indentation", self.line),
            YamlErrorKind::BadIndent => {
                write!(f, "line {}: indentation matches no open block", self.line)
            }
            YamlErrorKind::Malformed(s) => {
                write!(
                    f,
                    "line {}: expected `key: value` or `- item`, got `{s}`",
                    self.line
                )
            }
            YamlErrorKind::DuplicateKey(k) => {
                write!(f, "line {}: duplicate key `{k}`", self.line)
            }
            YamlErrorKind::MixedBlock => write!(
                f,
                "line {}: map entries and sequence items mixed in one block",
                self.line
            ),
        }
    }
}

impl std::error::Error for YamlError {}

/// One significant source line after comment stripping.
struct Line {
    number: usize,
    indent: usize,
    content: String,
}

fn scan_lines(text: &str) -> Result<Vec<Line>, YamlError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if without_comment.trim().is_empty() {
            continue;
        }
        let indent = without_comment.len() - without_comment.trim_start().len();
        if without_comment[..indent].contains('\t') {
            return Err(YamlError {
                line: number,
                kind: YamlErrorKind::Tab,
            });
        }
        out.push(Line {
            number,
            indent,
            content: without_comment.trim().to_string(),
        });
    }
    Ok(out)
}

/// Parses a document into its root node (a map for every campaign spec).
///
/// # Errors
///
/// Returns the first [`YamlError`], with the 1-based offending line.
pub fn parse(text: &str) -> Result<Node, YamlError> {
    let lines = scan_lines(text)?;
    if lines.is_empty() {
        return Ok(Node {
            line: 1,
            value: Value::Map(Vec::new()),
        });
    }
    let root_indent = lines[0].indent;
    let mut cursor = 0;
    let node = parse_block(&lines, &mut cursor, root_indent)?;
    if cursor < lines.len() {
        // Only reachable via an indent shallower than the document root.
        return Err(YamlError {
            line: lines[cursor].number,
            kind: YamlErrorKind::BadIndent,
        });
    }
    Ok(node)
}

/// Parses the block starting at `lines[*cursor]`, whose items all sit at
/// exactly `indent` columns. Leaves `*cursor` on the first line outside
/// the block.
fn parse_block(lines: &[Line], cursor: &mut usize, indent: usize) -> Result<Node, YamlError> {
    let start_line = lines[*cursor].number;
    let is_seq = lines[*cursor].content == "-" || lines[*cursor].content.starts_with("- ");
    let mut map: Vec<(String, Node)> = Vec::new();
    let mut seq: Vec<Node> = Vec::new();

    while *cursor < lines.len() {
        let line = &lines[*cursor];
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(YamlError {
                line: line.number,
                kind: YamlErrorKind::BadIndent,
            });
        }
        let item_is_seq = line.content == "-" || line.content.starts_with("- ");
        if item_is_seq != is_seq {
            return Err(YamlError {
                line: line.number,
                kind: YamlErrorKind::MixedBlock,
            });
        }
        if is_seq {
            seq.push(parse_seq_item(lines, cursor, indent)?);
        } else {
            let (key, node) = parse_map_entry(lines, cursor, indent)?;
            if map.iter().any(|(k, _)| *k == key) {
                return Err(YamlError {
                    line: node.line,
                    kind: YamlErrorKind::DuplicateKey(key),
                });
            }
            map.push((key, node));
        }
    }

    Ok(Node {
        line: start_line,
        value: if is_seq {
            Value::Seq(seq)
        } else {
            Value::Map(map)
        },
    })
}

/// Parses one `key: value` / `key:` entry (consuming any nested block).
fn parse_map_entry(
    lines: &[Line],
    cursor: &mut usize,
    indent: usize,
) -> Result<(String, Node), YamlError> {
    let line = &lines[*cursor];
    let Some((key, rest)) = split_key(&line.content) else {
        return Err(YamlError {
            line: line.number,
            kind: YamlErrorKind::Malformed(line.content.clone()),
        });
    };
    let number = line.number;
    *cursor += 1;
    if !rest.is_empty() {
        return Ok((
            key,
            Node {
                line: number,
                value: Value::Scalar(rest),
            },
        ));
    }
    // `key:` — the value is the following deeper block (or an empty map).
    if *cursor < lines.len() && lines[*cursor].indent > indent {
        let child_indent = lines[*cursor].indent;
        let node = parse_block(lines, cursor, child_indent)?;
        Ok((key, node))
    } else {
        Ok((
            key,
            Node {
                line: number,
                value: Value::Map(Vec::new()),
            },
        ))
    }
}

/// Parses one sequence item: `- scalar`, a bare `-` followed by a deeper
/// block, or the compact `- key: value` map form whose further entries
/// continue two columns in (aligned under the inline key).
fn parse_seq_item(lines: &[Line], cursor: &mut usize, indent: usize) -> Result<Node, YamlError> {
    let line = &lines[*cursor];
    let number = line.number;
    let inline = line.content[1..].trim_start().to_string();
    if inline.is_empty() {
        // Bare `-`: the item is the following deeper block.
        *cursor += 1;
        if *cursor < lines.len() && lines[*cursor].indent > indent {
            let child_indent = lines[*cursor].indent;
            return parse_block(lines, cursor, child_indent);
        }
        return Err(YamlError {
            line: number,
            kind: YamlErrorKind::Malformed("-".to_string()),
        });
    }
    if let Some((key, rest)) = split_key(&inline) {
        // Compact map item: the inline entry plus continuation lines
        // indented to the inline key's column.
        let item_indent = indent + 2;
        let mut map: Vec<(String, Node)> = Vec::new();
        if rest.is_empty() {
            *cursor += 1;
            if *cursor < lines.len() && lines[*cursor].indent > item_indent {
                let child_indent = lines[*cursor].indent;
                map.push((key, parse_block(lines, cursor, child_indent)?));
            } else {
                map.push((
                    key,
                    Node {
                        line: number,
                        value: Value::Map(Vec::new()),
                    },
                ));
            }
        } else {
            map.push((
                key,
                Node {
                    line: number,
                    value: Value::Scalar(rest),
                },
            ));
            *cursor += 1;
        }
        while *cursor < lines.len() && lines[*cursor].indent == item_indent {
            let (key, node) = parse_map_entry(lines, cursor, item_indent)?;
            if map.iter().any(|(k, _)| *k == key) {
                return Err(YamlError {
                    line: node.line,
                    kind: YamlErrorKind::DuplicateKey(key),
                });
            }
            map.push((key, node));
        }
        if *cursor < lines.len() && lines[*cursor].indent > item_indent {
            return Err(YamlError {
                line: lines[*cursor].number,
                kind: YamlErrorKind::BadIndent,
            });
        }
        return Ok(Node {
            line: number,
            value: Value::Map(map),
        });
    }
    // Plain scalar item.
    *cursor += 1;
    Ok(Node {
        line: number,
        value: Value::Scalar(inline),
    })
}

/// Splits `key: rest` / `key:` into `(key, rest)`; `None` when the line
/// has no `:` separator (a colon inside the value is fine — only the
/// first one splits).
fn split_key(content: &str) -> Option<(String, String)> {
    let pos = content.find(':')?;
    let key = content[..pos].trim();
    if key.is_empty() || key.contains(' ') {
        return None;
    }
    let rest = content[pos + 1..].trim();
    if !rest.is_empty() && !content[pos + 1..].starts_with(' ') {
        // `key:value` without a space is not our subset (and catches
        // scalars like `12:30` being misread as entries).
        return None;
    }
    Some((key.to_string(), rest.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_get<'n>(node: &'n Node, key: &str) -> &'n Node {
        match &node.value {
            Value::Map(entries) => {
                &entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("key {key} missing"))
                    .1
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_maps_sequences_and_comments() {
        let doc = "\
name: demo  # trailing comment
geometry:
  height: 50.0
  pitch: 15.0
loads:
  - -250.0
  - 85.0
arrays:
  - nx: 3
    ny: 3
  - nx: 2
    ny: 1
";
        let root = parse(doc).expect("parses");
        assert_eq!(
            map_get(&root, "name").value,
            Value::Scalar("demo".to_string())
        );
        assert_eq!(map_get(&root, "geometry").line, 3);
        match &map_get(&root, "loads").value {
            Value::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].value, Value::Scalar("-250.0".to_string()));
            }
            other => panic!("loads should be a seq, got {other:?}"),
        }
        match &map_get(&root, "arrays").value {
            Value::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(
                    map_get(&items[0], "ny").value,
                    Value::Scalar("3".to_string())
                );
                assert_eq!(map_get(&items[1], "nx").line, 11);
            }
            other => panic!("arrays should be a seq, got {other:?}"),
        }
    }

    #[test]
    fn tabs_and_bad_indent_are_rejected_with_lines() {
        let tabbed = "a:\n\tb: 1\n";
        assert_eq!(
            parse(tabbed).unwrap_err(),
            YamlError {
                line: 2,
                kind: YamlErrorKind::Tab
            }
        );
        let ragged = "a:\n  b: 1\n   c: 2\n";
        assert_eq!(
            parse(ragged).unwrap_err(),
            YamlError {
                line: 3,
                kind: YamlErrorKind::BadIndent
            }
        );
    }

    #[test]
    fn duplicate_keys_and_mixed_blocks_are_rejected() {
        let dup = "a: 1\na: 2\n";
        assert!(matches!(
            parse(dup).unwrap_err().kind,
            YamlErrorKind::DuplicateKey(k) if k == "a"
        ));
        let mixed = "a: 1\n- b\n";
        assert_eq!(parse(mixed).unwrap_err().kind, YamlErrorKind::MixedBlock);
    }
}
