//! `CampaignRunner`: the concurrent job scheduler that admits many
//! campaigns against one shared simulator stack.
//!
//! Every (campaign, array, load) triple becomes one *job*. Campaigns
//! whose [`model_key`](CampaignSpec::model_key) agree share one
//! [`MoreStressSimulator`] — and therefore one
//! [`FactorCache`](morestress_linalg::FactorCache), so two campaigns over
//! the same lattice pay one factorization between them. Jobs run on the
//! process-wide [`WorkPool`] under bounded admission, and each job is
//! isolated: a panic or a typed solver failure becomes that job's
//! [`JobOutcome::Failed`] without sinking the campaign (the PR 8
//! containment surface, extended to the scheduler).
//!
//! **Determinism**: job *results* are a pure function of the specs. The
//! report order is canonical (campaign-major, array-major, load-minor)
//! regardless of admission order or completion interleaving, and every
//! solved job's checksum is bitwise identical across pool caps — only
//! wall times and cache hit/miss tallies may vary with scheduling.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use morestress_core::{GlobalBc, GlobalStats, MoreStressSimulator, RomError};
use morestress_linalg::WorkPool;

use crate::spec::CampaignSpec;

/// The order jobs are fed to the pool when several campaigns are
/// admitted together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionOrder {
    /// FIFO with fairness: one job from each campaign in turn, so a
    /// large campaign cannot starve a small one (the default).
    #[default]
    RoundRobin,
    /// Strict FIFO: all of campaign 0, then all of campaign 1, …
    Sequential,
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The solve completed.
    Solved {
        /// FNV-1a over the displacement and midplane-stress bits —
        /// the value the determinism suite compares across pool caps.
        checksum: u64,
        /// Peak absolute nodal displacement component (µm).
        peak_displacement: f64,
        /// Peak midplane von Mises stress (MPa).
        peak_von_mises: f64,
        /// Cost accounting of the global-stage solve (boxed: it is an
        /// order of magnitude larger than the `Failed` variant).
        stats: Box<GlobalStats>,
    },
    /// The job failed — typed solver error, invalid load, or a caught
    /// panic. The campaign keeps running.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
}

impl JobOutcome {
    /// True for [`JobOutcome::Solved`].
    pub fn is_solved(&self) -> bool {
        matches!(self, JobOutcome::Solved { .. })
    }
}

/// The report of one job, in canonical order within its campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Name of the campaign the job belongs to.
    pub campaign: String,
    /// Index into the campaign's `tsv_array` list.
    pub array_index: usize,
    /// Index into the campaign's `loads` list.
    pub load_index: usize,
    /// The thermal load ΔT (°C) the job solved.
    pub load: f64,
    /// How it ended.
    pub outcome: JobOutcome,
}

/// The aggregated result of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub name: String,
    /// One report per (array, load) job, campaign-canonical order:
    /// array-major, load-minor — independent of scheduling.
    pub jobs: Vec<JobReport>,
    /// Hits on the shared [`FactorCache`](morestress_linalg::FactorCache)
    /// of this campaign's simulator group after the run. Campaigns with
    /// equal model keys share the counter; under concurrent admission the
    /// tally may exceed the single-threaded value, never undercount
    /// sharing.
    pub cache_hits: usize,
    /// Misses on the shared cache after the run (= distinct operators
    /// factored, when admission is serial).
    pub cache_misses: usize,
}

impl CampaignReport {
    /// Number of solved jobs.
    pub fn solved(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_solved()).count()
    }

    /// Number of failed jobs.
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.solved()
    }
}

/// The concurrent campaign scheduler. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CampaignRunner {
    max_in_flight: usize,
    admission: AdmissionOrder,
}

/// One admitted job, resolved to indices.
#[derive(Clone, Copy)]
struct Job {
    /// Position in the canonical report order (campaign-major).
    slot: usize,
    campaign: usize,
    array: usize,
    load: usize,
}

impl CampaignRunner {
    /// A runner with unbounded admission (the pool cap is the only
    /// limit) and round-robin fairness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds how many jobs may be in flight at once (clamped to the
    /// [`WorkPool`] cap; 0 = up to the cap).
    pub fn max_in_flight(mut self, jobs: usize) -> Self {
        self.max_in_flight = jobs;
        self
    }

    /// Sets the admission order across campaigns.
    pub fn admission(mut self, order: AdmissionOrder) -> Self {
        self.admission = order;
        self
    }

    /// Runs every campaign to completion and returns one report per
    /// campaign, in input order.
    ///
    /// Simulators are built up-front, one per distinct
    /// [`model_key`](CampaignSpec::model_key); jobs then drain through
    /// the shared [`WorkPool`]. Individual job failures are contained in
    /// their [`JobReport`]s — this method only fails when a *model*
    /// cannot be built at all.
    ///
    /// # Errors
    ///
    /// [`RomError`] from the one-shot local stage of a simulator group.
    pub fn run(&self, specs: &[CampaignSpec]) -> Result<Vec<CampaignReport>, RomError> {
        // One simulator per distinct model key; campaigns map onto groups.
        let mut groups: Vec<(Vec<u64>, MoreStressSimulator)> = Vec::new();
        let mut group_of = Vec::with_capacity(specs.len());
        for spec in specs {
            let key = spec.model_key();
            let gi = match groups.iter().position(|(k, _)| *k == key) {
                Some(gi) => gi,
                None => {
                    groups.push((key, spec.simulator_builder().build()?));
                    groups.len() - 1
                }
            };
            group_of.push(gi);
        }

        // Canonical slots: campaign-major, array-major, load-minor.
        let mut per_campaign: Vec<Vec<Job>> = Vec::with_capacity(specs.len());
        let mut slot = 0;
        for (ci, spec) in specs.iter().enumerate() {
            let mut jobs = Vec::with_capacity(spec.arrays.len() * spec.loads.len());
            for ai in 0..spec.arrays.len() {
                for li in 0..spec.loads.len() {
                    jobs.push(Job {
                        slot,
                        campaign: ci,
                        array: ai,
                        load: li,
                    });
                    slot += 1;
                }
            }
            per_campaign.push(jobs);
        }
        let total = slot;

        // Admission queue: the order jobs are *offered* to workers.
        let queue: Vec<Job> = match self.admission {
            AdmissionOrder::Sequential => per_campaign.iter().flatten().copied().collect(),
            AdmissionOrder::RoundRobin => {
                let rounds = per_campaign.iter().map(Vec::len).max().unwrap_or(0);
                let mut q = Vec::with_capacity(total);
                for round in 0..rounds {
                    for jobs in &per_campaign {
                        if let Some(job) = jobs.get(round) {
                            q.push(*job);
                        }
                    }
                }
                q
            }
        };

        let pool = WorkPool::current();
        let bound = if self.max_in_flight == 0 {
            pool.cap()
        } else {
            self.max_in_flight
        };
        let workers = bound.min(total.max(1));

        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<JobReport>>> = Mutex::new(vec![None; total]);
        pool.scope_workers(workers, |_worker| loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            let Some(job) = queue.get(idx) else { break };
            let spec = &specs[job.campaign];
            let sim = &groups[group_of[job.campaign]].1;
            let report = run_job(spec, sim, job);
            results.lock().expect("results lock")[job.slot] = Some(report);
        });

        let mut slots = results.into_inner().expect("results lock").into_iter();
        let mut reports = Vec::with_capacity(specs.len());
        for (ci, spec) in specs.iter().enumerate() {
            let jobs: Vec<JobReport> = per_campaign[ci]
                .iter()
                .map(|_| slots.next().flatten().expect("every slot filled"))
                .collect();
            let cache = groups[group_of[ci]].1.factor_cache();
            reports.push(CampaignReport {
                name: spec.name.clone(),
                jobs,
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
            });
        }
        Ok(reports)
    }
}

/// Solves one job with full fault containment: typed errors and panics
/// both land in [`JobOutcome::Failed`].
fn run_job(spec: &CampaignSpec, sim: &MoreStressSimulator, job: &Job) -> JobReport {
    let load = spec.loads[job.load];
    let outcome = if !load.is_finite() {
        JobOutcome::Failed {
            error: format!("load {load} is not finite"),
        }
    } else {
        match panic::catch_unwind(AssertUnwindSafe(|| solve_job(spec, sim, job, load))) {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(e)) => JobOutcome::Failed {
                error: e.to_string(),
            },
            // `&*payload`, not `&payload`: coercing `&Box<dyn Any>` would
            // make the *box* the `Any` and every downcast miss.
            Err(payload) => JobOutcome::Failed {
                error: format!("panic: {}", panic_message(&*payload)),
            },
        }
    };
    JobReport {
        campaign: spec.name.clone(),
        array_index: job.array,
        load_index: job.load,
        load,
        outcome,
    }
}

fn solve_job(
    spec: &CampaignSpec,
    sim: &MoreStressSimulator,
    job: &Job,
    load: f64,
) -> Result<JobOutcome, RomError> {
    let layout = spec.arrays[job.array].layout();
    let solution = sim.solve_array(&layout, load, &GlobalBc::ClampedTopBottom)?;
    let field = sim.sample_midplane(&layout, &solution, load, 4)?;
    let mut checksum = Fnv1a::new();
    let mut peak_displacement = 0.0f64;
    for &u in solution.nodal_displacement() {
        checksum.write_f64(u);
        peak_displacement = peak_displacement.max(u.abs());
    }
    for &v in &field.values {
        checksum.write_f64(v);
    }
    Ok(JobOutcome::Solved {
        checksum: checksum.finish(),
        peak_displacement,
        peak_von_mises: field.max(),
        stats: Box::new(solution.stats),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque payload"
    }
}

/// FNV-1a over raw f64 bits: order-sensitive, bitwise-exact, stable
/// across platforms — exactly what the cross-cap determinism contract
/// needs (`std` hashers are seeded per-process).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_f64(&mut self, v: f64) {
        for byte in v.to_bits().to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
