//! The stable results schema: campaign reports rendered as the same
//! two-level `{section: {key: number}}` JSON the benchmark artifacts
//! use, validated by the `check_bench_json` CI gate.
//!
//! Layout: one summary section per campaign (job/solved/failed tallies
//! and the shared-cache counters) plus one section per job. Sections are
//! prefixed with the campaign's input index so two campaigns with the
//! same name cannot collide, and every section carries the uniform
//! `hardware_threads`/`git_commit` stamps the gate requires.
//!
//! Everything emitted is a number. Exact values that do not fit an `f64`
//! directly are split: the 64-bit job checksum is stored as
//! `checksum_hi`/`checksum_lo` (two 32-bit halves, both exact).

use std::io;
use std::path::Path;

use morestress_bench::{format_bench_sections, git_commit_number, hardware_threads, BenchSection};

use crate::runner::{CampaignReport, JobOutcome};

/// Renders reports into bench-record sections, in canonical order:
/// campaign-major, summary first, then jobs (array-major, load-minor).
/// The `hardware_threads`/`git_commit` stamps are appended to every
/// section here, so the output passes `check_bench_sections` as-is.
pub fn campaign_sections(reports: &[CampaignReport]) -> Vec<BenchSection> {
    let threads = hardware_threads();
    let commit = git_commit_number();
    let stamp = |mut entries: Vec<(String, f64)>| -> Vec<(String, f64)> {
        entries.push(("hardware_threads".to_string(), threads));
        entries.push(("git_commit".to_string(), commit));
        entries
    };

    // Section names must survive the line-based bench-JSON reader:
    // restrict the campaign-name portion to word characters.
    let sanitize = |name: &str| -> String {
        name.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    };

    let mut sections = Vec::new();
    for (ci, report) in reports.iter().enumerate() {
        let name = sanitize(&report.name);
        let summary = vec![
            ("jobs".to_string(), report.jobs.len() as f64),
            ("solved".to_string(), report.solved() as f64),
            ("failed".to_string(), report.failed() as f64),
            ("cache_hits".to_string(), report.cache_hits as f64),
            ("cache_misses".to_string(), report.cache_misses as f64),
        ];
        sections.push((format!("campaign{ci}_{name}"), stamp(summary)));

        for job in &report.jobs {
            let mut entries = vec![
                ("load".to_string(), job.load),
                ("array_index".to_string(), job.array_index as f64),
                ("load_index".to_string(), job.load_index as f64),
            ];
            match &job.outcome {
                JobOutcome::Solved {
                    checksum,
                    peak_displacement,
                    peak_von_mises,
                    stats,
                } => {
                    entries.push(("solved".to_string(), 1.0));
                    entries.push(("checksum_hi".to_string(), (checksum >> 32) as f64));
                    entries.push(("checksum_lo".to_string(), (checksum & 0xffff_ffff) as f64));
                    entries.push(("peak_displacement".to_string(), *peak_displacement));
                    entries.push(("peak_von_mises".to_string(), *peak_von_mises));
                    entries.push(("wall_ms".to_string(), stats.wall_time.as_secs_f64() * 1e3));
                    entries.push(("total_dofs".to_string(), stats.total_dofs as f64));
                    entries.push(("free_dofs".to_string(), stats.free_dofs as f64));
                    entries.push(("iterations".to_string(), stats.iterations as f64));
                    entries.push(("shards".to_string(), stats.shards as f64));
                    entries.push((
                        "shards_refactored".to_string(),
                        stats.shards_refactored as f64,
                    ));
                    entries.push(("shards_reused".to_string(), stats.shards_reused as f64));
                    entries.push(("shards_degraded".to_string(), stats.shards_degraded as f64));
                }
                // The failure text lives in the human-readable CLI
                // output; the numeric record only tallies the outcome.
                JobOutcome::Failed { .. } => entries.push(("solved".to_string(), 0.0)),
            }
            sections.push((
                format!(
                    "campaign{ci}_{name}_array{}_load{}",
                    job.array_index, job.load_index
                ),
                stamp(entries),
            ));
        }
    }
    sections
}

/// Writes the reports as a schema-valid bench-record JSON file at `path`
/// (exactly where given — no workspace-root or quick-mode redirection).
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_results_json(path: impl AsRef<Path>, reports: &[CampaignReport]) -> io::Result<()> {
    std::fs::write(path, format_bench_sections(&campaign_sections(reports)))
}
