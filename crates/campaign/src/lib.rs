//! The campaign front door of the MORE-Stress workspace.
//!
//! The lower crates expose one simulator at a time; real usage is a
//! *campaign* — the paper's `config.yml` shape: one geometry and
//! material set, N TSV arrays, a sweep of thermal loads, one solver
//! configuration. This crate turns that into a first-class, config-driven
//! surface:
//!
//! * [`CampaignSpec`] — the typed scenario model, parsed from a YAML
//!   subset ([`yaml`]) with [`SpecError`]s that carry the offending
//!   1-based line, and printed back canonically by
//!   [`CampaignSpec::to_yaml`] (exact round-trip).
//! * [`CampaignRunner`] — the concurrent job scheduler: many campaigns
//!   admitted together, bounded in-flight jobs, round-robin fairness
//!   across campaigns, one shared simulator (and
//!   [`FactorCache`](morestress_linalg::FactorCache)) per distinct
//!   model, per-job panic/fault containment, and deterministic
//!   campaign-canonical result ordering regardless of completion order.
//! * [`results`] — the stable numeric results schema: the same
//!   two-level `{section: {key: number}}` JSON as the bench artifacts,
//!   accepted by the `check_bench_json` CI gate.
//! * the `morestress` CLI binary — `morestress campaign run <spec.yml>`.
//!
//! ```
//! use morestress_campaign::{CampaignRunner, CampaignSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec::parse(
//!     "name: demo\n\
//!      geometry:\n\
//!     \x20 height: 50\n\
//!     \x20 pitch: 15\n\
//!     \x20 diameter: 5\n\
//!     \x20 thickness: 0.5\n\
//!      loads:\n\
//!     \x20 - -100\n\
//!      tsv_array:\n\
//!     \x20 - tsv_num_x: 2\n\
//!     \x20\x20  tsv_num_y: 2\n",
//! )?;
//! let reports = CampaignRunner::new().run(&[spec])?;
//! assert_eq!(reports[0].solved(), 1);
//! # Ok(())
//! # }
//! ```

pub mod results;
pub mod runner;
pub mod spec;
pub mod yaml;

pub use runner::{AdmissionOrder, CampaignReport, CampaignRunner, JobOutcome, JobReport};
pub use spec::{
    ArraySpec, CampaignSpec, MaterialSpec, ResolutionChoice, SolverChoice, SolverSpec, SpecError,
    SpecErrorKind, VerifyChoice,
};
pub use yaml::{YamlError, YamlErrorKind};
