//! The `morestress` command-line front door.
//!
//! ```text
//! morestress campaign run <spec.yml>... [--out results.json]
//! ```
//!
//! Parses each spec, admits all campaigns to one [`CampaignRunner`]
//! (same-model campaigns share a simulator and its factor cache), prints
//! a per-job table, and writes the numeric results record (the
//! `check_bench_json`-validated schema). Exits non-zero when a spec is
//! invalid, a model cannot be built, or any job fails.

use std::process::ExitCode;

use morestress_campaign::{results, CampaignRunner, CampaignSpec, JobOutcome};
use morestress_linalg::WorkPool;

const USAGE: &str = "usage: morestress campaign run <spec.yml>... [--out results.json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["campaign", "run", ..] => run(&args[2..]),
        ["--help"] | ["-h"] | [] => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut spec_paths = Vec::new();
    let mut out = String::from("campaign_results.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            match iter.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("--out needs a file argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            spec_paths.push(arg.clone());
        }
    }
    if spec_paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut specs = Vec::new();
    for path in &spec_paths {
        match CampaignSpec::from_file(path) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Run header: the effective runtime configuration, so logs record it.
    let env_or = |key: &str| std::env::var(key).unwrap_or_else(|_| "unset".to_string());
    println!("morestress campaign run");
    println!(
        "  workers: {} (MORESTRESS_THREADS={}, MORESTRESS_SHARDS={})",
        WorkPool::current().cap(),
        env_or("MORESTRESS_THREADS"),
        env_or("MORESTRESS_SHARDS"),
    );
    for (path, spec) in spec_paths.iter().zip(&specs) {
        println!(
            "  campaign `{}` ({path}): {} arrays x {} loads",
            spec.name,
            spec.arrays.len(),
            spec.loads.len()
        );
    }

    let reports = match CampaignRunner::new().run(&specs) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("model build failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut any_failed = false;
    for report in &reports {
        println!("\ncampaign `{}`:", report.name);
        for job in &report.jobs {
            match &job.outcome {
                JobOutcome::Solved {
                    peak_von_mises,
                    peak_displacement,
                    stats,
                    ..
                } => println!(
                    "  array {} dT={:>8.1}  peak vm {:>9.2} MPa  peak |u| {:>8.4} um  {:>7.1} ms",
                    job.array_index,
                    job.load,
                    peak_von_mises,
                    peak_displacement,
                    stats.wall_time.as_secs_f64() * 1e3,
                ),
                JobOutcome::Failed { error } => {
                    any_failed = true;
                    println!(
                        "  array {} dT={:>8.1}  FAILED: {error}",
                        job.array_index, job.load
                    );
                }
            }
        }
        println!(
            "  {} solved, {} failed; factor cache {} hits / {} misses",
            report.solved(),
            report.failed(),
            report.cache_hits,
            report.cache_misses,
        );
    }

    if let Err(e) = results::write_results_json(&out, &reports) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nresults: {out}");

    if any_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
