//! Spec-parser contract: the checked-in example parses, `to_yaml`
//! round-trips exactly, and malformed documents are rejected with typed
//! errors that point at the offending 1-based line.

use morestress_campaign::{
    CampaignSpec, ResolutionChoice, SolverChoice, SpecErrorKind, VerifyChoice, YamlErrorKind,
};

fn example_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaign.yml")
}

#[test]
fn checked_in_example_parses_and_round_trips() {
    let spec = CampaignSpec::from_file(example_path()).expect("examples/campaign.yml parses");
    assert_eq!(spec.name, "paper-tsv-arrays");
    assert_eq!(spec.materials.len(), 3);
    assert_eq!(spec.geometry.pitch, 15.0);
    assert_eq!(spec.geometry.liner, 0.5);
    assert_eq!(spec.loads, vec![-250.0, -100.0, 85.0]);
    assert_eq!(spec.arrays.len(), 2);
    assert_eq!(spec.arrays[0].dummy_tsv_num_x, 1);
    assert_eq!(spec.arrays[1].tsv_num_x, 4);
    assert_eq!(spec.arrays[1].dummy_tsv_num_y, 0);
    assert_eq!(spec.solver.interp_num, [3, 3, 3]);
    assert_eq!(spec.solver.resolution, ResolutionChoice::Coarse);
    assert_eq!(spec.solver.global_solver, SolverChoice::Direct);
    assert_eq!(spec.solver.verify, VerifyChoice::Report);
    assert!(spec.arrays[0].needs_dummy() && !spec.arrays[1].needs_dummy());

    // Exact round-trip: parse(to_yaml(spec)) == spec, bit for bit.
    let reparsed = CampaignSpec::parse(&spec.to_yaml()).expect("canonical form parses");
    assert_eq!(reparsed, spec);
    // And the canonical form is a fixed point.
    assert_eq!(reparsed.to_yaml(), spec.to_yaml());
}

#[test]
fn layout_places_tsv_core_inside_dummy_margins() {
    let spec = CampaignSpec::from_file(example_path()).unwrap();
    let layout = spec.arrays[0].layout(); // 3x3 core + 1-ring margins
    assert_eq!((layout.nx(), layout.ny()), (5, 5));
    assert_eq!(layout.count(morestress_mesh::BlockKind::Tsv), 9);
    assert_eq!(
        layout.kind(0, 0),
        morestress_mesh::BlockKind::Dummy,
        "corner is margin"
    );
    assert_eq!(
        layout.kind(2, 2),
        morestress_mesh::BlockKind::Tsv,
        "center is core"
    );
}

/// A minimal valid document the malformed-input tests mutate.
const MINIMAL: &str = "\
name: demo
geometry:
  height: 50
  pitch: 15
  diameter: 5
  thickness: 0.5
loads:
  - -100
tsv_array:
  - tsv_num_x: 2
    tsv_num_y: 2
";

#[test]
fn minimal_document_parses_with_solver_defaults() {
    let spec = CampaignSpec::parse(MINIMAL).expect("minimal spec parses");
    assert_eq!(spec.solver.interp_num, [3, 3, 3]);
    assert_eq!(spec.solver.global_solver, SolverChoice::Direct);
    assert_eq!(spec.solver.verify, VerifyChoice::Off);
    assert!(spec.materials.is_empty());
}

#[test]
fn bad_indent_is_rejected_with_line() {
    // Line 4: `pitch` indented deeper than its siblings.
    let text = MINIMAL.replace("\n  pitch:", "\n    pitch:");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.line, 4);
    assert_eq!(err.kind, SpecErrorKind::Yaml(YamlErrorKind::BadIndent));
}

#[test]
fn tab_indentation_is_rejected_with_line() {
    let text = MINIMAL.replace("\n  height:", "\n\theight:");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.line, 3);
    assert_eq!(err.kind, SpecErrorKind::Yaml(YamlErrorKind::Tab));
}

#[test]
fn duplicate_key_is_rejected_with_line() {
    let text = MINIMAL.replace("\n  pitch: 15", "\n  pitch: 15\n  pitch: 16");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.line, 5);
    assert_eq!(
        err.kind,
        SpecErrorKind::Yaml(YamlErrorKind::DuplicateKey("pitch".to_string()))
    );
}

#[test]
fn unknown_keys_are_rejected_with_line() {
    // Top level (after line 1), inside geometry (line 4), inside solver.
    let top = format!("{MINIMAL}frobnicate: 3\n");
    let err = CampaignSpec::parse(&top).unwrap_err();
    assert_eq!(err.line, 12);
    assert_eq!(
        err.kind,
        SpecErrorKind::UnknownKey("frobnicate".to_string())
    );

    let geo = MINIMAL.replace("\n  pitch: 15", "\n  pich: 15");
    let err = CampaignSpec::parse(&geo).unwrap_err();
    assert_eq!(err.line, 4);
    assert_eq!(err.kind, SpecErrorKind::UnknownKey("pich".to_string()));

    let solver = format!("{MINIMAL}solver:\n  solvr: direct\n");
    let err = CampaignSpec::parse(&solver).unwrap_err();
    assert_eq!(err.line, 13);
    assert_eq!(err.kind, SpecErrorKind::UnknownKey("solvr".to_string()));
}

#[test]
fn non_finite_numbers_are_rejected_with_line() {
    // `nan` and overflow-to-infinity literals both parse as f64 — and
    // both must be refused with the line they sit on.
    for bad in ["nan", "-inf", "1e999"] {
        let text = MINIMAL.replace("  - -100", &format!("  - {bad}"));
        let err = CampaignSpec::parse(&text).unwrap_err();
        assert_eq!(err.line, 8, "load literal `{bad}`");
        assert_eq!(err.kind, SpecErrorKind::NonFinite(bad.to_string()));
    }
    let text = MINIMAL.replace("  height: 50", "  height: tall");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.line, 3);
    assert_eq!(err.kind, SpecErrorKind::NonFinite("tall".to_string()));
}

#[test]
fn missing_required_keys_are_rejected() {
    let text = MINIMAL.replace("name: demo\n", "");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::MissingKey("name"));

    let text = MINIMAL.replace("  diameter: 5\n", "");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::MissingKey("diameter"));
}

#[test]
fn domain_violations_are_rejected() {
    // Geometry that cannot mesh: via wider than the block pitch.
    let text = MINIMAL.replace("  diameter: 5", "  diameter: 99");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::BadValue(_)), "{err}");

    // Physically impossible Poisson ratio must fail *here*, with a line,
    // not panic later inside `Material::new`.
    let text = format!(
        "{MINIMAL}materials:\n  - name: Cu\n    young_modulus: 110000\n    \
         poisson_ratio: 0.6\n    thermal_expansion_coefficient: 1.7e-5\n"
    );
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::BadValue(_)), "{err}");

    // Unknown material name.
    let text = format!(
        "{MINIMAL}materials:\n  - name: unobtanium\n    young_modulus: 1\n    \
         poisson_ratio: 0.3\n    thermal_expansion_coefficient: 1e-6\n"
    );
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.line, 13);
    assert!(matches!(err.kind, SpecErrorKind::BadValue(_)), "{err}");

    // Zero-size array.
    let text = MINIMAL.replace("tsv_num_x: 2", "tsv_num_x: 0");
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::BadValue(_)), "{err}");
}

#[test]
fn scalars_where_blocks_belong_are_rejected() {
    let text = MINIMAL.replace(
        "geometry:\n  height: 50\n  pitch: 15\n  diameter: 5\n  thickness: 0.5",
        "geometry: compact",
    );
    let err = CampaignSpec::parse(&text).unwrap_err();
    assert_eq!(err.line, 2);
    assert!(matches!(err.kind, SpecErrorKind::WrongShape(_)), "{err}");
}
