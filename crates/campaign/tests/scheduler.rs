//! Scheduler contract: deterministic results regardless of pool cap and
//! admission order, shared factor caches across same-model campaigns,
//! and per-job fault containment (typed failures and panics alike).

use morestress_campaign::{
    AdmissionOrder, ArraySpec, CampaignReport, CampaignRunner, CampaignSpec, JobOutcome, SolverSpec,
};
use morestress_linalg::{FaultPlan, WorkPool};
use morestress_mesh::TsvGeometry;

fn base_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        materials: Vec::new(),
        geometry: TsvGeometry::paper_defaults(15.0),
        loads: vec![-250.0, 85.0],
        arrays: vec![
            ArraySpec {
                tsv_num_x: 2,
                tsv_num_y: 1,
                dummy_tsv_num_x: 0,
                dummy_tsv_num_y: 0,
            },
            ArraySpec {
                tsv_num_x: 1,
                tsv_num_y: 2,
                dummy_tsv_num_x: 0,
                dummy_tsv_num_y: 0,
            },
        ],
        solver: SolverSpec::default(),
    }
}

/// The scheduling-independent projection of a run: everything except
/// wall times and cache tallies must be identical across pool caps and
/// admission orders.
fn deterministic_core(reports: &[CampaignReport]) -> Vec<(String, usize, usize, u64, Vec<u64>)> {
    reports
        .iter()
        .flat_map(|r| r.jobs.iter())
        .map(|job| {
            let outcome = match &job.outcome {
                JobOutcome::Solved {
                    checksum,
                    peak_displacement,
                    peak_von_mises,
                    stats,
                } => vec![
                    1,
                    *checksum,
                    peak_displacement.to_bits(),
                    peak_von_mises.to_bits(),
                    stats.total_dofs as u64,
                    stats.free_dofs as u64,
                    stats.shards as u64,
                ],
                JobOutcome::Failed { error } => {
                    vec![0, error.len() as u64]
                }
            };
            (
                job.campaign.clone(),
                job.array_index,
                job.load_index,
                job.load.to_bits(),
                outcome,
            )
        })
        .collect()
}

#[test]
fn results_are_identical_across_pool_caps_and_admission_orders() {
    let specs = [base_spec("alpha"), {
        let mut spec = base_spec("beta");
        spec.loads = vec![-100.0, 42.0, 7.5];
        spec.arrays.truncate(1);
        spec
    }];

    let run = |cap: usize, order: AdmissionOrder| {
        WorkPool::new(cap).install(|| {
            CampaignRunner::new()
                .admission(order)
                .run(&specs)
                .expect("campaigns run")
        })
    };

    let baseline = run(1, AdmissionOrder::Sequential);
    assert_eq!(baseline.len(), 2);
    assert_eq!(baseline[0].solved() + baseline[1].solved(), 7);
    let core = deterministic_core(&baseline);
    // Canonical report order, independent of everything.
    assert_eq!(core[0].0, "alpha");
    assert!(core
        .windows(2)
        .all(|w| w[0].0 < w[1].0 || (w[0].1, w[0].2) < (w[1].1, w[1].2)));

    for (cap, order) in [
        (2, AdmissionOrder::RoundRobin),
        (8, AdmissionOrder::RoundRobin),
        (8, AdmissionOrder::Sequential),
    ] {
        let reports = run(cap, order);
        assert_eq!(
            deterministic_core(&reports),
            core,
            "cap {cap}, {order:?} must reproduce the serial run bitwise"
        );
    }
}

#[test]
fn same_model_campaigns_share_one_factor_cache() {
    let first = base_spec("first");
    let mut second = base_spec("second");
    second.loads = vec![-150.0, 60.0]; // different loads, same model + lattices

    // Serial admission makes the cache tallies exact: the two campaigns
    // cover 2 distinct lattices x 4 solves each = 2 misses, 6 hits —
    // *across* campaigns, provable only if they share one cache.
    let reports = WorkPool::new(1).install(|| {
        CampaignRunner::new()
            .admission(AdmissionOrder::Sequential)
            .run(&[first, second])
            .expect("campaigns run")
    });
    assert_eq!(reports[0].solved(), 4);
    assert_eq!(reports[1].solved(), 4);
    for report in &reports {
        assert_eq!(report.cache_misses, 2, "one miss per distinct lattice");
        assert_eq!(report.cache_hits, 6, "every other solve reuses a factor");
    }
}

#[test]
fn poisoned_load_fails_one_job_not_the_campaign() {
    let mut spec = base_spec("poisoned");
    spec.arrays.truncate(1);
    spec.loads = vec![-250.0, -100.0, 42.0, 85.0];
    // Deterministic fault-site selection, same idiom as the PR 8 suite.
    let victim = FaultPlan::new(0xC0FFEE).pick(spec.loads.len());
    spec.loads[victim] = f64::NAN;

    let reports =
        WorkPool::new(8).install(|| CampaignRunner::new().run(&[spec]).expect("campaign runs"));
    let report = &reports[0];
    assert_eq!(report.solved(), 3);
    assert_eq!(report.failed(), 1);
    for job in &report.jobs {
        match &job.outcome {
            JobOutcome::Failed { error } => {
                assert_eq!(job.load_index, victim);
                assert!(error.contains("not finite"), "typed failure, got: {error}");
            }
            JobOutcome::Solved { .. } => assert_ne!(job.load_index, victim),
        }
    }
}

#[test]
fn panicking_job_is_contained_with_its_message() {
    let mut spec = base_spec("panicky");
    spec.loads = vec![-250.0];
    // An empty array: `BlockLayout::uniform(0, 0, ..)` asserts inside the
    // job — the panic must become that job's Failed outcome, not sink
    // the run (scope_workers would otherwise rethrow it).
    spec.arrays.push(ArraySpec {
        tsv_num_x: 0,
        tsv_num_y: 0,
        dummy_tsv_num_x: 0,
        dummy_tsv_num_y: 0,
    });

    let reports = WorkPool::new(2).install(|| {
        CampaignRunner::new()
            .run(&[spec])
            .expect("campaign completes")
    });
    let report = &reports[0];
    assert_eq!(report.solved(), 2);
    assert_eq!(report.failed(), 1);
    let failed = report
        .jobs
        .iter()
        .find(|j| !j.outcome.is_solved())
        .expect("the empty array fails");
    assert_eq!(failed.array_index, 2);
    match &failed.outcome {
        JobOutcome::Failed { error } => {
            assert!(
                error.contains("panic") && error.contains("non-empty"),
                "panic payload surfaced: {error}"
            );
        }
        JobOutcome::Solved { .. } => unreachable!(),
    }
}
