//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the real `criterion` cannot be fetched. This crate
//! implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer that
//! prints one line per benchmark.
//!
//! It understands the flags cargo passes to `harness = false` bench
//! targets: `--bench` is accepted and ignored, `--test` switches to a
//! one-iteration smoke run, and a positional argument filters benchmarks
//! by substring.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark inside a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter display.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                "--test" => smoke = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self { filter, smoke }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, "", &id.label, 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub keeps its fixed schedule.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.criterion, &self.name, &id.label, self.sample_size, f);
        self
    }

    /// Times `f` with a borrowed input under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            self.criterion,
            &self.name,
            &id.label,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// The per-benchmark timer handed to the closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
        }
    }
}

fn run_one<F>(criterion: &Criterion, group: &str, label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if let Some(filter) = &criterion.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.smoke {
        let mut b = Bencher {
            iters: 1,
            ..Bencher::default()
        };
        f(&mut b);
        println!("{full}: smoke ok");
        return;
    }
    // Warm-up pass, then `sample_size` timed samples of one iteration each.
    let mut warm = Bencher {
        iters: 1,
        ..Bencher::default()
    };
    f(&mut warm);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: 1,
            ..Bencher::default()
        };
        f(&mut b);
        samples.push(b.elapsed);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{full}: median {median:?} (min {min:?}, max {max:?}, {n} samples)",
        n = samples.len()
    );
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            smoke: true,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("keep_me", |b| {
                b.iter(|| black_box(1 + 1));
                ran.push("keep");
            });
            g.bench_with_input(BenchmarkId::new("skip", 4), &4usize, |b, &n| {
                b.iter(|| black_box(n * 2));
                ran.push("skip");
            });
            g.finish();
        }
        assert_eq!(ran, vec!["keep"]);
    }

    #[test]
    fn bencher_accumulates() {
        let mut b = Bencher {
            iters: 5,
            ..Bencher::default()
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 5);
    }
}
