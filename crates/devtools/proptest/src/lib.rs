//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the real `proptest` cannot be fetched. This crate
//! re-implements exactly the subset the workspace's property tests use:
//!
//! * range strategies (`0..n`, `-1.0f64..1.0`), tuple strategies,
//!   [`Just`], `any::<bool>()`;
//! * `prop::collection::vec` (exact or ranged length) and
//!   `prop::array::uniform6`;
//! * [`Strategy::prop_map`](strategy::Strategy::prop_map) and
//!   [`Strategy::prop_flat_map`](strategy::Strategy::prop_flat_map);
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Values are generated from a deterministic splitmix64 stream seeded from
//! the test name and case index, so failures are reproducible run-to-run.
//! There is no shrinking: a failing case panics with the generated inputs
//! visible in the assertion message.

/// Deterministic random source handed to strategies.
pub mod test_runner {
    /// A splitmix64 generator — tiny, fast, and statistically fine for
    /// test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range handed to the test rng");
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }

    /// Stable seed for `(test name, case index)` pairs.
    pub fn seed_for(name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then a value from the strategy
        /// `f` derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, moderate magnitudes — the useful testing domain.
            (rng.next_f64() - 0.5) * 2.0e6
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T` (`any::<bool>()` et al.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of `size` values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform6`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by the `uniformN` constructors.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident/$n:literal),*) => {$(
            /// An array of values drawn independently from `elem`.
            pub fn $name<S: Strategy>(elem: S) -> UniformArray<S, $n> {
                UniformArray { elem }
            }
        )*};
    }
    uniform_ctor!(
        uniform2 / 2,
        uniform3 / 3,
        uniform4 / 4,
        uniform6 / 6,
        uniform8 / 8
    );
}

/// Namespace mirror of the real crate (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

pub use strategy::{any, Just};

/// Per-block configuration consumed by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Asserts a property-level condition (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Skips the current generated case when the assumption fails.
///
/// Expands to a `continue` of the case loop, so it must appear at the top
/// level of a `proptest!` body (not inside a nested loop) — which matches
/// how the real crate is used in this workspace.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        $crate::test_runner::seed_for(
                            concat!(module_path!(), "::", stringify!($name)),
                            __case,
                        ),
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __rng,
                    );)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(n in 2usize..8, x in -0.5f64..1.5) {
            prop_assert!((2..8).contains(&n));
            prop_assert!((-0.5..1.5).contains(&x));
        }

        /// Vec lengths respect the size range; tuple + map compose.
        #[test]
        fn vec_and_map(v in prop::collection::vec((0usize..5, -1.0f64..1.0), 1..9),
                       arr in prop::array::uniform6(-2.0f64..2.0)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (i, x) in &v {
                prop_assert!(*i < 5 && x.abs() <= 1.0);
            }
            prop_assert_eq!(arr.len(), 6);
        }

        /// Just + prop_flat_map drive dependent generation.
        #[test]
        fn flat_map_dependent(pair in Just(3usize).prop_flat_map(|n| {
            prop::collection::vec(0usize..10, n..(n + 1)).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.1.len(), pair.0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::{seed_for, TestRng};
        let mut a = TestRng::from_seed(seed_for("x", 0));
        let mut b = TestRng::from_seed(seed_for("x", 0));
        assert_eq!((0..100u64).generate(&mut a), (0..100u64).generate(&mut b));
    }
}
