//! `SimulatorBuilder` equivalence: the builder front door must
//! reproduce the deprecated constructor paths bit for bit — same
//! displacements, same backend resolution — so callers can migrate
//! without re-baselining anything.

#![allow(deprecated)]

use morestress_core::{
    GlobalBc, InterpolationGrid, MoreStressSimulator, RomSolver, SimulatorBuilder, SimulatorOptions,
};
use morestress_fem::MaterialSet;
use morestress_mesh::{BlockKind, BlockLayout, BlockResolution, TsvGeometry};

fn solve_bits(sim: &MoreStressSimulator, layout: &BlockLayout) -> Vec<u64> {
    let solution = sim
        .solve_array(layout, -250.0, &GlobalBc::ClampedTopBottom)
        .expect("solve");
    solution
        .nodal_displacement()
        .iter()
        .map(|u| u.to_bits())
        .collect()
}

#[test]
fn builder_defaults_match_deprecated_build() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);

    let via_builder = MoreStressSimulator::builder(&geom)
        .build()
        .expect("builder");
    let via_deprecated = MoreStressSimulator::build(
        &geom,
        &BlockResolution::coarse(),
        InterpolationGrid::new([3, 3, 3]),
        &MaterialSet::tsv_defaults(),
        &SimulatorOptions::default(),
    )
    .expect("deprecated build");

    assert_eq!(
        solve_bits(&via_builder, &layout),
        solve_bits(&via_deprecated, &layout),
        "default builder must be bitwise identical to the old constructor"
    );
}

#[test]
fn builder_knobs_match_deprecated_options() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let layout = BlockLayout::uniform(3, 2, BlockKind::Tsv);

    let via_builder = MoreStressSimulator::builder(&geom)
        .solver(RomSolver::DirectCholesky)
        .shards(2)
        .build()
        .expect("builder");

    let opts = SimulatorOptions {
        solver: RomSolver::DirectCholesky,
        shards: Some(2),
        ..SimulatorOptions::default()
    };
    let via_deprecated = MoreStressSimulator::build(
        &geom,
        &BlockResolution::coarse(),
        InterpolationGrid::new([3, 3, 3]),
        &MaterialSet::tsv_defaults(),
        &opts,
    )
    .expect("deprecated build");

    let builder_bits = solve_bits(&via_builder, &layout);
    assert_eq!(
        builder_bits,
        solve_bits(&via_deprecated, &layout),
        "shards + solver knobs must route identically"
    );
}

#[test]
fn from_models_builder_matches_deprecated_wrapper() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);

    // One local stage, reused by both construction paths.
    let donor = MoreStressSimulator::builder(&geom).build().expect("donor");
    let rom = donor.tsv_model().clone();

    let via_builder = SimulatorBuilder::from_models(rom.clone(), None)
        .solver(RomSolver::DirectCholesky)
        .build()
        .expect("builder from_models");
    let via_deprecated = MoreStressSimulator::from_models(rom, None, RomSolver::DirectCholesky)
        .expect("deprecated from_models");

    assert_eq!(
        solve_bits(&via_builder, &layout),
        solve_bits(&via_deprecated, &layout),
        "from_models paths must agree bitwise"
    );
}
