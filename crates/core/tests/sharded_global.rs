//! Sharded-global-stage suite: the Schur-complement path must agree with
//! the monolithic direct solve on the full pipeline, route through the
//! factor cache, and honor the `SimulatorOptions::shards` knob.
//!
//! CI runs this suite across `MORESTRESS_THREADS ∈ {1, 8}` ×
//! `MORESTRESS_SHARDS ∈ {1, 4}`: the thread axis exercises serial vs
//! saturated pools (the sharded results are bitwise cap-invariant, pinned
//! in `thread_invariance.rs`), the shard axis exercises the monolithic
//! degenerate case (`shards = 1` collapses to one interior block) and a
//! real 4-way decomposition through one code path. The agreement bar is
//! ≤ 1e-8 *relative*: sharding changes the elimination order, so exact
//! bit equality with the monolithic factor is not expected — but the
//! condensation is algebraically exact, so everything beyond rounding is.

use morestress_core::{
    GlobalBc, GlobalStage, InterpolationGrid, LocalStage, LocalStageOptions, MoreStressSimulator,
    ReducedOrderModel, RomSolver,
};
use morestress_fem::MaterialSet;
use morestress_linalg::{ShardPlan, Sharded};
use morestress_mesh::{BlockKind, BlockLayout, BlockResolution, TsvGeometry};

/// Shard count under test: `MORESTRESS_SHARDS` when set (the CI matrix
/// pins 1 and 4), else 4.
fn env_shards() -> usize {
    std::env::var("MORESTRESS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn build_rom(kind: BlockKind) -> ReducedOrderModel {
    LocalStage::new(
        &TsvGeometry::paper_defaults(15.0),
        &BlockResolution::coarse(),
        InterpolationGrid::new([3, 3, 3]),
        &MaterialSet::tsv_defaults(),
        kind,
    )
    .build(&LocalStageOptions::default())
    .expect("local stage builds")
}

fn assert_rel_close(label: &str, tol: f64, reference: &[f64], candidate: &[f64]) {
    assert_eq!(reference.len(), candidate.len(), "{label}: length");
    let scale = reference
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1e-30);
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        assert!(
            (a - b).abs() <= tol * scale,
            "{label}: entry {i} differs beyond {tol:.0e} relative: {a} vs {b}"
        );
    }
}

/// The acceptance case: on the 6×6-array pipeline, every sharded solve
/// (K ≥ 2) agrees with the monolithic `DirectCholesky` solve to ≤ 1e-8
/// relative, and the report carries honest shard telemetry.
#[test]
fn sharded_pipeline_matches_monolithic_on_6x6_array() {
    let rom = build_rom(BlockKind::Tsv);
    let layout = BlockLayout::uniform(6, 6, BlockKind::Tsv);
    let loads = [-250.0, -120.0, 60.0];
    let reference = GlobalStage::new(&rom)
        .with_solver(RomSolver::DirectCholesky)
        .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
        .expect("monolithic solve");

    let mut counts = vec![2usize, 4];
    let env = env_shards();
    if !counts.contains(&env) {
        counts.push(env);
    }
    for shards in counts {
        let batch = GlobalStage::new(&rom)
            .with_solver(RomSolver::Sharded { shards })
            .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
            .expect("sharded solve");
        let stats = batch[0].stats;
        assert_eq!(stats.backend, "sharded");
        if shards >= 2 {
            assert!(
                stats.shards >= 2,
                "6×6 reduced operator must split for request {shards}, got {}",
                stats.shards
            );
            assert!(stats.interface_dofs > 0);
            assert!(stats.shard_factor_bytes > 0);
        }
        assert!(stats.shards <= shards.max(1));
        for (r, c) in reference.iter().zip(&batch) {
            assert_rel_close(
                &format!("sharded({shards}) nodal displacement"),
                1e-8,
                r.nodal_displacement(),
                c.nodal_displacement(),
            );
        }
    }
}

/// The env-parameterized case the CI matrix drives: `MORESTRESS_SHARDS`
/// shards (1 = the monolithic degenerate plan) against the monolithic
/// reference, submodel boundary conditions included.
#[test]
fn env_shard_count_agrees_under_submodel_bcs() {
    let shards = env_shards();
    let tsv = build_rom(BlockKind::Tsv);
    let dummy = build_rom(BlockKind::Dummy);
    let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv).padded(1);
    let bc = GlobalBc::SubmodelBoundary(std::sync::Arc::new(|p: [f64; 3]| {
        [1e-4 * p[0], -2e-4 * p[1], 5e-5 * (p[2] - 25.0)]
    }));
    let reference = GlobalStage::new(&tsv)
        .with_dummy(&dummy)
        .expect("compatible ROMs")
        .with_solver(RomSolver::DirectCholesky)
        .solve_many(&layout, &[-250.0, 75.0], &bc)
        .expect("monolithic solve");
    let batch = GlobalStage::new(&tsv)
        .with_dummy(&dummy)
        .expect("compatible ROMs")
        .with_solver(RomSolver::Sharded { shards })
        .solve_many(&layout, &[-250.0, 75.0], &bc)
        .expect("sharded solve");
    for (r, c) in reference.iter().zip(&batch) {
        assert_rel_close(
            &format!("sharded({shards}) submodel displacement"),
            1e-8,
            r.nodal_displacement(),
            c.nodal_displacement(),
        );
    }
}

/// `SimulatorOptions::shards` routes every solve through the sharded
/// backend and still pays for exactly one preparation per lattice via the
/// simulator's `FactorCache`.
#[test]
fn simulator_shards_knob_routes_and_caches() {
    let sim = MoreStressSimulator::builder(&TsvGeometry::paper_defaults(15.0))
        .shards(env_shards())
        .build()
        .expect("simulator builds");
    let layout = BlockLayout::uniform(4, 4, BlockKind::Tsv);
    let bc = GlobalBc::ClampedTopBottom;
    let cold = sim
        .solve_array_many(&layout, &[-250.0, -100.0], &bc)
        .expect("cold sharded solve");
    assert_eq!(cold[0].stats.backend, "sharded");
    assert_eq!(sim.factor_cache().misses(), 1, "one sharded preparation");
    let warm = sim
        .solve_array_many(&layout, &[-250.0, -100.0], &bc)
        .expect("warm sharded solve");
    assert_eq!(
        sim.factor_cache().misses(),
        1,
        "warm solve must reuse the prepared sharded solver"
    );
    assert!(sim.factor_cache().hits() >= 1);
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(
            a.nodal_displacement(),
            b.nodal_displacement(),
            "cold and warm sharded solves must agree bitwise"
        );
    }
}

/// PR 9 acceptance: the default route through the pipeline is the
/// geometry-aware planner. On the 6×6 reduced operator at K = 4 it must
/// produce four non-singleton interior shards, keep the work balance
/// within the 2× bound, and cut an interface no larger than the graph
/// planner's 339-DoF record — all surfaced on `GlobalStats::plan_stats`.
#[test]
fn geometric_planner_is_the_default_route_on_6x6() {
    let rom = build_rom(BlockKind::Tsv);
    let layout = BlockLayout::uniform(6, 6, BlockKind::Tsv);
    let loads = [-250.0, 75.0];
    let reference = GlobalStage::new(&rom)
        .with_solver(RomSolver::DirectCholesky)
        .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
        .expect("monolithic solve");
    let batch = GlobalStage::new(&rom)
        .with_solver(RomSolver::Sharded { shards: 4 })
        .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
        .expect("sharded solve");
    let stats = batch[0].stats;
    let plan = stats.plan_stats.expect("sharded solves report plan stats");
    assert!(
        plan.geometric,
        "6×6 with a hint must take the geometric route"
    );
    assert_eq!(plan.shards, 4, "K = 4 quadrant decomposition");
    assert!(
        plan.min_shard_rows >= ShardPlan::MIN_SHARD_ROWS,
        "no singleton/sub-floor shards: min rows {}",
        plan.min_shard_rows
    );
    assert!(
        plan.balance_ratio <= 2.0,
        "max/mean interior work must stay within 2×, got {}",
        plan.balance_ratio
    );
    assert!(
        plan.interface_dofs <= 339,
        "geometric interface ({} DoFs) must not exceed the graph planner's 339",
        plan.interface_dofs
    );
    assert_eq!(plan.interface_dofs, stats.interface_dofs);
    for (r, c) in reference.iter().zip(&batch) {
        assert_rel_close(
            "geometric-plan nodal displacement",
            1e-8,
            r.nodal_displacement(),
            c.nodal_displacement(),
        );
    }
}

/// Regression for the graph-planner singleton defect: with the hint
/// disabled (`Sharded::without_hint`), the fallback planner must never
/// emit a shard below the minimum-rows floor on the 3×3 and 6×6 reduced
/// operators — it merges sub-floor fragments instead.
#[test]
fn graph_fallback_never_emits_singleton_shards() {
    let rom = build_rom(BlockKind::Tsv);
    for n in [3usize, 6] {
        let layout = BlockLayout::uniform(n, n, BlockKind::Tsv);
        let loads = [-250.0];
        let reference = GlobalStage::new(&rom)
            .with_solver(RomSolver::DirectCholesky)
            .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
            .expect("monolithic solve");
        let backend = Sharded::new(4).without_hint();
        let batch = GlobalStage::new(&rom)
            .with_backend(&backend)
            .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
            .expect("graph-planner solve");
        let stats = batch[0].stats;
        let plan = stats.plan_stats.expect("sharded solves report plan stats");
        assert!(
            !plan.geometric,
            "{n}×{n}: without_hint must pin the graph planner"
        );
        if plan.shards >= 2 {
            assert!(
                plan.min_shard_rows >= ShardPlan::MIN_SHARD_ROWS,
                "{n}×{n}: graph plan emitted a {}-row shard below the floor",
                plan.min_shard_rows
            );
        }
        for (r, c) in reference.iter().zip(&batch) {
            assert_rel_close(
                &format!("{n}×{n} graph-plan nodal displacement"),
                1e-8,
                r.nodal_displacement(),
                c.nodal_displacement(),
            );
        }
    }
}

/// `shards = 1` through the sharded route produces the monolithic bits:
/// the single-block plan factors the whole operator with the same inner
/// backend and the same panel sweeps.
#[test]
fn one_shard_request_is_bitwise_monolithic() {
    let rom = build_rom(BlockKind::Tsv);
    let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv);
    let loads = [-250.0, 40.0];
    let mono = GlobalStage::new(&rom)
        .with_solver(RomSolver::DirectCholesky)
        .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
        .expect("monolithic solve");
    let sharded = GlobalStage::new(&rom)
        .with_solver(RomSolver::Sharded { shards: 1 })
        .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
        .expect("one-shard solve");
    assert_eq!(sharded[0].stats.shards, 1);
    assert_eq!(sharded[0].stats.interface_dofs, 0);
    for (m, s) in mono.iter().zip(&sharded) {
        assert_eq!(
            m.nodal_displacement(),
            s.nodal_displacement(),
            "one-shard solve must equal the monolithic bits"
        );
    }
}
