//! Thread-invariance suite: every parallel stage must produce the same
//! numbers whatever the [`WorkPool`] cap.
//!
//! The pool assigns tasks dynamically, so scheduling differs run-to-run and
//! cap-to-cap — but every stage writes to disjoint, index-addressed slots
//! and never reduces across tasks in scheduling order, so the *results*
//! must be invariant. This suite pins that down for pool caps {1, 2, 8, 33}
//! (serial, minimal, saturated, and beyond-the-hardware oversubscribed)
//! across the local stage, the batched multi-RHS global solve, stress
//! reconstruction, and the full `solve_array_many` pipeline.
//!
//! Stages whose tasks are fully independent (one Cholesky/CG/GMRES solve
//! per right-hand side, one tile per block) are required to be *bitwise*
//! identical; the end-to-end pipeline is additionally accepted at ≤1e-12
//! relative, which is what the ISSUE's acceptance criterion names.

use morestress_core::{
    sample_array_von_mises, GlobalBc, GlobalStage, InterpolationGrid, LocalStage,
    LocalStageOptions, MoreStressSimulator, ReducedOrderModel, RomSolver,
};
use morestress_fem::MaterialSet;
use morestress_linalg::{
    CholeskyKernel, CooMatrix, DirectCholesky, FactorCache, FillOrdering, KernelChoice, Sharded,
    SolverBackend, SupernodalCholesky, SupernodalOptions, WorkPool,
};
use morestress_mesh::{BlockKind, BlockLayout, BlockResolution, TsvGeometry};

/// Serial reference first, then the caps that must reproduce it.
const REFERENCE_CAP: usize = 1;
const CAPS: [usize; 3] = [2, 8, 33];

fn build_rom(kind: BlockKind) -> ReducedOrderModel {
    LocalStage::new(
        &TsvGeometry::paper_defaults(15.0),
        &BlockResolution::coarse(),
        InterpolationGrid::new([3, 3, 3]),
        &MaterialSet::tsv_defaults(),
        kind,
    )
    // Request far more workers than any pool under test has: the pool cap,
    // not the request, must bound (and determine) the parallelism.
    .build(&LocalStageOptions { threads: 64 })
    .expect("local stage builds")
}

fn assert_bitwise(label: &str, cap: usize, reference: &[f64], candidate: &[f64]) {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "{label}: length at cap {cap}"
    );
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        assert!(
            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
            "{label}: entry {i} differs at pool cap {cap}: {a:?} vs {b:?}"
        );
    }
}

fn assert_close(label: &str, cap: usize, reference: &[f64], candidate: &[f64]) {
    let scale = reference
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1e-30);
    assert_eq!(
        reference.len(),
        candidate.len(),
        "{label}: length at cap {cap}"
    );
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        if a.is_nan() && b.is_nan() {
            continue;
        }
        assert!(
            (a - b).abs() <= 1e-12 * scale,
            "{label}: entry {i} differs at pool cap {cap}: {a} vs {b}"
        );
    }
}

#[test]
fn local_stage_is_pool_size_invariant() {
    let reference = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Tsv));
    for cap in CAPS {
        let rom = WorkPool::new(cap).install(|| build_rom(BlockKind::Tsv));
        let (ra, ca) = (reference.element_stiffness(), rom.element_stiffness());
        assert_bitwise("A_elem", cap, ra.as_slice(), ca.as_slice());
        assert_bitwise("b_elem", cap, reference.element_load(), rom.element_load());
        assert_bitwise(
            "thermal basis",
            cap,
            reference.thermal_basis(),
            rom.thermal_basis(),
        );
    }
}

#[test]
fn batched_global_solve_is_pool_size_invariant() {
    let rom = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Tsv));
    let layout = BlockLayout::uniform(3, 2, BlockKind::Tsv);
    let loads = [-250.0, -100.0, 40.0, 300.0, -25.0, 10.0, -60.0];
    // Both a direct and an iterative backend: each right-hand side is an
    // independent task, so both must be schedule-independent.
    for solver in [RomSolver::DirectCholesky, RomSolver::Gmres { tol: 1e-10 }] {
        let solve = |cap: usize| {
            WorkPool::new(cap).install(|| {
                GlobalStage::new(&rom)
                    .with_solver(solver)
                    .with_threads(64)
                    .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
                    .expect("batched solve")
            })
        };
        let reference = solve(REFERENCE_CAP);
        assert_eq!(reference[0].stats.workers, 1, "cap-1 pool must run serial");
        for cap in CAPS {
            let batch = solve(cap);
            assert!(
                batch[0].stats.workers <= cap,
                "{solver:?}: {} workers exceed pool cap {cap}",
                batch[0].stats.workers
            );
            for (r, c) in reference.iter().zip(&batch) {
                assert_bitwise(
                    "nodal displacement",
                    cap,
                    r.nodal_displacement(),
                    c.nodal_displacement(),
                );
            }
        }
    }
}

#[test]
fn panel_multi_rhs_solves_are_pool_size_invariant() {
    // The pool-distributed panel path of `PreparedSolver::solve_many`:
    // panel partitioning depends only on (batch size, panel width), never
    // on the worker count, and per column the blocked sweeps execute the
    // single-RHS operation sequence — so the batch must be bitwise
    // identical at every pool cap, for both direct kernels and for batch
    // sizes that straddle panel boundaries.
    let n = 143; // deliberately not a multiple of any panel width
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0 + ((i * 7) % 5) as f64 * 0.25);
        if i > 0 {
            coo.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
        }
        if i + 11 < n {
            coo.push(i, i + 11, -0.5);
            coo.push(i + 11, i, -0.5);
        }
    }
    let a = std::sync::Arc::new(coo.to_csr());
    let loads: Vec<Vec<f64>> = (0..19)
        .map(|k| {
            (0..n)
                .map(|i| ((i * (k + 2) + 3 * k) % 13) as f64 - 6.0)
                .collect()
        })
        .collect();
    for kernel in [CholeskyKernel::Supernodal, CholeskyKernel::Scalar] {
        for panel_width in [1usize, 4, 8] {
            let backend = DirectCholesky {
                kernel,
                panel_width,
                ..DirectCholesky::default()
            };
            let solve = |cap: usize| {
                WorkPool::new(cap).install(|| {
                    let prepared = backend.prepare(std::sync::Arc::clone(&a)).expect("SPD");
                    prepared.solve_many(&loads, 64).expect("batched solve").xs
                })
            };
            let reference = solve(REFERENCE_CAP);
            for cap in CAPS {
                let xs = solve(cap);
                for (r, c) in reference.iter().zip(&xs) {
                    assert_bitwise(&format!("{kernel:?} panel_width={panel_width}"), cap, r, c);
                }
            }
        }
    }
}

#[test]
fn supernodal_factor_is_pool_size_invariant_per_kernel() {
    // The per-kernel determinism contract of the microkernel layer: for
    // *each* resolved kernel (scalar oracle, blocked mul_add tiles, and —
    // under the `simd` feature on AVX2 hardware — the intrinsics kernel),
    // the elimination-tree-parallel factorization must be bitwise
    // identical to the serial sweep at every pool cap. Run at the default
    // chunk budget and at a tiny one that forces update-chunk tasks plus
    // their reduction-tree combines into the DAG.
    let nx = 17;
    let ny = 13;
    let n = nx * ny;
    let id = |i: usize, j: usize| j * nx + i;
    let mut coo = CooMatrix::new(n, n);
    for j in 0..ny {
        for i in 0..nx {
            let me = id(i, j);
            coo.push(me, me, 4.1 + ((me * 7) % 5) as f64 * 0.05);
            if i > 0 {
                coo.push(me, id(i - 1, j), -1.0);
            }
            if i + 1 < nx {
                coo.push(me, id(i + 1, j), -1.0);
            }
            if j > 0 {
                coo.push(me, id(i, j - 1), -1.0);
            }
            if j + 1 < ny {
                coo.push(me, id(i, j + 1), -1.0);
            }
        }
    }
    let a = coo.to_csr();
    let b: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
    let perm = FillOrdering::NestedDissection.permutation(&a);
    for &kernel in KernelChoice::available() {
        for chunk_work in [SupernodalOptions::default().chunk_work, 512] {
            let opts = SupernodalOptions {
                kernel,
                chunk_work,
                ..SupernodalOptions::default()
            };
            let factor = |cap: usize| {
                WorkPool::new(cap).install(|| {
                    SupernodalCholesky::factor_with_permutation(&a, perm.clone(), &opts)
                        .expect("SPD")
                })
            };
            let reference = factor(REFERENCE_CAP);
            assert_eq!(reference.kernel_name(), kernel.resolved_name());
            let x_ref = reference.solve(&b);
            for cap in CAPS {
                let parallel = factor(cap);
                assert!(parallel.factor_workers() <= cap);
                let label = format!(
                    "{} factor (chunk_work {chunk_work})",
                    kernel.resolved_name()
                );
                assert_bitwise(
                    &label,
                    cap,
                    reference.factor_values(),
                    parallel.factor_values(),
                );
                assert_bitwise(&label, cap, &x_ref, &parallel.solve(&b));
            }
        }
    }
}

#[test]
fn cold_factorization_pipeline_is_pool_size_invariant() {
    // The PR-4 cold path: a fresh `FactorCache` per run forces the
    // elimination-tree-parallel numeric factorization (not just the
    // triangular sweeps) to run inside every install scope, end to end
    // through assembly → parallel factor → batched panel solve. The factor
    // is bitwise identical to the serial sweep at every cap, so the nodal
    // solutions must be too.
    let rom = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Tsv));
    let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv);
    let loads = [-250.0, -120.0, 75.0, 10.0, 300.0];
    let solve = |cap: usize| {
        WorkPool::new(cap).install(|| {
            let cache = FactorCache::new();
            let batch = GlobalStage::new(&rom)
                .with_solver(RomSolver::DirectCholesky)
                .with_cache(&cache)
                .with_threads(64)
                .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
                .expect("cold batched solve");
            assert_eq!(cache.misses(), 1, "cold run must factor exactly once");
            batch
        })
    };
    let reference = solve(REFERENCE_CAP);
    assert_eq!(
        reference[0].stats.factor_workers, 1,
        "cap-1 pool must factor serially"
    );
    for cap in CAPS {
        let batch = solve(cap);
        assert!(
            batch[0].stats.factor_workers <= cap,
            "{} factor workers exceed pool cap {cap}",
            batch[0].stats.factor_workers
        );
        for (r, c) in reference.iter().zip(&batch) {
            assert_bitwise(
                "cold-path nodal displacement",
                cap,
                r.nodal_displacement(),
                c.nodal_displacement(),
            );
        }
    }
}

#[test]
fn sharded_global_solve_is_pool_size_invariant() {
    // The sharded (Schur-complement) path at a fixed shard count: plan
    // construction, concurrent shard factorization, Schur assembly and the
    // staged interface-then-interiors sweeps are all structural or
    // serial-ordered, so the result must be bitwise identical at every
    // pool cap — and, at any cap, within 1e-8 relative of the monolithic
    // direct solve (sharding changes the elimination order, so exact bit
    // equality with the monolithic factor is not expected).
    const SHARDS: usize = 4;
    let rom = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Tsv));
    let layout = BlockLayout::uniform(5, 5, BlockKind::Tsv);
    let loads = [-250.0, -120.0, 75.0, 10.0];
    let solve = |cap: usize| {
        WorkPool::new(cap).install(|| {
            let cache = FactorCache::new();
            GlobalStage::new(&rom)
                .with_solver(RomSolver::Sharded { shards: SHARDS })
                .with_cache(&cache)
                .with_threads(64)
                .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
                .expect("sharded batched solve")
        })
    };
    let reference = solve(REFERENCE_CAP);
    assert!(
        reference[0].stats.shards >= 2,
        "5×5 reduced operator must actually shard"
    );
    assert!(reference[0].stats.interface_dofs > 0);
    for cap in CAPS {
        let batch = solve(cap);
        assert_eq!(
            batch[0].stats.shards, reference[0].stats.shards,
            "the shard plan must not depend on the pool cap"
        );
        for (r, c) in reference.iter().zip(&batch) {
            assert_bitwise(
                "sharded nodal displacement",
                cap,
                r.nodal_displacement(),
                c.nodal_displacement(),
            );
        }
    }
    // Monolithic cross-check on the same full pipeline.
    let mono = WorkPool::new(REFERENCE_CAP).install(|| {
        GlobalStage::new(&rom)
            .with_solver(RomSolver::DirectCholesky)
            .solve_many(&layout, &loads, &GlobalBc::ClampedTopBottom)
            .expect("monolithic batched solve")
    });
    for (m, s) in mono.iter().zip(&reference) {
        let scale = m
            .nodal_displacement()
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()))
            .max(1e-30);
        for (a, b) in m.nodal_displacement().iter().zip(s.nodal_displacement()) {
            assert!(
                (a - b).abs() <= 1e-8 * scale,
                "sharded vs monolithic beyond 1e-8 relative: {a} vs {b}"
            );
        }
    }
}

#[test]
fn incremental_reprepare_is_pool_size_invariant() {
    // The PR-7 incremental route: solve a layout, swap one block
    // (value-only — the pattern depends only on the lattice shape), and
    // re-solve through the *same* hoisted backend so the dirty-shard
    // re-factorization path runs. Dirty detection is structural, the
    // dirty-shard fan-out writes disjoint slots, and the interface
    // accumulation is serial in shard order — so both the base solve and
    // the incremental re-solve must be bitwise identical at every pool
    // cap, including a cap-1 serial pool and an oversubscribed one.
    const SHARDS: usize = 4;
    let tsv = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Tsv));
    let dummy = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Dummy));
    let base = BlockLayout::uniform(5, 5, BlockKind::Tsv);
    let mut perturbed = base.clone();
    perturbed.set_kind(0, 0, BlockKind::Dummy);
    perturbed.set_kind(4, 4, BlockKind::Dummy);
    let loads = [-250.0, -120.0, 75.0];
    let run = |cap: usize| {
        WorkPool::new(cap).install(|| {
            let backend = Sharded::new(SHARDS);
            let cache = FactorCache::new();
            let stage = GlobalStage::new(&tsv)
                .with_dummy(&dummy)
                .expect("compatible ROMs")
                .with_backend(&backend)
                .with_cache(&cache)
                .with_threads(64);
            let cold = stage
                .solve_many(&base, &loads, &GlobalBc::ClampedTopBottom)
                .expect("cold sharded solve");
            let incr = stage
                .solve_many(&perturbed, &loads, &GlobalBc::ClampedTopBottom)
                .expect("incremental re-solve");
            let stats = incr[0].stats;
            assert_eq!(
                stats.shards_refactored + stats.shards_reused,
                stats.shards,
                "counter invariant at cap {cap}"
            );
            let flat = |batch: &[morestress_core::GlobalSolution]| -> Vec<f64> {
                batch
                    .iter()
                    .flat_map(|sol| sol.nodal_displacement().iter().copied())
                    .collect()
            };
            (flat(&cold), flat(&incr), stats.shards_refactored)
        })
    };
    let (ref_cold, ref_incr, ref_dirty) = run(REFERENCE_CAP);
    for cap in CAPS {
        let (cold, incr, dirty) = run(cap);
        assert_eq!(
            dirty, ref_dirty,
            "the dirty set must not depend on the pool cap"
        );
        assert_bitwise("cold sharded displacement", cap, &ref_cold, &cold);
        assert_bitwise("incremental displacement", cap, &ref_incr, &incr);
    }
}

#[test]
fn reconstruction_is_pool_size_invariant() {
    let rom = WorkPool::new(REFERENCE_CAP).install(|| build_rom(BlockKind::Tsv));
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let solution = GlobalStage::new(&rom)
        .solve(&layout, -250.0, &GlobalBc::ClampedTopBottom)
        .expect("global solve");
    let sample = |cap: usize| {
        WorkPool::new(cap).install(|| {
            sample_array_von_mises(&rom, None, &layout, &solution, -250.0, 6)
                .expect("reconstruction")
        })
    };
    let reference = sample(REFERENCE_CAP);
    assert!(reference.values.iter().all(|v| v.is_finite()));
    for cap in CAPS {
        assert_bitwise(
            "von Mises field",
            cap,
            &reference.values,
            &sample(cap).values,
        );
    }
}

#[test]
fn full_pipeline_is_pool_size_invariant() {
    // The end-to-end path: local stage (TSV + dummy) → cached batched
    // global solves with a dummy ring → mid-plane reconstruction, entirely
    // inside one `install` scope per cap, nesting all three stages on the
    // one pool.
    let run = |cap: usize| {
        WorkPool::new(cap).install(|| {
            let sim = MoreStressSimulator::builder(&TsvGeometry::paper_defaults(15.0))
                .solver(RomSolver::DirectCholesky)
                .build_dummy(true)
                .build()
                .expect("simulator builds");
            let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv).padded(1);
            let bc = GlobalBc::SubmodelBoundary(std::sync::Arc::new(|p: [f64; 3]| {
                [1e-4 * p[0], -2e-4 * p[1], 5e-5 * (p[2] - 25.0)]
            }));
            let batch = sim
                .solve_array_many(&layout, &[-250.0, -100.0, 60.0], &bc)
                .expect("batched pipeline solve");
            let field = sim
                .sample_midplane(&layout, &batch[0], -250.0, 4)
                .expect("midplane field");
            let mut flat: Vec<f64> = Vec::new();
            for sol in &batch {
                flat.extend_from_slice(sol.nodal_displacement());
            }
            (flat, field.values)
        })
    };
    let (ref_nodal, ref_field) = run(REFERENCE_CAP);
    for cap in CAPS {
        let (nodal, field) = run(cap);
        assert_close("pipeline nodal displacement", cap, &ref_nodal, &nodal);
        assert_close("pipeline von Mises field", cap, &ref_field, &field);
    }
}
