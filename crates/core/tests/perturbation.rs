//! Incremental re-factorization suite: `resolve_perturbed` over
//! value-only layout perturbations (TSV ↔ dummy block swaps keep the
//! lattice pattern — only values change) must be **bitwise identical** to
//! a from-scratch sharded solve of the perturbed layout, while the
//! `GlobalStats` counters prove only the touched shards were re-factored.
//!
//! CI runs this suite across `MORESTRESS_THREADS ∈ {1, 8}` ×
//! `MORESTRESS_SHARDS ∈ {1, 4}` next to `sharded_global.rs`: the shard
//! axis covers the monolithic degenerate plan (`shards = 1` — the
//! incremental route still engages, with a one-block "everything dirty"
//! plan) and a real decomposition; the thread axis serial vs saturated
//! pools.

use morestress_core::{GlobalBc, GlobalStage, MoreStressSimulator, RomSolver};
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

/// Shard count under test: `MORESTRESS_SHARDS` when set (the CI matrix
/// pins 1 and 4), else 4.
fn env_shards() -> usize {
    std::env::var("MORESTRESS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// A simulator with both ROMs built (swaps need the dummy model) and the
/// sharded backend hoisted.
fn build_sim(shards: usize) -> MoreStressSimulator {
    MoreStressSimulator::builder(&TsvGeometry::paper_defaults(15.0))
        .shards(shards)
        .build_dummy(true)
        .build()
        .expect("simulator builds")
}

/// From-scratch sharded reference over the same ROMs: a fresh
/// `GlobalStage` builds a fresh backend, so nothing carries over.
fn scratch_solve(
    sim: &MoreStressSimulator,
    shards: usize,
    layout: &BlockLayout,
    loads: &[f64],
    bc: &GlobalBc,
) -> Vec<morestress_core::GlobalSolution> {
    GlobalStage::new(sim.tsv_model())
        .with_dummy(sim.dummy_model().expect("dummy ROM built"))
        .expect("compatible ROMs")
        .with_solver(RomSolver::Sharded { shards })
        .solve_many(layout, loads, bc)
        .expect("from-scratch sharded solve")
}

fn assert_bitwise(label: &str, reference: &[f64], candidate: &[f64]) {
    assert_eq!(reference.len(), candidate.len(), "{label}: length");
    for (i, (a, b)) in reference.iter().zip(candidate).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{label}: entry {i} differs: {a:?} vs {b:?}"
        );
    }
}

/// The acceptance case: swap one corner block of a solved array and
/// `resolve_perturbed` — the answer is bitwise the from-scratch sharded
/// solve of the perturbed layout, and (when the plan really splits) at
/// least one shard factor was reused.
#[test]
fn single_block_swap_is_bitwise_and_reuses_shards() {
    let shards = env_shards();
    let sim = build_sim(shards);
    let bc = GlobalBc::ClampedTopBottom;
    let loads = [-250.0, -100.0, 60.0];
    let base = BlockLayout::uniform(6, 6, BlockKind::Tsv);
    let cold = sim
        .solve_array_many(&base, &loads, &bc)
        .expect("cold sharded solve");
    assert_eq!(cold[0].stats.backend, "sharded");
    let k = cold[0].stats.shards;
    assert_eq!(cold[0].stats.shards_refactored, k, "cold prepare is full");
    assert_eq!(cold[0].stats.shards_reused, 0);

    let mut perturbed = base.clone();
    perturbed.set_kind(0, 0, BlockKind::Dummy);
    let incremental = sim
        .resolve_perturbed_many(&perturbed, &loads, &bc)
        .expect("incremental re-solve");
    let stats = incremental[0].stats;
    assert_eq!(
        stats.shards_refactored + stats.shards_reused,
        k,
        "every shard is either refactored or reused"
    );
    if k >= 2 {
        assert!(
            stats.shards_reused >= 1,
            "a corner-block swap must leave some shard untouched (refactored {} of {k})",
            stats.shards_refactored
        );
    }

    let scratch = scratch_solve(&sim, shards, &perturbed, &loads, &bc);
    for (inc, full) in incremental.iter().zip(&scratch) {
        assert_bitwise(
            "perturbed nodal displacement",
            full.nodal_displacement(),
            inc.nodal_displacement(),
        );
    }
}

/// Satellite-1 regression: the simulator's backend is built once and
/// hoisted into every stage, so a re-preparation of an already-seen
/// operator hits the backend's internal shard cache instead of paying for
/// a fresh `Sharded` (fresh, empty cache) per call.
#[test]
fn hoisted_backend_reuses_shard_factors_across_prepares() {
    let shards = env_shards();
    let sim = build_sim(shards);
    let bc = GlobalBc::ClampedTopBottom;
    let layout = BlockLayout::uniform(5, 5, BlockKind::Tsv);
    let first = sim
        .solve_array_many(&layout, &[-250.0], &bc)
        .expect("cold solve");
    let backend = sim.sharded_backend().expect("sharded solver resolved");
    let misses = backend.shard_cache().misses();
    assert!(misses >= 1, "cold prepare must populate the shard cache");

    // Drop the outer memo so the second solve genuinely re-prepares
    // through the backend — with a per-call backend this re-factored
    // every shard from nothing.
    sim.factor_cache().clear();
    let second = sim
        .solve_array_many(&layout, &[-250.0], &bc)
        .expect("re-prepared solve");
    assert_eq!(
        backend.shard_cache().misses(),
        misses,
        "re-preparing the same operator must hit the hoisted shard cache"
    );
    assert_eq!(second[0].stats.shards_refactored, 0, "nothing changed");
    assert_eq!(second[0].stats.shards_reused, first[0].stats.shards);
    for (a, b) in first.iter().zip(&second) {
        assert_bitwise(
            "re-prepared nodal displacement",
            a.nodal_displacement(),
            b.nodal_displacement(),
        );
    }
}

/// Swapping *every* block is still value-only (the pattern depends only
/// on the lattice shape): the incremental route engages but finds every
/// shard dirty — equivalent to a full prepare, and still bitwise.
#[test]
fn all_blocks_swapped_refactors_everything() {
    let shards = env_shards();
    let sim = build_sim(shards);
    let bc = GlobalBc::ClampedTopBottom;
    let loads = [-250.0, 75.0];
    let base = BlockLayout::uniform(5, 5, BlockKind::Tsv);
    let cold = sim
        .solve_array_many(&base, &loads, &bc)
        .expect("cold solve");
    let k = cold[0].stats.shards;

    let perturbed = BlockLayout::uniform(5, 5, BlockKind::Dummy);
    let incremental = sim
        .resolve_perturbed_many(&perturbed, &loads, &bc)
        .expect("all-swapped re-solve");
    assert_eq!(
        incremental[0].stats.shards_refactored, k,
        "every block changed, so every shard re-factors"
    );
    assert_eq!(incremental[0].stats.shards_reused, 0);
    let scratch = scratch_solve(&sim, shards, &perturbed, &loads, &bc);
    for (inc, full) in incremental.iter().zip(&scratch) {
        assert_bitwise(
            "all-swapped nodal displacement",
            full.nodal_displacement(),
            inc.nodal_displacement(),
        );
    }
}

/// A different lattice shape is a *pattern* change: no incremental reuse
/// is possible, the backend takes the full route under a fresh plan, and
/// the result is still correct.
#[test]
fn pattern_change_takes_the_full_route() {
    let shards = env_shards();
    let sim = build_sim(shards);
    let bc = GlobalBc::ClampedTopBottom;
    let loads = [-250.0];
    sim.solve_array_many(&BlockLayout::uniform(6, 6, BlockKind::Tsv), &loads, &bc)
        .expect("cold solve");

    let reshaped = BlockLayout::uniform(5, 5, BlockKind::Tsv);
    let solved = sim
        .resolve_perturbed_many(&reshaped, &loads, &bc)
        .expect("reshaped solve");
    let stats = solved[0].stats;
    assert_eq!(
        stats.shards_refactored, stats.shards,
        "a pattern change must re-factor everything under the new plan"
    );
    assert_eq!(stats.shards_reused, 0);
    let scratch = scratch_solve(&sim, shards, &reshaped, &loads, &bc);
    for (inc, full) in solved.iter().zip(&scratch) {
        assert_bitwise(
            "reshaped nodal displacement",
            full.nodal_displacement(),
            inc.nodal_displacement(),
        );
    }
}

/// PR 9: the incremental route composes with the geometry-aware default
/// planner — a perturbed re-solve keeps the geometric plan (the hint is a
/// pure function of the lattice shape, and a value-only swap leaves it
/// unchanged), reuses clean shards, and is still bitwise the from-scratch
/// answer under the same plan.
#[test]
fn incremental_route_keeps_the_geometric_plan() {
    let shards = env_shards();
    let sim = build_sim(shards);
    let bc = GlobalBc::ClampedTopBottom;
    let loads = [-250.0];
    let base = BlockLayout::uniform(6, 6, BlockKind::Tsv);
    let cold = sim
        .solve_array_many(&base, &loads, &bc)
        .expect("cold sharded solve");
    let cold_plan = cold[0].stats.plan_stats.expect("plan stats surfaced");
    if shards >= 2 {
        assert!(
            cold_plan.geometric,
            "the pipeline's default sharded route must be the geometric planner"
        );
    }

    let mut perturbed = base.clone();
    perturbed.set_kind(5, 5, BlockKind::Dummy);
    let incremental = sim
        .resolve_perturbed_many(&perturbed, &loads, &bc)
        .expect("incremental re-solve");
    let incr_plan = incremental[0]
        .stats
        .plan_stats
        .expect("plan stats surfaced");
    assert_eq!(
        incr_plan.geometric, cold_plan.geometric,
        "a value-only swap must not change the planning route"
    );
    assert_eq!(incr_plan.shards, cold_plan.shards);
    assert_eq!(incr_plan.interface_dofs, cold_plan.interface_dofs);
    let scratch = scratch_solve(&sim, shards, &perturbed, &loads, &bc);
    for (inc, full) in incremental.iter().zip(&scratch) {
        assert_bitwise(
            "geometric incremental displacement",
            full.nodal_displacement(),
            inc.nodal_displacement(),
        );
    }
}

/// `resolve_perturbed` (single-load convenience) agrees with the batched
/// variant and with `solve_array` on a fresh simulator.
#[test]
fn resolve_perturbed_single_load_matches_batched() {
    let shards = env_shards();
    let sim = build_sim(shards);
    let bc = GlobalBc::ClampedTopBottom;
    let base = BlockLayout::uniform(4, 4, BlockKind::Tsv);
    sim.solve_array(&base, -250.0, &bc).expect("cold solve");
    let mut perturbed = base.clone();
    perturbed.set_kind(1, 2, BlockKind::Dummy);
    let single = sim
        .resolve_perturbed(&perturbed, -250.0, &bc)
        .expect("single-load re-solve");
    let batched = sim
        .resolve_perturbed_many(&perturbed, &[-250.0], &bc)
        .expect("batched re-solve");
    assert_bitwise(
        "single vs batched",
        batched[0].nodal_displacement(),
        single.nodal_displacement(),
    );
}
