//! Property-based tests of the interpolation layer and ROM invariants.

use morestress_core::{lagrange_weights, InterpolationGrid};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Partition of unity: Lagrange weights sum to 1 anywhere.
    #[test]
    fn lagrange_partition_of_unity(n in 2usize..8, x in -0.5f64..1.5) {
        let nodes: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let w = lagrange_weights(&nodes, x);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {} at x={x}, n={n}", sum);
    }

    /// Linear reproduction: interpolating f(x) = a·x + b is exact.
    #[test]
    fn lagrange_reproduces_linear(n in 2usize..8, x in 0.0f64..1.0,
                                  a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let nodes: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let w = lagrange_weights(&nodes, x);
        let interp: f64 = w.iter().zip(&nodes).map(|(wi, xi)| wi * (a * xi + b)).sum();
        prop_assert!((interp - (a * x + b)).abs() < 1e-8);
    }

    /// Node hits return the Kronecker delta exactly.
    #[test]
    fn lagrange_nodal_delta(n in 2usize..8, hit in 0usize..8) {
        let hit = hit % n;
        let nodes: Vec<f64> = (0..n).map(|i| i as f64 * 0.7 + 0.1).collect();
        let w = lagrange_weights(&nodes, nodes[hit]);
        for (i, wi) in w.iter().enumerate() {
            prop_assert_eq!(*wi, if i == hit { 1.0 } else { 0.0 });
        }
    }

    /// Eq. 16 of the paper: the enumerated surface-node count matches the
    /// closed-form DoF formula for every grid shape.
    #[test]
    fn surface_count_matches_eq16(nx in 2usize..7, ny in 2usize..7, nz in 2usize..7) {
        let grid = InterpolationGrid::new([nx, ny, nz]);
        let enumerated = grid.surface_nodes().len();
        let formula = nx * ny * nz - (nx - 2) * (ny - 2) * (nz - 2);
        prop_assert_eq!(enumerated, formula);
        prop_assert_eq!(grid.num_dofs(), 3 * formula);
    }

    /// Surface weights at any surface point form a partition of unity and
    /// vanish nowhere they shouldn't: evaluating on the x=0 face only
    /// involves i=0 nodes.
    #[test]
    fn surface_weights_face_locality(ny in 2usize..6, nz in 2usize..6,
                                     fy in 0.0f64..1.0, fz in 0.0f64..1.0) {
        let grid = InterpolationGrid::new([4, ny, nz]);
        let extents = [15.0, 12.0, 50.0];
        let pt = [0.0, fy * extents[1], fz * extents[2]];
        let w = grid.surface_weights_at(extents, pt);
        let nodes = grid.surface_nodes();
        let mut sum = 0.0;
        for (q, &[i, _, _]) in nodes.iter().enumerate() {
            if i != 0 {
                prop_assert!(
                    w[q].abs() < 1e-12,
                    "node with i={i} contributes {} on the x=0 face", w[q]
                );
            }
            sum += w[q];
        }
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }
}
