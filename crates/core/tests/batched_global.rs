//! End-to-end tests of the batched global stage: one cached factorization
//! serving many thermal loads through `solve_many`, with results matching
//! individual solves, and cross-backend agreement on the reduced system.

use morestress_core::{GlobalBc, MoreStressSimulator, RomSolver};
use morestress_mesh::{BlockKind, BlockLayout, TsvGeometry};

fn build_sim(solver: RomSolver) -> MoreStressSimulator {
    MoreStressSimulator::builder(&TsvGeometry::paper_defaults(15.0))
        .solver(solver)
        .build()
        .expect("one-shot local stage builds")
}

fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// The ISSUE's acceptance scenario: ≥ 4 distinct thermal loads served by
/// one cached factorization via `solve_many`, matching individual solves.
#[test]
fn one_cached_factorization_serves_many_loads() {
    let sim = build_sim(RomSolver::DirectCholesky);
    let layout = BlockLayout::uniform(3, 3, BlockKind::Tsv);
    let bc = GlobalBc::ClampedTopBottom;
    let loads = [-250.0, -100.0, 40.0, 300.0, -25.0];

    let batch = sim
        .solve_array_many(&layout, &loads, &bc)
        .expect("batched solve");
    assert_eq!(batch.len(), loads.len());
    assert_eq!(
        sim.factor_cache().misses(),
        1,
        "the batch must prepare exactly one factorization"
    );
    assert_eq!(batch[0].stats.backend, "cholesky");

    // Individual solves over the same lattice reuse the cached factor and
    // agree with the batched results.
    for (&dt, batched) in loads.iter().zip(&batch) {
        let single = sim.solve_array(&layout, dt, &bc).expect("single solve");
        let scale = max_abs(single.nodal_displacement()).max(1e-30);
        for (a, b) in single
            .nodal_displacement()
            .iter()
            .zip(batched.nodal_displacement())
        {
            assert!(
                (a - b).abs() <= 1e-12 * scale,
                "batched and individual solves disagree: {a} vs {b}"
            );
        }
    }
    assert_eq!(
        sim.factor_cache().misses(),
        1,
        "individual solves must reuse the cached factorization"
    );
    assert_eq!(sim.factor_cache().hits(), loads.len());
}

/// Under homogeneous (clamped) boundary conditions the solution is linear
/// in ΔT — a physical invariant the batched rhs construction must honor.
#[test]
fn batched_solutions_scale_linearly_in_delta_t() {
    let sim = build_sim(RomSolver::DirectCholesky);
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let batch = sim
        .solve_array_many(&layout, &[-100.0, -200.0], &GlobalBc::ClampedTopBottom)
        .expect("batched solve");
    let scale = max_abs(batch[1].nodal_displacement()).max(1e-30);
    for (a, b) in batch[0]
        .nodal_displacement()
        .iter()
        .zip(batch[1].nodal_displacement())
    {
        assert!(
            (2.0 * a - b).abs() < 1e-9 * scale,
            "doubling ΔT must double the displacement: {a} vs {b}"
        );
    }
}

/// Cross-backend agreement on the same reduced system — the global-stage
/// generalization of `solvers_agree_on_tsv_block`.
#[test]
fn all_rom_solvers_agree_on_the_reduced_system() {
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let bc = GlobalBc::ClampedTopBottom;
    let solvers = [
        RomSolver::DirectCholesky,
        RomSolver::Gmres { tol: 1e-11 },
        RomSolver::Cg { tol: 1e-11 },
        RomSolver::Auto,
    ];
    let reference = build_sim(solvers[0])
        .solve_array(&layout, -250.0, &bc)
        .expect("direct solve");
    let scale = max_abs(reference.nodal_displacement()).max(1e-30);
    for solver in &solvers[1..] {
        let sol = build_sim(*solver)
            .solve_array(&layout, -250.0, &bc)
            .expect("solve");
        for (a, b) in reference
            .nodal_displacement()
            .iter()
            .zip(sol.nodal_displacement())
        {
            assert!(
                (a - b).abs() < 1e-6 * scale,
                "{solver:?} disagrees with DirectCholesky: {a} vs {b}"
            );
        }
    }
}

/// `solve_many` also agrees with looped solves under an iterative backend
/// and with sub-model (inhomogeneous) boundary conditions, where the
/// lifting term must stay load-independent.
#[test]
fn batched_submodel_solves_match_looped_solves() {
    use std::sync::Arc;
    let sim = build_sim(RomSolver::Gmres { tol: 1e-11 });
    let layout = BlockLayout::uniform(2, 1, BlockKind::Tsv);
    // A nonzero, position-dependent boundary closure (independent of ΔT).
    let bc = GlobalBc::SubmodelBoundary(Arc::new(|p: [f64; 3]| {
        [1e-4 * p[0], -2e-4 * p[1], 5e-5 * (p[2] - 25.0)]
    }));
    let loads = [-250.0, 0.0, 125.0, 80.0];
    let batch = sim
        .solve_array_many(&layout, &loads, &bc)
        .expect("batched solve");
    for (&dt, batched) in loads.iter().zip(&batch) {
        let single = sim.solve_array(&layout, dt, &bc).expect("single solve");
        let scale = max_abs(single.nodal_displacement()).max(1e-30);
        for (a, b) in single
            .nodal_displacement()
            .iter()
            .zip(batched.nodal_displacement())
        {
            assert!(
                (a - b).abs() < 1e-8 * scale,
                "submodel batched vs looped at ΔT={dt}: {a} vs {b}"
            );
        }
    }
}
