//! ROM vs full-FEM accuracy: the paper's central claim on a scaled-down case.

use morestress_core::{GlobalBc, MoreStressSimulator};
use morestress_fem::{
    normalized_mae, sample_von_mises, solve_thermal_stress, DirichletBcs, LinearSolver,
    MaterialSet, PlaneGrid,
};
use morestress_mesh::{array_mesh, BlockKind, BlockLayout, BlockResolution, TsvGeometry};

fn direct_reference(
    geom: &TsvGeometry,
    res: &BlockResolution,
    layout: &BlockLayout,
    delta_t: f64,
    samples_per_block: usize,
) -> morestress_fem::ScalarField2d {
    let mesh = array_mesh(geom, res, layout);
    let mats = MaterialSet::tsv_defaults();
    let (_, _, npz) = mesh.lattice_dims();
    let mut bcs = DirichletBcs::new();
    bcs.clamp_nodes(&mesh.plane_nodes(2, 0));
    bcs.clamp_nodes(&mesh.plane_nodes(2, npz - 1));
    let sol = solve_thermal_stress(&mesh, &mats, delta_t, &bcs, LinearSolver::DirectCholesky)
        .expect("direct solve");
    let p = geom.pitch;
    let grid = PlaneGrid::new(
        [0.0, 0.0],
        [p * layout.nx() as f64, p * layout.ny() as f64],
        0.5 * geom.height,
        samples_per_block * layout.nx(),
        samples_per_block * layout.ny(),
    );
    sample_von_mises(&mesh, &mats, &sol.displacement, delta_t, &grid).expect("sampling")
}

#[test]
fn rom_error_is_small_and_converges() {
    let geom = TsvGeometry::paper_defaults(15.0);
    let res = BlockResolution::coarse();
    let layout = BlockLayout::uniform(2, 2, BlockKind::Tsv);
    let delta_t = -250.0;
    let g = 10;
    let reference = direct_reference(&geom, &res, &layout, delta_t, g);

    let mut errors = Vec::new();
    for m in [2usize, 3, 4, 6] {
        let sim = MoreStressSimulator::builder(&geom)
            .resolution(res)
            .interpolation([m, m, m])
            .build()
            .unwrap();
        let sol = sim
            .solve_array(&layout, delta_t, &GlobalBc::ClampedTopBottom)
            .unwrap();
        let field = sim.sample_midplane(&layout, &sol, delta_t, g).unwrap();
        let err = normalized_mae(&field, &reference);
        println!("({m},{m},{m}): normalized MAE = {:.4}%", err * 100.0);
        errors.push(err);
    }
    // On this deliberately coarse 2×2 case the (4,4,4) point carries an
    // even/odd parity blip (no interpolation node at the face center), so we
    // assert the paper's qualitative claims: small error at practical node
    // counts and rapid convergence (Table 3 / Fig. 6).
    assert!(
        errors[2] < 0.05,
        "(4,4,4) error {} should be < 5%",
        errors[2]
    );
    assert!(
        errors[3] < 0.005,
        "(6,6,6) error {} should be < 0.5%",
        errors[3]
    );
    assert!(
        errors[0] > errors[1],
        "error must decrease from (2,2,2) to (3,3,3)"
    );
    assert!(
        errors[1] > errors[3],
        "error must decrease from (3,3,3) to (6,6,6)"
    );
}
