//! The reduced-order model of one unit block, and its on-disk format.

use std::io::{Read, Write};
use std::path::Path;

use morestress_fem::MaterialSet;
use morestress_linalg::{DenseMatrix, MemoryFootprint};
use morestress_mesh::{unit_block_mesh, BlockKind, BlockResolution, HexMesh, TsvGeometry};

use crate::local::LocalStageStats;
use crate::{InterpolationGrid, RomError};

/// A pre-computed reduced-order model of one unit block (Fig. 3(d) of the
/// paper): the local basis functions, the Galerkin-projected element
/// stiffness `A_elem` and element load `b_elem`.
///
/// Built once per `(geometry, resolution, interpolation grid, block kind)`
/// by [`LocalStage`](crate::LocalStage); reused for arrays of any size,
/// thermal load, and location.
#[derive(Debug, Clone)]
pub struct ReducedOrderModel {
    pub(crate) geom: TsvGeometry,
    pub(crate) res: BlockResolution,
    pub(crate) kind: BlockKind,
    pub(crate) interp: InterpolationGrid,
    pub(crate) mesh: HexMesh,
    pub(crate) materials: MaterialSet,
    /// Local basis functions `f_0 … f_{n−1}`, each a full fine-mesh
    /// displacement vector (`3 × mesh nodes`).
    pub(crate) basis: Vec<Vec<f64>>,
    /// The thermal basis function `f_T` (unit ΔT, zero boundary).
    pub(crate) basis_thermal: Vec<f64>,
    /// `A_elem = Fᵀ A_local F` (n×n, symmetric).
    pub(crate) a_elem: DenseMatrix,
    /// `b_elem = Fᵀ b_local` for ΔT = 1.
    pub(crate) b_elem: Vec<f64>,
    /// Cost accounting of the one-shot local stage that built this model.
    pub local_stats: LocalStageStats,
}

impl ReducedOrderModel {
    /// The TSV geometry the model was built for.
    pub fn geometry(&self) -> &TsvGeometry {
        &self.geom
    }

    /// The fine-mesh resolution of the unit block.
    pub fn resolution(&self) -> &BlockResolution {
        &self.res
    }

    /// Whether this models a TSV block or a dummy (pure-Si) block.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// The interpolation grid (element DoF layout).
    pub fn interpolation(&self) -> InterpolationGrid {
        self.interp
    }

    /// The unit block's fine mesh.
    pub fn mesh(&self) -> &HexMesh {
        &self.mesh
    }

    /// The material registry the model was built with (needed for stress
    /// recovery).
    pub fn materials(&self) -> &MaterialSet {
        &self.materials
    }

    /// Number of element DoFs `n` (Eq. 16).
    pub fn num_dofs(&self) -> usize {
        self.interp.num_dofs()
    }

    /// The element stiffness matrix `A_elem` (Eq. 18).
    pub fn element_stiffness(&self) -> &DenseMatrix {
        &self.a_elem
    }

    /// The element load vector `b_elem` for ΔT = 1 (Eq. 19).
    pub fn element_load(&self) -> &[f64] {
        &self.b_elem
    }

    /// The `i`-th local basis function as a fine-mesh displacement vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_dofs()`.
    pub fn basis_function(&self, i: usize) -> &[f64] {
        &self.basis[i]
    }

    /// The thermal basis function `f_T`.
    pub fn thermal_basis(&self) -> &[f64] {
        &self.basis_thermal
    }

    /// Reconstructs the fine-mesh displacement of one block from its element
    /// DoF values (Eq. 15): `u = ΔT·f_T + Σ_i U_i f_i`.
    ///
    /// # Panics
    ///
    /// Panics if `element_dofs.len() != self.num_dofs()`.
    pub fn reconstruct_displacement(&self, element_dofs: &[f64], delta_t: f64) -> Vec<f64> {
        assert_eq!(element_dofs.len(), self.num_dofs(), "element DoF count");
        let mut u: Vec<f64> = self.basis_thermal.iter().map(|v| v * delta_t).collect();
        for (ui, fi) in element_dofs.iter().zip(&self.basis) {
            if *ui != 0.0 {
                morestress_linalg::axpy(*ui, fi, &mut u);
            }
        }
        u
    }

    /// Like [`ReducedOrderModel::reconstruct_displacement`], but only fills
    /// the DoFs of the listed nodes (all other entries stay zero). Used to
    /// sample the mid-plane without reconstructing entire blocks.
    pub(crate) fn reconstruct_displacement_at_nodes(
        &self,
        element_dofs: &[f64],
        delta_t: f64,
        nodes: &[usize],
    ) -> Vec<f64> {
        assert_eq!(element_dofs.len(), self.num_dofs(), "element DoF count");
        let mut u = vec![0.0; self.basis_thermal.len()];
        for &node in nodes {
            for c in 0..3 {
                let d = 3 * node + c;
                let mut v = delta_t * self.basis_thermal[d];
                for (ui, fi) in element_dofs.iter().zip(&self.basis) {
                    v += ui * fi[d];
                }
                u[d] = v;
            }
        }
        u
    }

    /// Serializes the model to a file.
    ///
    /// The format is a small explicit binary codec (magic + version + shape
    /// descriptors + f64 arrays, all little-endian); the fine mesh is not
    /// stored — it is re-derived from the geometry on load.
    ///
    /// # Errors
    ///
    /// [`RomError::Io`] on filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), RomError> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(MAGIC)?;
        write_u64(&mut w, FORMAT_VERSION)?;
        // Geometry.
        for v in [
            self.geom.diameter,
            self.geom.height,
            self.geom.liner,
            self.geom.pitch,
        ] {
            write_f64(&mut w, v)?;
        }
        // Resolution.
        for v in [self.res.band_cells, self.res.outer_cells, self.res.z_cells] {
            write_u64(&mut w, v as u64)?;
        }
        write_u64(&mut w, matches!(self.kind, BlockKind::Tsv) as u64)?;
        for v in self.interp.counts() {
            write_u64(&mut w, v as u64)?;
        }
        // Materials.
        let mats: Vec<_> = self.materials.iter().collect();
        write_u64(&mut w, mats.len() as u64)?;
        for (id, m) in mats {
            write_u64(&mut w, u64::from(id.0))?;
            write_f64(&mut w, m.youngs)?;
            write_f64(&mut w, m.poisson)?;
            write_f64(&mut w, m.cte)?;
        }
        // Basis.
        write_u64(&mut w, self.basis.len() as u64)?;
        write_u64(&mut w, self.basis_thermal.len() as u64)?;
        for f in &self.basis {
            write_f64_slice(&mut w, f)?;
        }
        write_f64_slice(&mut w, &self.basis_thermal)?;
        // Element matrices.
        write_f64_slice(&mut w, self.a_elem.as_slice())?;
        write_f64_slice(&mut w, &self.b_elem)?;
        w.flush()?;
        Ok(())
    }

    /// Loads a model saved by [`ReducedOrderModel::save`], re-deriving the
    /// fine mesh from the stored geometry.
    ///
    /// # Errors
    ///
    /// [`RomError::Io`] on filesystem errors, [`RomError::Format`] if the
    /// file is malformed, of a wrong version, or internally inconsistent.
    pub fn load(path: &Path) -> Result<Self, RomError> {
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(RomError::Format("bad magic bytes".into()));
        }
        let version = read_u64(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(RomError::Format(format!(
                "unsupported ROM format version {version}"
            )));
        }
        let geom = TsvGeometry {
            diameter: read_f64(&mut r)?,
            height: read_f64(&mut r)?,
            liner: read_f64(&mut r)?,
            pitch: read_f64(&mut r)?,
        };
        geom.validate().map_err(RomError::Format)?;
        let res = BlockResolution {
            band_cells: read_usize(&mut r)?,
            outer_cells: read_usize(&mut r)?,
            z_cells: read_usize(&mut r)?,
        };
        let kind = if read_u64(&mut r)? != 0 {
            BlockKind::Tsv
        } else {
            BlockKind::Dummy
        };
        let counts = [
            read_usize(&mut r)?,
            read_usize(&mut r)?,
            read_usize(&mut r)?,
        ];
        if counts.iter().any(|&c| !(2..=64).contains(&c)) {
            return Err(RomError::Format("implausible interpolation counts".into()));
        }
        let interp = InterpolationGrid::new(counts);
        let num_materials = read_usize(&mut r)?;
        if num_materials > 1024 {
            return Err(RomError::Format("implausible material count".into()));
        }
        let mut materials = MaterialSet::new();
        for _ in 0..num_materials {
            let id = read_u64(&mut r)?;
            let id = u16::try_from(id)
                .map_err(|_| RomError::Format("material id out of range".into()))?;
            let youngs = read_f64(&mut r)?;
            let poisson = read_f64(&mut r)?;
            let cte = read_f64(&mut r)?;
            if youngs <= 0.0 || !(-1.0..0.5).contains(&poisson) {
                return Err(RomError::Format("implausible material constants".into()));
            }
            materials.insert(
                morestress_mesh::MaterialId(id),
                morestress_fem::Material::new(youngs, poisson, cte),
            );
        }
        let n_basis = read_usize(&mut r)?;
        let ndof = read_usize(&mut r)?;
        if n_basis != interp.num_dofs() {
            return Err(RomError::Format(format!(
                "basis count {n_basis} does not match interpolation grid ({})",
                interp.num_dofs()
            )));
        }
        let mesh = unit_block_mesh(&geom, &res, kind == BlockKind::Tsv);
        if ndof != 3 * mesh.num_nodes() {
            return Err(RomError::Format(format!(
                "stored fine DoF count {ndof} does not match re-derived mesh ({})",
                3 * mesh.num_nodes()
            )));
        }
        let mut basis = Vec::with_capacity(n_basis);
        for _ in 0..n_basis {
            basis.push(read_f64_vec(&mut r, ndof)?);
        }
        let basis_thermal = read_f64_vec(&mut r, ndof)?;
        let a_elem =
            DenseMatrix::from_vec(n_basis, n_basis, read_f64_vec(&mut r, n_basis * n_basis)?);
        let b_elem = read_f64_vec(&mut r, n_basis)?;
        Ok(Self {
            geom,
            res,
            kind,
            interp,
            mesh,
            materials,
            basis,
            basis_thermal,
            a_elem,
            b_elem,
            local_stats: LocalStageStats::default(),
        })
    }

    /// Checks that two ROMs are compatible as hybrid elements in one global
    /// problem (same geometry, resolution and interpolation grid).
    ///
    /// # Errors
    ///
    /// [`RomError::Mismatch`] describing the first difference found.
    pub fn check_compatible(&self, other: &ReducedOrderModel) -> Result<(), RomError> {
        if self.geom != other.geom {
            return Err(RomError::Mismatch("geometries differ".into()));
        }
        if self.res != other.res {
            return Err(RomError::Mismatch("block resolutions differ".into()));
        }
        if self.interp != other.interp {
            return Err(RomError::Mismatch("interpolation grids differ".into()));
        }
        Ok(())
    }
}

impl MemoryFootprint for ReducedOrderModel {
    fn heap_bytes(&self) -> usize {
        let basis: usize = self.basis.iter().map(MemoryFootprint::heap_bytes).sum();
        basis
            + self.basis_thermal.heap_bytes()
            + self.a_elem.heap_bytes()
            + self.b_elem.heap_bytes()
    }
}

const MAGIC: &[u8; 8] = b"MORESTR\x01";
const FORMAT_VERSION: u64 = 1;

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64_slice<W: Write>(w: &mut W, v: &[f64]) -> std::io::Result<()> {
    for &x in v {
        write_f64(w, x)?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_usize<R: Read>(r: &mut R) -> Result<usize, RomError> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| RomError::Format("count overflows usize".into()))
}

fn read_f64<R: Read>(r: &mut R) -> std::io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

fn read_f64_vec<R: Read>(r: &mut R, len: usize) -> Result<Vec<f64>, RomError> {
    let mut out = vec![0.0; len];
    let mut buf = [0u8; 8];
    for slot in &mut out {
        r.read_exact(&mut buf)?;
        *slot = f64::from_le_bytes(buf);
    }
    Ok(out)
}

/// Builds (or loads from `cache_path`, if present and valid) a ROM.
///
/// # Errors
///
/// Propagates build errors; cache read failures fall back to a fresh build.
pub fn build_or_load_cached(
    geom: &TsvGeometry,
    res: &BlockResolution,
    interp: InterpolationGrid,
    materials: &MaterialSet,
    kind: BlockKind,
    opts: &crate::LocalStageOptions,
    cache_path: Option<&Path>,
) -> Result<ReducedOrderModel, RomError> {
    if let Some(path) = cache_path {
        if let Ok(rom) = ReducedOrderModel::load(path) {
            if rom.geometry() == geom
                && rom.resolution() == res
                && rom.interpolation() == interp
                && rom.kind() == kind
            {
                return Ok(rom);
            }
        }
    }
    let rom = crate::LocalStage::new(geom, res, interp, materials, kind).build(opts)?;
    if let Some(path) = cache_path {
        rom.save(path)?;
    }
    Ok(rom)
}
