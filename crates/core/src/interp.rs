//! Lagrange interpolation of the unit-block boundary displacement.
//!
//! Equally-spaced interpolation nodes are placed on the corners and surfaces
//! of the unit block (Fig. 3(c) of the paper). The boundary displacement is
//! approximated by the tensor-product Lagrange functions of Eqs. 8–10; this
//! interpolation is the *only* source of error in the algorithm.

/// Evaluates all 1-D Lagrange basis functions `L_i(x)` (Eq. 9 of the paper)
/// for the given node positions at `x`.
///
/// Exact hits on a node return the exact Kronecker delta, which guarantees
/// that surface evaluation never picks up interior-node contributions.
///
/// # Panics
///
/// Panics if fewer than two nodes are supplied.
///
/// # Example
///
/// ```
/// use morestress_core::lagrange_weights;
///
/// let nodes = [0.0, 1.0, 2.0];
/// let w = lagrange_weights(&nodes, 1.0);
/// assert_eq!(w, vec![0.0, 1.0, 0.0]);
/// let w = lagrange_weights(&nodes, 0.5);
/// // Partition of unity.
/// assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub fn lagrange_weights(nodes: &[f64], x: f64) -> Vec<f64> {
    let n = nodes.len();
    assert!(n >= 2, "Lagrange interpolation needs at least two nodes");
    // Exact node hit → Kronecker delta.
    if let Some(hit) = nodes.iter().position(|&xi| xi == x) {
        let mut w = vec![0.0; n];
        w[hit] = 1.0;
        return w;
    }
    let mut w = vec![1.0; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                w[i] *= (x - nodes[j]) / (nodes[i] - nodes[j]);
            }
        }
    }
    w
}

/// The coarse grid of Lagrange interpolation nodes on the unit-block
/// surface.
///
/// `counts = (nx, ny, nz)` are the node counts along each axis, equally
/// spaced over the block extents. Only nodes on the block surface carry
/// DoFs; the paper's Eq. 16 gives their count:
/// `n = [nx·ny·nz − (nx−2)(ny−2)(nz−2)] · 3`.
///
/// # Example
///
/// ```
/// use morestress_core::InterpolationGrid;
///
/// let grid = InterpolationGrid::new([4, 4, 4]);
/// assert_eq!(grid.num_surface_nodes(), 56);
/// assert_eq!(grid.num_dofs(), 168); // the paper's n for (4,4,4)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterpolationGrid {
    counts: [usize; 3],
}

impl InterpolationGrid {
    /// Creates a grid with `counts = [nx, ny, nz]` nodes per axis.
    ///
    /// # Panics
    ///
    /// Panics if any count is below 2.
    pub fn new(counts: [usize; 3]) -> Self {
        assert!(
            counts.iter().all(|&c| c >= 2),
            "need at least 2 interpolation nodes per axis"
        );
        Self { counts }
    }

    /// Node counts per axis.
    pub fn counts(&self) -> [usize; 3] {
        self.counts
    }

    /// Number of interpolation nodes on the block surface.
    pub fn num_surface_nodes(&self) -> usize {
        let [nx, ny, nz] = self.counts;
        let interior = nx.saturating_sub(2) * ny.saturating_sub(2) * nz.saturating_sub(2);
        nx * ny * nz - interior
    }

    /// Number of element DoFs `n` (Eq. 16): three displacement components
    /// per surface node.
    pub fn num_dofs(&self) -> usize {
        3 * self.num_surface_nodes()
    }

    /// Whether lattice index `(i, j, k)` lies on the block surface.
    pub fn is_surface(&self, i: usize, j: usize, k: usize) -> bool {
        let [nx, ny, nz] = self.counts;
        i == 0 || i == nx - 1 || j == 0 || j == ny - 1 || k == 0 || k == nz - 1
    }

    /// Enumerates the surface nodes in canonical (k-major, then j, then i)
    /// order. This order defines the element-DoF numbering shared by the
    /// local and global stages.
    pub fn surface_nodes(&self) -> Vec<[usize; 3]> {
        let [nx, ny, nz] = self.counts;
        let mut out = Vec::with_capacity(self.num_surface_nodes());
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if self.is_surface(i, j, k) {
                        out.push([i, j, k]);
                    }
                }
            }
        }
        out
    }

    /// The equally-spaced node positions along one axis of extent `len`.
    pub fn axis_positions(&self, axis: usize, len: f64) -> Vec<f64> {
        let n = self.counts[axis];
        (0..n).map(|i| len * i as f64 / (n - 1) as f64).collect()
    }

    /// The inclusive range of block-grid indices that touch lattice
    /// coordinate `coord` along `axis`, in an array of `blocks` blocks.
    ///
    /// Adjacent blocks share their boundary interpolation-node planes, so
    /// the global lattice along one axis has `blocks · (count − 1) + 1`
    /// coordinates. A coordinate on a shared plane belongs to both
    /// neighbouring blocks (clamped at the array edges); every other
    /// coordinate belongs to exactly one block. This span is the geometric
    /// coupling footprint the sharded backend's partition hint is built
    /// from: two lattice nodes can share a stiffness entry only if their
    /// block spans intersect on every axis.
    pub fn block_span(&self, axis: usize, coord: usize, blocks: usize) -> [usize; 2] {
        let stride = self.counts[axis] - 1;
        if coord.is_multiple_of(stride) {
            let plane = coord / stride;
            [plane.saturating_sub(1), plane.min(blocks - 1)]
        } else {
            let b = coord / stride;
            [b, b]
        }
    }

    /// Evaluates the tensor-product weights of **all surface nodes** (in
    /// [`InterpolationGrid::surface_nodes`] order) at a point on the block
    /// surface. `extents = (p, p, h)` are the block dimensions.
    ///
    /// For points on the surface, interior interpolation nodes contribute
    /// exactly zero (each face plane is an interpolation-node plane), so
    /// restricting to surface nodes is exact — this is why Eq. 16 counts
    /// only surface nodes.
    pub fn surface_weights_at(&self, extents: [f64; 3], point: [f64; 3]) -> Vec<f64> {
        let xw = lagrange_weights(&self.axis_positions(0, extents[0]), point[0]);
        let yw = lagrange_weights(&self.axis_positions(1, extents[1]), point[1]);
        let zw = lagrange_weights(&self.axis_positions(2, extents[2]), point[2]);
        self.surface_nodes()
            .iter()
            .map(|&[i, j, k]| xw[i] * yw[j] * zw[k])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dof_counts_match_paper_table3() {
        // Table 3 of the paper: (2,2,2)→24, (3,3,3)→78, (4,4,4)→168,
        // (5,5,5)→294, (6,6,6)→456.
        let expect = [(2, 24), (3, 78), (4, 168), (5, 294), (6, 456)];
        for (m, n) in expect {
            let g = InterpolationGrid::new([m, m, m]);
            assert_eq!(g.num_dofs(), n, "({m},{m},{m})");
        }
    }

    #[test]
    fn surface_enumeration_is_complete_and_unique() {
        let g = InterpolationGrid::new([4, 3, 5]);
        let nodes = g.surface_nodes();
        assert_eq!(nodes.len(), g.num_surface_nodes());
        let set: std::collections::BTreeSet<_> = nodes.iter().collect();
        assert_eq!(set.len(), nodes.len());
        for &[i, j, k] in &nodes {
            assert!(g.is_surface(i, j, k));
        }
    }

    #[test]
    fn lagrange_reproduces_polynomials() {
        let nodes = [0.0, 1.0, 2.0, 3.0];
        // Cubic: p(x) = x^3 - 2x + 1 must be reproduced exactly.
        let p = |x: f64| x * x * x - 2.0 * x + 1.0;
        for x in [0.3, 1.7, 2.9] {
            let w = lagrange_weights(&nodes, x);
            let interp: f64 = w.iter().zip(&nodes).map(|(wi, xi)| wi * p(*xi)).sum();
            assert!((interp - p(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn surface_weights_partition_unity_on_faces() {
        let g = InterpolationGrid::new([4, 4, 3]);
        let extents = [15.0, 15.0, 50.0];
        // Points on various faces.
        for pt in [
            [0.0, 7.3, 21.0],  // x = 0 face
            [15.0, 2.0, 49.0], // x = p face
            [3.3, 0.0, 10.0],  // y = 0 face
            [8.1, 11.7, 0.0],  // z = 0 face
            [8.1, 11.7, 50.0], // z = h face
        ] {
            let w = g.surface_weights_at(extents, pt);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-10, "partition of unity at {pt:?}");
        }
    }

    #[test]
    fn surface_weights_reproduce_linear_fields_on_faces() {
        // A linear field sampled at the interpolation nodes must be
        // reproduced exactly on the surface (rigid modes live in the space).
        let g = InterpolationGrid::new([3, 4, 5]);
        let extents = [10.0, 10.0, 50.0];
        let field = |p: [f64; 3]| 0.5 * p[0] - 0.25 * p[1] + 0.1 * p[2] + 2.0;
        let nodes = g.surface_nodes();
        let xs = g.axis_positions(0, extents[0]);
        let ys = g.axis_positions(1, extents[1]);
        let zs = g.axis_positions(2, extents[2]);
        let nodal: Vec<f64> = nodes
            .iter()
            .map(|&[i, j, k]| field([xs[i], ys[j], zs[k]]))
            .collect();
        for pt in [[0.0, 3.0, 17.0], [10.0, 9.9, 42.0], [4.4, 10.0, 3.0]] {
            let w = g.surface_weights_at(extents, pt);
            let interp: f64 = w.iter().zip(&nodal).map(|(wi, fi)| wi * fi).sum();
            assert!(
                (interp - field(pt)).abs() < 1e-9,
                "linear reproduction at {pt:?}"
            );
        }
    }

    #[test]
    fn interior_nodes_vanish_on_surface() {
        // At a surface point, the full tensor weight of any interior node is
        // exactly zero: check via the axis weights directly.
        let g = InterpolationGrid::new([5, 5, 5]);
        let xs = g.axis_positions(0, 15.0);
        let w = lagrange_weights(&xs, 0.0);
        for (i, wi) in w.iter().enumerate() {
            assert_eq!(*wi, if i == 0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_grid_rejected() {
        let _ = InterpolationGrid::new([1, 4, 4]);
    }

    #[test]
    fn block_spans_cover_shared_planes_and_interiors() {
        // counts = 3 → stride 2; a 4-block axis has coordinates 0..=8.
        let g = InterpolationGrid::new([3, 3, 3]);
        let blocks = 4;
        // Array edges clamp to a single block.
        assert_eq!(g.block_span(0, 0, blocks), [0, 0]);
        assert_eq!(g.block_span(0, 8, blocks), [3, 3]);
        // Shared planes belong to both neighbours.
        assert_eq!(g.block_span(0, 2, blocks), [0, 1]);
        assert_eq!(g.block_span(0, 4, blocks), [1, 2]);
        assert_eq!(g.block_span(0, 6, blocks), [2, 3]);
        // Strict-interior coordinates belong to exactly one block.
        for (coord, b) in [(1, 0), (3, 1), (5, 2), (7, 3)] {
            assert_eq!(g.block_span(0, coord, blocks), [b, b]);
        }
        // Spans intersect exactly between lattice neighbours: two interior
        // coordinates of different blocks never intersect.
        assert_ne!(g.block_span(0, 1, blocks)[1], g.block_span(0, 3, blocks)[0]);
    }
}
