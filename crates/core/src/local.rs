//! The one-shot local stage (§4.2 of the paper).
//!
//! For a given set of material and geometry parameters this stage is
//! performed once:
//!
//! 1. mesh the unit block with a fine grid and assemble `A_local`, `b_local`;
//! 2. split DoFs into free (interior) and boundary (surface) sets (Eq. 12);
//! 3. factor `A_ff` once with sparse Cholesky;
//! 4. for every surface interpolation-node DoF `i`, solve the lifted system
//!    `A_ff α_f = −A_fb L e_i` (Eq. 14) — and once more with the thermal
//!    load and zero boundary data — reusing the single factorization, in
//!    parallel across threads;
//! 5. Galerkin-project: `A_elem = Fᵀ A_local F`, `b_elem = Fᵀ b_local`
//!    (Eqs. 18–19).
//!
//! The identity `a(f_T, f_i) = 0` (the interior residual of each `f_i`
//! vanishes and `f_T` vanishes on the boundary) is what makes Eq. 19 exact;
//! the builder measures it and stores the worst violation in
//! [`LocalStageStats::galerkin_orthogonality`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morestress_fem::{assemble_system, MaterialSet};
use morestress_linalg::{DenseMatrix, DirectCholesky, MemoryFootprint, SolverBackend, WorkPool};
use morestress_mesh::{unit_block_mesh, BlockKind, BlockResolution, TsvGeometry};

use crate::{InterpolationGrid, ReducedOrderModel, RomError};

/// Options controlling the local-stage build.
#[derive(Debug, Clone, Copy)]
pub struct LocalStageOptions {
    /// Worker-slot cap for the n+1 local solves (the paper uses 16).
    ///
    /// This is a *cap override* on the current [`WorkPool`], not a spawn
    /// count: the build runs on the shared pool's resident workers and is
    /// clamped to the pool's own cap, so nested stages can never multiply
    /// thread counts.
    pub threads: usize,
}

impl Default for LocalStageOptions {
    fn default() -> Self {
        // Derived from the shared pool (not an independent
        // `available_parallelism` read) so that this default and
        // `default_solve_threads()` can never disagree and compound into
        // cap² threads when stages nest.
        Self {
            threads: WorkPool::current().cap(),
        }
    }
}

/// Cost accounting of one local-stage build.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LocalStageStats {
    /// Wall-clock time of the whole local stage.
    pub build_time: Duration,
    /// Fine-mesh DoFs of the unit block.
    pub fine_dofs: usize,
    /// Number of local basis functions `n` (Eq. 16).
    pub num_basis: usize,
    /// Stored nonzeros of the Cholesky factor of `A_ff`.
    pub factor_nnz: usize,
    /// Analytic peak heap estimate (bytes).
    pub peak_bytes: usize,
    /// Worst `|a(f_T, f_i)|`, normalized by `‖A_elem‖_max` — should be at
    /// round-off level (see module docs).
    pub galerkin_orthogonality: f64,
}

/// Builder for the one-shot local stage.
///
/// See the [crate-level example](crate) for typical usage through
/// [`MoreStressSimulator`](crate::MoreStressSimulator); use `LocalStage`
/// directly when you need separate TSV / dummy models or custom caching.
#[derive(Debug, Clone)]
pub struct LocalStage {
    geom: TsvGeometry,
    res: BlockResolution,
    interp: InterpolationGrid,
    materials: MaterialSet,
    kind: BlockKind,
}

impl LocalStage {
    /// Creates a local-stage builder for one block kind.
    pub fn new(
        geom: &TsvGeometry,
        res: &BlockResolution,
        interp: InterpolationGrid,
        materials: &MaterialSet,
        kind: BlockKind,
    ) -> Self {
        Self {
            geom: *geom,
            res: *res,
            interp,
            materials: materials.clone(),
            kind,
        }
    }

    /// Runs the local stage and produces the block's reduced-order model.
    ///
    /// # Errors
    ///
    /// Propagates assembly errors ([`RomError::Fem`]) and factorization
    /// failures ([`RomError::Linalg`]).
    pub fn build(&self, opts: &LocalStageOptions) -> Result<ReducedOrderModel, RomError> {
        let start = Instant::now();
        let mesh = unit_block_mesh(&self.geom, &self.res, self.kind == BlockKind::Tsv);
        let system = assemble_system(&mesh, &self.materials)?;
        let stiffness = &system.stiffness;
        let ndof = stiffness.nrows();

        // --- DoF partition (Eq. 12) --------------------------------------
        let boundary_nodes = mesh.boundary_box_nodes(); // sorted ascending
        let mut is_boundary_node = vec![false; mesh.num_nodes()];
        for &b in &boundary_nodes {
            is_boundary_node[b] = true;
        }
        let free_dofs: Vec<usize> = (0..mesh.num_nodes())
            .filter(|&n| !is_boundary_node[n])
            .flat_map(|n| [3 * n, 3 * n + 1, 3 * n + 2])
            .collect();
        let boundary_dofs: Vec<usize> = boundary_nodes
            .iter()
            .flat_map(|&n| [3 * n, 3 * n + 1, 3 * n + 2])
            .collect();

        let mut free_col_map = vec![None; ndof];
        for (new, &old) in free_dofs.iter().enumerate() {
            free_col_map[old] = Some(new);
        }
        let mut boundary_col_map = vec![None; ndof];
        for (new, &old) in boundary_dofs.iter().enumerate() {
            boundary_col_map[old] = Some(new);
        }
        let a_ff = Arc::new(stiffness.extract(&free_dofs, &free_col_map, free_dofs.len()));
        let a_fb = stiffness.extract(&free_dofs, &boundary_col_map, boundary_dofs.len());

        // --- Interpolation operator L (Eq. 14) ----------------------------
        // weights[m][q]: weight of surface interpolation node q at fine
        // boundary node m (same for all three components).
        let (_, hi) = mesh.bounding_box();
        let extents = [hi[0], hi[1], hi[2]];
        let n_surface = self.interp.num_surface_nodes();
        let mut weights = DenseMatrix::zeros(boundary_nodes.len(), n_surface);
        for (m, &node) in boundary_nodes.iter().enumerate() {
            let w = self.interp.surface_weights_at(extents, mesh.nodes()[node]);
            weights.row_mut(m).copy_from_slice(&w);
        }

        // --- Factor once (the paper's key reuse) --------------------------
        let chol = DirectCholesky::default().prepare(Arc::clone(&a_ff))?;

        // --- n+1 local solves: build all right-hand sides, then one ------
        // --- panel-batched multi-RHS solve on the shared factor ----------
        let pool = WorkPool::current();
        let n = self.interp.num_dofs();
        let num_tasks = n + 1; // basis functions + thermal bubble
        let threads = opts.threads.max(1).min(num_tasks);
        let b_free: Vec<f64> = free_dofs.iter().map(|&d| system.thermal_load[d]).collect();

        // Boundary data of basis task `t`: component `t % 3` of surface
        // interpolation node `t / 3` (one column of L). Recomputed where
        // needed — it is a direct read of the weight matrix.
        let boundary_data = |task: usize, u_bc: &mut [f64]| {
            let qnode = task / 3;
            let comp = task % 3;
            u_bc.iter_mut().for_each(|v| *v = 0.0);
            for m in 0..boundary_nodes.len() {
                u_bc[3 * m + comp] = weights[(m, qnode)];
            }
        };

        // Stage 1 (parallel): lifted right-hand sides `−A_fb L e_t`, one
        // reused boundary buffer per worker.
        let mut rhs_set: Vec<Vec<f64>> = vec![Vec::new(); num_tasks];
        {
            let slots: Vec<Mutex<&mut Vec<f64>>> = rhs_set.iter_mut().map(Mutex::new).collect();
            pool.scope_chunks_with(
                threads,
                num_tasks,
                || vec![0.0; boundary_dofs.len()],
                |u_bc, task| {
                    let rhs = if task < n {
                        boundary_data(task, u_bc);
                        let mut rhs = a_fb.spmv(u_bc);
                        rhs.iter_mut().for_each(|v| *v = -*v);
                        rhs
                    } else {
                        // Thermal task: ΔT = 1, zero boundary displacement.
                        b_free.clone()
                    };
                    **slots[task].lock().expect("rhs slot poisoned") = rhs;
                },
            );
        }

        // Stage 2: the paper's key reuse, now panel-blocked — every worker
        // sweeps the shared factor once per panel of right-hand sides.
        let batch = chol.solve_many(&rhs_set, threads)?;
        drop(rhs_set);

        // Stage 3 (parallel): expand to full-mesh vectors.
        let mut solutions: Vec<Vec<f64>> = vec![Vec::new(); num_tasks];
        {
            let slots: Vec<Mutex<&mut Vec<f64>>> = solutions.iter_mut().map(Mutex::new).collect();
            pool.scope_chunks_with(
                threads,
                num_tasks,
                || vec![0.0; boundary_dofs.len()],
                |u_bc, task| {
                    let alpha = &batch.xs[task];
                    let mut full = vec![0.0; ndof];
                    for (i, &d) in free_dofs.iter().enumerate() {
                        full[d] = alpha[i];
                    }
                    if task < n {
                        boundary_data(task, u_bc);
                        for (i, &d) in boundary_dofs.iter().enumerate() {
                            full[d] = u_bc[i];
                        }
                    }
                    **slots[task].lock().expect("solution slot poisoned") = full;
                },
            );
        }
        let basis_thermal = solutions.pop().expect("thermal slot exists");
        let basis = solutions;

        // --- Galerkin projection (Eqs. 18–19) ------------------------------
        let mut a_elem = DenseMatrix::zeros(n, n);
        let mut b_elem = vec![0.0; n];
        let mut worst_tfi = 0.0f64;
        {
            let next = AtomicUsize::new(0);
            let columns: Vec<Mutex<(Vec<f64>, f64, f64)>> =
                (0..n).map(|_| Mutex::new((Vec::new(), 0.0, 0.0))).collect();
            pool.scope_workers(threads, |_| {
                let mut af = vec![0.0; ndof];
                loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= n {
                        return;
                    }
                    stiffness.spmv_into(&basis[j], &mut af);
                    let col: Vec<f64> = basis
                        .iter()
                        .map(|fi| morestress_linalg::dot(fi, &af))
                        .collect();
                    let tfi = morestress_linalg::dot(&basis_thermal, &af);
                    let bj = morestress_linalg::dot(&basis[j], &system.thermal_load);
                    *columns[j].lock().expect("column slot poisoned") = (col, tfi, bj);
                }
            });
            for (j, slot) in columns.into_iter().enumerate() {
                let (col, tfi, bj) = slot.into_inner().expect("column slot poisoned");
                for i in 0..n {
                    a_elem[(i, j)] = col[i];
                }
                worst_tfi = worst_tfi.max(tfi.abs());
                b_elem[j] = bj;
            }
        }
        // Exact symmetry for the downstream SPD solvers.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (a_elem[(i, j)] + a_elem[(j, i)]);
                a_elem[(i, j)] = avg;
                a_elem[(j, i)] = avg;
            }
        }
        let a_max = a_elem
            .as_slice()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);

        let basis_bytes: usize = basis.iter().map(MemoryFootprint::heap_bytes).sum();
        let peak_bytes = stiffness.heap_bytes()
            + a_ff.heap_bytes()
            + a_fb.heap_bytes()
            + chol.solver_bytes()
            + weights.heap_bytes()
            + basis_bytes
            + basis_thermal.heap_bytes();

        let stats = LocalStageStats {
            build_time: start.elapsed(),
            fine_dofs: ndof,
            num_basis: n,
            factor_nnz: chol.factor_nnz().expect("direct backend has a factor"),
            peak_bytes,
            galerkin_orthogonality: worst_tfi / a_max,
        };

        Ok(ReducedOrderModel {
            geom: self.geom,
            res: self.res,
            kind: self.kind,
            interp: self.interp,
            mesh,
            materials: self.materials.clone(),
            basis,
            basis_thermal,
            a_elem,
            b_elem,
            local_stats: stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_small(kind: BlockKind, counts: [usize; 3]) -> ReducedOrderModel {
        let geom = TsvGeometry::paper_defaults(15.0);
        let stage = LocalStage::new(
            &geom,
            &BlockResolution::coarse(),
            InterpolationGrid::new(counts),
            &MaterialSet::tsv_defaults(),
            kind,
        );
        stage
            .build(&LocalStageOptions { threads: 4 })
            .expect("local stage builds")
    }

    #[test]
    fn element_matrix_is_symmetric_and_psd_diagonal() {
        let rom = build_small(BlockKind::Tsv, [3, 3, 3]);
        let a = rom.element_stiffness();
        assert_eq!(a.rows(), 78);
        assert_eq!(a.asymmetry(), 0.0, "symmetrized exactly");
        for i in 0..a.rows() {
            assert!(a[(i, i)] > 0.0, "diagonal {i} must be positive");
        }
    }

    #[test]
    fn galerkin_orthogonality_holds() {
        // a(f_T, f_i) = 0 up to round-off — the identity behind Eq. 19.
        let rom = build_small(BlockKind::Tsv, [3, 3, 3]);
        assert!(
            rom.local_stats.galerkin_orthogonality < 1e-8,
            "orthogonality violation {}",
            rom.local_stats.galerkin_orthogonality
        );
    }

    #[test]
    fn rigid_translation_is_in_the_nullspace() {
        // Setting every x-component DoF of the interpolation nodes to 1
        // reproduces a rigid translation: A_elem · u_rigid ≈ 0 and the
        // reconstructed fine displacement is exactly uniform.
        let rom = build_small(BlockKind::Tsv, [3, 3, 3]);
        let n = rom.num_dofs();
        let mut rigid = vec![0.0; n];
        for q in 0..n / 3 {
            rigid[3 * q] = 1.0;
        }
        let f = rom.element_stiffness().matvec(&rigid);
        let scale = rom.element_stiffness()[(0, 0)];
        let worst = f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(worst < 1e-8 * scale, "rigid force {worst} vs scale {scale}");

        let u = rom.reconstruct_displacement(&rigid, 0.0);
        for node in 0..u.len() / 3 {
            assert!((u[3 * node] - 1.0).abs() < 1e-9, "x displacement uniform");
            assert!(u[3 * node + 1].abs() < 1e-9);
            assert!(u[3 * node + 2].abs() < 1e-9);
        }
    }

    #[test]
    fn thermal_basis_vanishes_on_boundary() {
        let rom = build_small(BlockKind::Tsv, [2, 2, 2]);
        let ft = rom.thermal_basis();
        for &node in &rom.mesh().boundary_box_nodes() {
            for c in 0..3 {
                assert_eq!(ft[3 * node + c], 0.0);
            }
        }
        // And it is nonzero in the interior (thermal mismatch exists).
        let peak = ft.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak > 0.0);
    }

    #[test]
    fn dummy_block_has_smaller_thermal_response() {
        // A homogeneous Si block under uniform ΔT with clamped boundary
        // still deforms internally, but the Cu/Si mismatch block must react
        // more strongly.
        let tsv = build_small(BlockKind::Tsv, [2, 2, 2]);
        let dummy = build_small(BlockKind::Dummy, [2, 2, 2]);
        let peak = |v: &[f64]| v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        assert!(peak(tsv.thermal_basis()) > peak(dummy.thermal_basis()));
        tsv.check_compatible(&dummy).expect("same grids");
    }

    #[test]
    fn single_threaded_and_parallel_builds_agree() {
        let geom = TsvGeometry::paper_defaults(10.0);
        let stage = LocalStage::new(
            &geom,
            &BlockResolution::coarse(),
            InterpolationGrid::new([2, 2, 2]),
            &MaterialSet::tsv_defaults(),
            BlockKind::Tsv,
        );
        let a = stage.build(&LocalStageOptions { threads: 1 }).unwrap();
        let b = stage.build(&LocalStageOptions { threads: 8 }).unwrap();
        let (pa, pb) = (a.element_stiffness(), b.element_stiffness());
        for i in 0..pa.rows() {
            for j in 0..pa.cols() {
                assert_eq!(pa[(i, j)], pb[(i, j)], "deterministic at ({i},{j})");
            }
        }
    }
}
